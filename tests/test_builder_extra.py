"""Additional builder tests: parametric path probabilities and validation."""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.simulator import Simulator
from repro.errors import AnalysisError, ConfigurationError
from repro.programs.builder import ProgramBuilder, _conditional_prob
from repro.programs.ir import Instr, OpClass


def adds(n):
    return [Instr(OpClass.IADD, dst=f"r{i % 4}") for i in range(n)]


class TestConditionalProb:
    def test_literal_cascade(self):
        probs = [0.5, 0.3, 0.2]
        assert _conditional_prob(probs, 0) == pytest.approx(0.5)
        assert _conditional_prob(probs, 1) == pytest.approx(0.3 / 0.5)

    def test_callable_cascade(self):
        probs = ["p", lambda inp: 1 - inp["p"]]
        cond0 = _conditional_prob(probs, 0)
        cond1 = _conditional_prob(probs, 1)
        inputs = {"p": 0.25}
        assert cond0(inputs) == pytest.approx(0.25)
        assert cond1(inputs) == pytest.approx(1.0)  # renormalized remainder

    def test_degenerate_remainder(self):
        assert _conditional_prob([1.0, 0.0], 1) == 1.0


class TestParametricBranchyLoop:
    def test_param_probs_affect_path_mix(self):
        b = ProgramBuilder("p")
        b.param("heavy_p", "choice", choices=(0.05, 0.95))
        b.block("init", [], next_block="L")
        b.branchy_loop(
            "L",
            paths=[
                ("heavy_p", adds(200)),
                (lambda inp: 1 - inp["heavy_p"], adds(40)),
            ],
            trips=2000,
            exit="done",
        )
        b.halt("done")
        program = b.build(entry="init")
        simulator = Simulator(program, CoreConfig(clock_hz=1e8))
        light = simulator.run(seed=0, inputs={"heavy_p": 0.05})
        heavy = simulator.run(seed=0, inputs={"heavy_p": 0.95})
        # Mostly-heavy path mix must run substantially longer.
        assert heavy.cycles > 1.5 * light.cycles

    def test_literal_probs_must_sum_to_one(self):
        b = ProgramBuilder("p")
        with pytest.raises(ConfigurationError):
            b.branchy_loop(
                "L", paths=[(0.5, adds(4)), (0.4, adds(4))], trips=5, exit="x"
            )

    def test_single_path_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ConfigurationError):
            b.branchy_loop("L", paths=[(1.0, adds(4))], trips=5, exit="x")


class TestBuilderValidation:
    def test_duplicate_block(self):
        b = ProgramBuilder("p")
        b.block("a", [], next_block=None)
        with pytest.raises(AnalysisError):
            b.block("a", [])

    def test_duplicate_param(self):
        b = ProgramBuilder("p")
        b.param("n", "int", 1, 2)
        with pytest.raises(ConfigurationError):
            b.param("n", "int", 3, 4)

    def test_fluent_chaining(self):
        program = (
            ProgramBuilder("p")
            .param("n", "int", 10, 20)
            .block("init", [], next_block="L")
            .counted_loop("L", adds(5), trips="n", exit="done")
            .halt("done")
            .build(entry="init")
        )
        assert program.name == "p"
        assert set(program.block_names()) == {"init", "L", "done"}
