"""repro.serve: protocol framing, registry, and loopback serving.

The load-bearing assertion mirrors DESIGN.md D17 one hop further out:
replaying a capture through a real TCP loopback session produces reports
and a summary *bit-identical* to a local :class:`StreamingMonitor` run
on the same chunking. On top of that: load shedding at capacity is a
typed ``at_capacity`` ERROR that leaves surviving sessions untouched,
and ``evict_idle`` displaces the stalest session with a typed
``evicted`` notification.
"""

import dataclasses
import json
import socket

import numpy as np
import pytest
from conftest import shared_tiny_detector as detector_for
from conftest import tiny_scale

from repro.errors import (
    ConfigurationError,
    MonitoringError,
    ProtocolError,
    RegistryError,
    ServeError,
)
from repro.serve import (
    EddieClient,
    FrameDecoder,
    FrameType,
    ModelRegistry,
    PROTOCOL_VERSIONS,
    ServerConfig,
    decode_chunk,
    encode_chunk,
    encode_frame,
    json_frame,
    model_fingerprint,
    negotiate_version,
    parse_json,
    serve_in_thread,
)
from repro.serve.client import replay
from repro.serve.protocol import (
    HEADER,
    MAX_PAYLOAD,
    report_from_json,
    report_to_json,
    summary_from_json,
    summary_to_json,
)
from repro.stream import FleetScheduler, StreamingMonitor

TINY = tiny_scale()

#: The loopback bit-identity sweep covers these programs end to end.
SERVED_PROGRAMS = ("bitcount", "sha", "dijkstra")


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """A registry with one published model per served program."""
    reg = ModelRegistry(tmp_path_factory.mktemp("registry"))
    for name in SERVED_PROGRAMS:
        reg.publish(detector_for(name).model)
    return reg


@pytest.fixture(scope="module")
def server(registry):
    """A loopback server shared by the happy-path tests."""
    with serve_in_thread(
        registry, ServerConfig(max_sessions=8, worker_threads=2)
    ) as handle:
        yield handle


def local_reference(model, trace, chunk_samples):
    """What a local streaming run produces for the same chunking."""
    monitor = StreamingMonitor(model, t0=trace.iq.t0)
    reports = []
    for chunk in trace.iq.iter_chunks(chunk_samples):
        for result in monitor.feed(chunk):
            reports.extend(result.reports)
    return reports, monitor.finish()


# -- protocol units -----------------------------------------------------------


class TestFraming:
    def test_roundtrip_through_dribbled_bytes(self):
        wire = json_frame(FrameType.OPEN, {"model": "bitcount", "t0": 0.25})
        wire += encode_frame(FrameType.CLOSE)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):  # worst case: one byte at a time
            frames.extend(decoder.feed(wire[i:i + 1]))
        assert [f.type for f in frames] == [FrameType.OPEN, FrameType.CLOSE]
        assert parse_json(frames[0]) == {"model": "bitcount", "t0": 0.25}
        assert frames[1].payload == b""
        assert decoder.pending_bytes == 0

    def test_bad_magic_raises(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(b"XX" + bytes(HEADER.size - 2))

    def test_unknown_frame_type_raises(self):
        wire = HEADER.pack(b"ED", 200, 0, 0)
        with pytest.raises(ProtocolError, match="frame type"):
            FrameDecoder().feed(wire)

    def test_oversized_payload_refused_without_allocating(self):
        wire = HEADER.pack(b"ED", int(FrameType.CHUNK), 0, MAX_PAYLOAD + 1)
        with pytest.raises(ProtocolError, match="limit"):
            FrameDecoder().feed(wire)
        with pytest.raises(ProtocolError, match="limit"):
            encode_frame(FrameType.CHUNK, bytes(MAX_PAYLOAD + 1))

    @pytest.mark.parametrize(
        "dtype", ["complex64", "complex128", "float32", "float64"]
    )
    def test_chunk_preserves_dtype_and_bits(self, dtype):
        rng = np.random.default_rng(0)
        if np.dtype(dtype).kind == "c":
            samples = (rng.standard_normal(257)
                       + 1j * rng.standard_normal(257)).astype(dtype)
        else:
            samples = rng.standard_normal(257).astype(dtype)
        decoder = FrameDecoder()
        (frame,) = decoder.feed(encode_chunk(7, samples))
        seq, decoded = decode_chunk(frame)
        assert seq == 7
        assert decoded.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(decoded, samples)
        assert decoded.flags.writeable

    def test_chunk_rejects_unsupported_dtype_and_shape(self):
        with pytest.raises(ProtocolError, match="dtype"):
            encode_chunk(0, np.arange(4, dtype=np.int32))
        with pytest.raises(ProtocolError, match="1-D"):
            encode_chunk(0, np.zeros((2, 2), dtype=np.complex64))

    def test_chunk_rejects_torn_body(self):
        from repro.serve.protocol import CHUNK_HEADER, Frame

        # 5 payload bytes is not a whole number of complex64 samples.
        torn = Frame(FrameType.CHUNK, CHUNK_HEADER.pack(1, 1) + bytes(5))
        with pytest.raises(ProtocolError, match="whole number"):
            decode_chunk(torn)

    def test_negotiate_version(self):
        assert negotiate_version(list(PROTOCOL_VERSIONS)) == max(
            PROTOCOL_VERSIONS
        )
        assert negotiate_version([99, 1]) == 1
        assert negotiate_version([99]) is None
        with pytest.raises(ProtocolError):
            negotiate_version("not-a-list-of-ints")

    def test_report_and_summary_json_roundtrip_is_exact(self):
        from repro.core.monitor import AnomalyReport
        from repro.stream.engine import StreamSummary

        # An awkward double that only survives repr-exact JSON.
        t = float(np.nextafter(0.0058368, 1.0))
        report = AnomalyReport(time=t, region="loop:x", streak=3)
        assert report_from_json(
            json.loads(json.dumps(report_to_json(report)))
        ) == report
        summary = StreamSummary(
            session_id="s1", chunks=3, samples=12288, windows=48,
            reports=[report], unscorable_fraction=1.0 / 3.0,
            status="degraded", stopped_early=True,
        )
        assert summary_from_json(
            json.loads(json.dumps(summary_to_json(summary)))
        ) == summary


# -- registry units -----------------------------------------------------------


class TestRegistry:
    def test_publish_resolve_versions(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        model = detector_for("bitcount").model
        first = reg.publish(model)
        assert (first.name, first.version) == ("bitcount", 1)
        second = reg.publish(model, "bitcount")
        assert second.version == 2
        assert reg.resolve("bitcount").version == 2
        assert reg.resolve("bitcount@latest").version == 2
        assert reg.resolve("bitcount@1").version == 1
        assert reg.resolve(f"fp:{first.fingerprint[:12]}").name == "bitcount"
        assert [e.spec for e in reg.list_entries()] == [
            "bitcount@1", "bitcount@2"
        ]

    def test_publish_refuses_bad_names_and_republish(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        model = detector_for("bitcount").model
        reg.publish(model, version=3)
        with pytest.raises(RegistryError, match="immutable"):
            reg.publish(model, version=3)
        with pytest.raises(RegistryError, match="invalid model name"):
            reg.publish(model, "../escape")
        assert reg.publish(model).version == 4

    def test_resolve_errors_are_typed(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError) as excinfo:
            reg.resolve("missing")
        assert excinfo.value.code == "unknown_model"
        with pytest.raises(RegistryError, match="too short"):
            reg.resolve("fp:abc")
        with pytest.raises(RegistryError):
            reg.resolve("bitcount@not-a-version")

    def test_lru_shares_one_instance_across_loads(self, tmp_path):
        reg = ModelRegistry(tmp_path, cache_size=2)
        entry = reg.publish(detector_for("bitcount").model)
        model_a, _ = reg.load("bitcount")
        model_b, _ = reg.load(f"fp:{entry.fingerprint[:16]}")
        assert model_a is model_b
        assert (reg.cache_misses, reg.cache_hits) == (1, 1)

    def test_corrupt_artifact_is_refused(self, tmp_path):
        reg = ModelRegistry(tmp_path, cache_size=0)
        entry = reg.publish(detector_for("bitcount").model)
        entry.path.write_bytes(b"not an npz at all")
        with pytest.raises(RegistryError) as excinfo:
            reg.load("bitcount")
        assert excinfo.value.code == "model_corrupt"

    def test_mislabeled_sidecar_is_refused(self, tmp_path):
        reg = ModelRegistry(tmp_path, cache_size=0)
        entry = reg.publish(detector_for("bitcount").model)
        sidecar = entry.path.with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        meta["fingerprint"] = "0" * 64
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(RegistryError, match="fingerprint mismatch"):
            reg.load("bitcount")

    def test_fingerprint_is_content_addressed(self):
        model = detector_for("bitcount").model
        assert model_fingerprint(model) == model_fingerprint(model)
        assert model_fingerprint(model) != model_fingerprint(
            detector_for("sha").model
        )


# -- loopback serving ---------------------------------------------------------


class TestLoopbackBitIdentity:
    @pytest.mark.parametrize("name", SERVED_PROGRAMS)
    def test_remote_replay_equals_local_streaming(self, server, name):
        detector = detector_for(name)
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        host, port = server.address
        reports, summary = replay(
            host, port, f"{name}@latest", trace, chunk_samples=4096
        )
        assert reports == local_reports
        # The server assigns the session id; everything else -- counts,
        # report list, status -- must match bit for bit.
        assert dataclasses.replace(
            summary, session_id=local_summary.session_id
        ) == local_summary

    def test_odd_chunking_and_single_flight_window(self, server):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(1))
        local_reports, local_summary = local_reference(
            detector.model, trace, 997
        )
        host, port = server.address
        reports, summary = replay(
            host, port, "bitcount", trace, chunk_samples=997, window=1
        )
        assert reports == local_reports
        assert summary.windows == local_summary.windows

    def test_unknown_model_open_is_typed(self, server):
        host, port = server.address
        with EddieClient(host, port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.open("no-such-model")
        assert excinfo.value.code == "unknown_model"

    def test_stats_frame_any_time(self, server):
        host, port = server.address
        with EddieClient(host, port) as client:
            stats = client.stats()  # before OPEN
        assert stats["max_sessions"] == 8
        assert stats["sessions_opened"] >= 1
        assert stats["registry"]["lru_misses"] >= 1

    def test_version_negotiation_refuses_future_client(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            from repro.serve.protocol import recv_frame, send_frame

            send_frame(sock, json_frame(FrameType.HELLO, {"versions": [99]}))
            frame = recv_frame(sock)
        assert frame.type == FrameType.ERROR
        assert parse_json(frame)["code"] == "unsupported_version"

    def test_garbage_bytes_do_not_kill_the_server(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
            sock.settimeout(10)
            try:
                while sock.recv(4096):
                    pass
            except OSError:
                pass
        # The server survived and still serves sessions.
        with EddieClient(host, port) as client:
            assert client.stats()["protocol_errors"] >= 1


class TestLoadShedding:
    def test_over_capacity_open_is_shed_and_survivor_unaffected(
        self, registry
    ):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        chunks = list(trace.iq.iter_chunks(4096))
        with serve_in_thread(
            registry, ServerConfig(max_sessions=1, worker_threads=1)
        ) as handle:
            host, port = handle.address
            with EddieClient(host, port) as survivor:
                survivor.open("bitcount", t0=trace.iq.t0)
                survivor.send(chunks[0])
                # Capacity is 1: the second OPEN must be refused with the
                # typed at_capacity error, not a crash or a hang.
                with EddieClient(host, port) as shed:
                    with pytest.raises(ServeError) as excinfo:
                        shed.open("bitcount")
                assert excinfo.value.code == "at_capacity"
                # The surviving session streams on, bit-identically.
                reports = []
                for chunk in chunks[1:]:
                    reports.extend(survivor.send(chunk))
                reports.extend(survivor.drain())
                summary = survivor.close()
            assert reports == local_reports
            assert summary.chunks == local_summary.chunks
            assert summary.reports == local_summary.reports
            assert handle.stats.sessions_shed == 1
            # After the survivor closed, its slot frees up again.
            with EddieClient(host, port) as client:
                client.open("bitcount")
                client.close()

    def test_evict_idle_displaces_stalest_session(self, registry):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        chunks = list(trace.iq.iter_chunks(4096))
        with serve_in_thread(
            registry,
            ServerConfig(max_sessions=1, evict_idle=True, worker_threads=1),
        ) as handle:
            host, port = handle.address
            stale = EddieClient(host, port).connect()
            try:
                stale.open("bitcount", t0=trace.iq.t0)
                stale.send(chunks[0])
                stale.drain()
                # Admitting a newcomer at capacity evicts the stale
                # session instead of shedding the newcomer.
                with EddieClient(host, port) as fresh:
                    fresh.open("bitcount", t0=trace.iq.t0)
                    fresh.send(chunks[0])
                    fresh.drain()
                    summary = fresh.close()
                assert summary.chunks == 1
                # The evicted peer finds out through a typed ERROR (or
                # its closed transport, depending on timing). A client
                # that auto-resumes instead finds its checkpoint
                # deliberately dropped: unknown_session.
                with pytest.raises((ServeError, OSError)) as excinfo:
                    for chunk in chunks[1:]:
                        stale.send(chunk)
                    stale.drain()
                    stale.close()
                if isinstance(excinfo.value, ServeError):
                    assert excinfo.value.code in (
                        "evicted", "connection_closed", "unknown_session"
                    )
            finally:
                stale.disconnect()
            assert handle.stats.sessions_evicted == 1
            assert handle.stats.sessions_shed == 0


class TestFleetEviction:
    """Satellite: FleetScheduler's opt-in idle eviction."""

    def _fleet_with(self, n, **kwargs):
        model = detector_for("bitcount").model
        fleet = FleetScheduler(max_sessions=n, **kwargs)
        for i in range(n):
            fleet.add_session(f"dev-{i}", model)
        return fleet, model

    def test_default_still_raises_at_capacity(self):
        fleet, model = self._fleet_with(2)
        with pytest.raises(ConfigurationError, match="capacity"):
            fleet.add_session("overflow", model)
        assert sorted(fleet.session_ids) == ["dev-0", "dev-1"]

    def test_evict_idle_closes_least_recently_fed(self):
        evicted = []
        fleet, model = self._fleet_with(
            3, evict_idle=True,
            on_evict=lambda sid, summary: evicted.append((sid, summary)),
        )
        chunk = np.zeros(1024, dtype=np.complex128)
        fleet.feed("dev-0", chunk)
        fleet.feed("dev-2", chunk)
        fleet.add_session("newcomer", model)  # displaces dev-1
        assert [sid for sid, _ in evicted] == ["dev-1"]
        assert evicted[0][1].chunks == 0
        assert sorted(fleet.session_ids) == ["dev-0", "dev-2", "newcomer"]
        # Freshly admitted sessions are not instantly stale.
        fleet.add_session("another", model)
        assert [sid for sid, _ in evicted] == ["dev-1", "dev-0"]

    def test_evict_stalest_requires_an_open_session(self):
        fleet = FleetScheduler(max_sessions=2, evict_idle=True)
        with pytest.raises(MonitoringError, match="no open session"):
            fleet.evict_stalest()
