"""Unit tests for acquisition fault injection (repro.em.faults)."""

import numpy as np
import pytest

from repro.em.faults import (
    DeadChannelFault,
    FaultInjector,
    GainStepFault,
    ImpulseNoiseFault,
    SampleDropFault,
    SaturationFault,
    standard_fault_mix,
)
from repro.errors import SignalError
from repro.types import FaultSpan, Signal

RATE = 1e6


def tone(n=4000, freq=5e4, amp=0.5, t0=0.0):
    t = np.arange(n) / RATE
    return Signal(amp * np.exp(2j * np.pi * freq * t), RATE, t0)


def span_indices(span, signal):
    i0 = int(round((span.t_start - signal.t0) * signal.sample_rate))
    i1 = int(round((span.t_end - signal.t0) * signal.sample_rate))
    return i0, i1


class TestFaultSpan:
    def test_validation(self):
        with pytest.raises(Exception):
            FaultSpan(kind="drop", t_start=2.0, t_end=1.0)

    def test_overlaps(self):
        span = FaultSpan(kind="drop", t_start=1.0, t_end=2.0)
        assert span.overlaps(1.5, 3.0)
        assert span.overlaps(0.0, 1.1)
        assert not span.overlaps(2.0, 3.0)  # half-open
        assert not span.overlaps(0.0, 1.0)
        assert span.duration == pytest.approx(1.0)


class TestScheduledFaults:
    def test_drop_zeroes_exactly_the_logged_span(self):
        sig = tone()
        fault = SampleDropFault(schedule=((1e-3, 1.5e-3),))
        out, log = fault.apply(sig, np.random.default_rng(0))
        assert len(log) == 1
        i0, i1 = span_indices(log[0], sig)
        assert np.all(out.samples[i0:i1] == 0)
        np.testing.assert_array_equal(out.samples[:i0], sig.samples[:i0])
        np.testing.assert_array_equal(out.samples[i1:], sig.samples[i1:])
        assert log[0].kind == "drop"
        assert log[0].magnitude == i1 - i0  # lost-sample marker

    def test_drop_hold_fill_repeats_last_sample(self):
        sig = tone()
        fault = SampleDropFault(schedule=((1e-3, 1.5e-3),), fill="hold")
        out, log = fault.apply(sig, np.random.default_rng(0))
        i0, i1 = span_indices(log[0], sig)
        assert np.all(out.samples[i0:i1] == sig.samples[i0 - 1])

    def test_saturation_rails_samples(self):
        sig = tone(amp=1.0)
        fault = SaturationFault(schedule=((0.0, 1e-3),), drive=100.0,
                                full_scale=2.0)
        out, log = fault.apply(sig, np.random.default_rng(0))
        i0, i1 = span_indices(log[0], sig)
        burst = out.samples[i0:i1]
        assert np.max(np.abs(burst.real)) <= 2.0 + 1e-12
        assert np.max(np.abs(burst.imag)) <= 2.0 + 1e-12
        # Overdriven by 100x, nearly every sample should sit at a rail.
        railed = (np.abs(np.abs(burst.real) - 2.0) < 1e-9) | (
            np.abs(np.abs(burst.imag) - 2.0) < 1e-9
        )
        assert railed.mean() > 0.9

    def test_gain_step_scales_span_only(self):
        sig = tone()
        fault = GainStepFault(schedule=((1e-3, 2e-3),), step_db=12.0)
        out, log = fault.apply(sig, np.random.default_rng(1))
        i0, i1 = span_indices(log[0], sig)
        ratio = np.abs(out.samples[i0:i1]) / np.abs(sig.samples[i0:i1])
        assert np.allclose(ratio, log[0].magnitude)
        assert not np.isclose(log[0].magnitude, 1.0)
        np.testing.assert_array_equal(out.samples[:i0], sig.samples[:i0])

    def test_impulse_raises_span_power(self):
        sig = tone(amp=0.1)
        fault = ImpulseNoiseFault(schedule=((1e-3, 1.2e-3),), amplitude=8.0)
        out, log = fault.apply(sig, np.random.default_rng(2))
        i0, i1 = span_indices(log[0], sig)
        burst_rms = np.sqrt(np.mean(np.abs(out.samples[i0:i1]) ** 2))
        clean_rms = np.sqrt(np.mean(np.abs(sig.samples) ** 2))
        assert burst_rms > 3.0 * clean_rms

    def test_dead_channel_zeroes(self):
        sig = tone()
        fault = DeadChannelFault(schedule=((0.5e-3, 2.5e-3),))
        out, log = fault.apply(sig, np.random.default_rng(0))
        i0, i1 = span_indices(log[0], sig)
        assert np.all(out.samples[i0:i1] == 0)
        assert log[0].kind == "dead"

    def test_schedule_clipped_to_signal(self):
        sig = tone(n=1000)  # 1 ms
        fault = SampleDropFault(schedule=((-1.0, 0.2e-3), (0.9e-3, 5.0),
                                          (2.0, 3.0)))
        out, log = fault.apply(sig, np.random.default_rng(0))
        assert len(log) == 2  # the fully-out-of-range span is dropped
        for span in log:
            assert span.t_start >= sig.t0
            assert span.t_end <= sig.t0 + sig.duration + 1e-12

    def test_spans_respect_t0(self):
        sig = tone(t0=7.0)
        fault = SampleDropFault(schedule=((1e-3, 1.5e-3),))
        _, log = fault.apply(sig, np.random.default_rng(0))
        assert log[0].t_start == pytest.approx(7.0 + 1e-3)


class TestStochasticFaults:
    def test_determinism_under_seed(self):
        injector = standard_fault_mix(2000.0, 2000.0, seed=7)
        out1, log1 = injector.inject(tone())
        out2, log2 = injector.inject(tone())
        np.testing.assert_array_equal(out1.samples, out2.samples)
        assert log1 == log2

    def test_different_seeds_differ(self):
        a = standard_fault_mix(3000.0, 3000.0, seed=1).inject(tone())[1]
        b = standard_fault_mix(3000.0, 3000.0, seed=2).inject(tone())[1]
        assert a != b

    def test_zero_rate_is_noop(self):
        injector = FaultInjector(faults=(SampleDropFault(rate_per_s=0.0),))
        sig = tone()
        out, log = injector.inject(sig, rng=np.random.default_rng(0))
        assert log == []
        np.testing.assert_array_equal(out.samples, sig.samples)

    def test_empty_injector_is_falsy(self):
        assert not FaultInjector()
        assert FaultInjector(faults=(SampleDropFault(),))

    def test_log_covers_all_corruption(self):
        """Every modified sample must lie inside some logged span."""
        sig = tone()
        injector = standard_fault_mix(3000.0, 3000.0, seed=11)
        out, log = injector.inject(sig)
        changed = np.flatnonzero(out.samples != sig.samples)
        assert len(changed)  # the mix actually did something
        covered = np.zeros(len(sig.samples), dtype=bool)
        for span in log:
            i0, i1 = span_indices(span, sig)
            covered[i0:i1] = True
        assert covered[changed].all()

    def test_composability_merges_and_orders_log(self):
        injector = FaultInjector(
            faults=(
                SampleDropFault(schedule=((2e-3, 2.2e-3),)),
                SaturationFault(schedule=((0.5e-3, 0.7e-3),)),
            )
        )
        _, log = injector.inject(tone())
        assert [s.kind for s in log] == ["saturation", "drop"]
        starts = [s.t_start for s in log]
        assert starts == sorted(starts)


class TestValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(SignalError):
            SampleDropFault(rate_per_s=-1.0)
        with pytest.raises(SignalError):
            SampleDropFault(mean_duration_s=0.0)
        with pytest.raises(SignalError):
            SampleDropFault(fill="splice")
        with pytest.raises(SignalError):
            SampleDropFault(schedule=((2.0, 1.0),))
        with pytest.raises(SignalError):
            SaturationFault(drive=0.5)
        with pytest.raises(SignalError):
            SaturationFault(full_scale=0.0)
        with pytest.raises(SignalError):
            GainStepFault(step_db=0.0)
        with pytest.raises(SignalError):
            ImpulseNoiseFault(amplitude=0.0)

    def test_injector_rejects_non_faults(self):
        with pytest.raises(SignalError):
            FaultInjector(faults=("drop",))
