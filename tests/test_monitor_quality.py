"""Step-level tests for the monitor's quality gating (DESIGN.md D14).

These pin the graceful-degradation mechanics: unscorable STSs are
skipped (streak frozen, history untouched), gaps invalidate the history
and trigger a bounded resynchronization, an exhausted resync budget
escalates a ``desync`` report, and a mostly-unscorable run is flagged
``degraded`` instead of producing a verdict.
"""

import numpy as np

from repro.core.model import EddieConfig, EddieModel, RegionProfile
from repro.core.monitor import Monitor
from repro.core.stft import QF_CLIPPED, QF_DEAD, QF_GAPPED

MAXP = 4


def rows(freq, n, width=MAXP):
    out = np.full((n, width), np.nan)
    out[:, 0] = freq
    return out


def build_model(quality_gating=True, resync_timeout=12, successors=None,
                profiles=None, **cfg_kwargs):
    cfg = EddieConfig(
        window_samples=64, max_peaks=MAXP, group_sizes=(8,),
        report_threshold=3, change_steps=3,
        quality_gating=quality_gating, resync_timeout=resync_timeout,
        **cfg_kwargs,
    )
    if profiles is None:
        profiles = {
            "loop:A": RegionProfile("loop:A", rows(1000.0, 100), 1, 8),
            "loop:B": RegionProfile("loop:B", rows(2000.0, 100), 1, 8),
        }
    return EddieModel(
        "p", cfg, profiles,
        successors or {"loop:A": ["loop:B"], "loop:B": []},
        ["loop:A"], 64e3,
    )


def drive(monitor, steps):
    """Feed (freq, quality) pairs; returns the reports with their indices."""
    reports = []
    for i, (freq, quality) in enumerate(steps):
        row = np.full(MAXP, np.nan)
        if freq is not None:
            row[0] = freq
        report, _ = monitor.step(row, float(i), quality=quality)
        if report:
            reports.append((i, report))
    return reports


def clean(freq, n):
    return [(freq, 0)] * n


class TestUnscorableSkipping:
    def test_unscorable_windows_produce_no_reports(self):
        monitor = Monitor(build_model())
        # Garbage values on flagged windows must not look anomalous.
        reports = drive(
            monitor, clean(1000.0, 20) + [(1500.0, QF_CLIPPED)] * 30
        )
        assert reports == []

    def test_unscorable_windows_stay_out_of_history(self):
        monitor = Monitor(build_model())
        drive(monitor, clean(1000.0, 10))
        filled = monitor._filled
        drive(monitor, [(1500.0, QF_CLIPPED)] * 5)
        assert monitor._filled == filled
        assert monitor.last_unscorable

    def test_streak_frozen_not_reset_across_unscorable(self):
        monitor = Monitor(build_model())
        drive(monitor, clean(1000.0, 20) + clean(1500.0, 6))
        streak = monitor._streak
        assert streak > 0
        drive(monitor, [(1500.0, QF_CLIPPED)] * 6)
        assert monitor._streak == streak  # frozen, neither grown nor reset

    def test_quality_ignored_when_gating_off(self):
        model = build_model(quality_gating=False)
        monitor = Monitor(model)
        peaks = rows(1000.0, 20)
        quality = np.full(20, QF_CLIPPED, dtype=np.uint8)
        result = monitor.run_peaks(peaks, np.arange(20.0), quality=quality)
        assert not result.unscorable_flags.any()
        assert result.status == "ok"


class TestResync:
    def test_reacquires_same_region_after_gap(self):
        monitor = Monitor(build_model())
        reports = drive(
            monitor,
            clean(1000.0, 20) + [(None, QF_GAPPED)] * 5 + clean(1000.0, 30),
        )
        assert reports == []
        assert monitor.current_region == "loop:A"
        assert monitor._resync_remaining is None  # resync completed

    def test_gap_invalidates_history(self):
        monitor = Monitor(build_model())
        drive(monitor, clean(1000.0, 20))
        assert monitor._filled >= 8
        drive(monitor, [(None, QF_GAPPED)] * 3 + clean(1000.0, 1))
        assert monitor._filled == 1  # restarted after the gap

    def test_gap_on_region_transition_reacquires_new_region(self):
        # Execution moved from A to B while the receiver was blind: the
        # monitor must land in B without reporting an anomaly, even
        # though it never saw the transition.
        monitor = Monitor(build_model())
        reports = drive(
            monitor,
            clean(1000.0, 20) + [(None, QF_DEAD)] * 5 + clean(2000.0, 30),
        )
        assert reports == []
        assert monitor.current_region == "loop:B"

    def test_desync_report_after_budget_exhausted(self):
        monitor = Monitor(build_model(resync_timeout=10))
        # Post-gap stream matches no region at all.
        reports = drive(
            monitor,
            clean(1000.0, 20) + [(None, QF_GAPPED)] * 5 + clean(1500.0, 40),
        )
        desyncs = [r for _, r in reports if r.kind == "desync"]
        assert len(desyncs) == 1
        assert desyncs[0].streak == 10
        # After the escalation the monitor resumes best-effort scoring.
        assert monitor._resync_remaining is None

    def test_desync_counts_toward_metrics_reports(self):
        model = build_model(resync_timeout=10)
        monitor = Monitor(model)
        steps = (
            clean(1000.0, 20) + [(None, QF_GAPPED)] * 5 + clean(1500.0, 40)
        )
        peaks = np.full((len(steps), MAXP), np.nan)
        quality = np.zeros(len(steps), dtype=np.uint8)
        for i, (freq, q) in enumerate(steps):
            if freq is not None:
                peaks[i, 0] = freq
            quality[i] = q
        result = monitor.run_peaks(
            peaks, np.arange(float(len(steps))), quality=quality
        )
        assert any(r.kind == "desync" for r in result.reports)
        assert result.reported_mask.sum() == len(result.reports)


class TestDegradedRuns:
    def test_all_unscorable_is_degraded_not_a_crash(self):
        monitor = Monitor(build_model())
        n = 40
        peaks = rows(1000.0, n)
        quality = np.full(n, QF_CLIPPED, dtype=np.uint8)
        result = monitor.run_peaks(peaks, np.arange(float(n)), quality=quality)
        assert result.status == "degraded"
        assert result.degraded
        assert result.reports == []
        assert result.unscorable_fraction == 1.0

    def test_mostly_clean_run_is_ok(self):
        monitor = Monitor(build_model())
        n = 40
        peaks = rows(1000.0, n)
        quality = np.zeros(n, dtype=np.uint8)
        quality[5] = QF_CLIPPED
        result = monitor.run_peaks(peaks, np.arange(float(n)), quality=quality)
        assert result.status == "ok"
        assert result.unscorable_flags.sum() == 1

    def test_trace_shorter_than_one_group(self):
        monitor = Monitor(build_model())
        peaks = rows(1000.0, 3)  # < group_size=8, < min_mon_values
        quality = np.array([0, QF_CLIPPED, 0], dtype=np.uint8)
        result = monitor.run_peaks(peaks, np.arange(3.0), quality=quality)
        assert result.reports == []
        assert result.status == "ok"
        assert len(result.times) == 3

    def test_empty_run(self):
        monitor = Monitor(build_model())
        result = monitor.run_peaks(
            np.zeros((0, MAXP)), np.zeros(0),
            quality=np.zeros(0, dtype=np.uint8),
        )
        assert result.reports == []
        assert result.status == "ok"
        assert result.unscorable_fraction == 0.0
