"""Direct unit tests for repro.core.metrics (Section 5.2 definitions)."""

import numpy as np
import pytest

from repro.core.metrics import (
    RunMetrics,
    aggregate_metrics,
    evaluate_run,
    fault_group_mask,
    injected_group_mask,
    rejection_false_negative_rate,
)
from repro.core.monitor import AnomalyReport, MonitorResult
from repro.types import FaultSpan, RegionInterval, RegionTimeline

HOP = 0.001
WINDOW = 0.002


def make_result(n, report_at=(), reject_at=(), tracked=None, group=8):
    times = np.arange(n) * HOP
    reports = [AnomalyReport(time=times[i], region="loop:A", streak=4)
               for i in report_at]
    flags = np.zeros(n, dtype=bool)
    flags[list(reject_at)] = True
    return MonitorResult(
        times=times,
        tracked=tracked or ["loop:A"] * n,
        reports=reports,
        rejection_flags=flags,
        group_sizes=np.full(n, group),
    )


def timeline(n, region="loop:A"):
    return RegionTimeline([RegionInterval(region, -1.0, n * HOP + 1.0)])


class TestEvaluateRun:
    def test_clean_run(self):
        result = make_result(100)
        metrics = evaluate_run(result, timeline(100), [], WINDOW, HOP)
        assert metrics.false_positive_rate == 0.0
        assert metrics.accuracy == 100.0
        assert metrics.coverage == 100.0
        assert not metrics.detected
        assert metrics.n_groups == 100

    def test_false_positive_counting(self):
        result = make_result(100, report_at=(10, 50))
        metrics = evaluate_run(result, timeline(100), [], WINDOW, HOP)
        assert metrics.false_positive_rate == pytest.approx(2.0)
        assert metrics.accuracy < 100.0

    def test_detection_latency(self):
        # Injection spans [0.05, 0.09); report fires at t=0.07.
        result = make_result(100, report_at=(70,))
        metrics = evaluate_run(
            result, timeline(100), [(0.05, 0.09)], WINDOW, HOP
        )
        assert metrics.detected
        assert metrics.detection_latency == pytest.approx(0.02)
        # The report sits inside the injected stretch: no false positive.
        assert metrics.false_positive_rate == 0.0

    def test_missed_injection(self):
        result = make_result(100)
        metrics = evaluate_run(
            result, timeline(100), [(0.05, 0.09)], WINDOW, HOP
        )
        assert not metrics.detected
        assert metrics.false_negative_rate == 100.0
        assert metrics.true_positive_rate == 0.0

    def test_report_covers_whole_injected_stretch(self):
        """One report inside a contiguous injected stretch credits it all."""
        result = make_result(100, report_at=(60,))
        metrics = evaluate_run(
            result, timeline(100), [(0.05, 0.09)], WINDOW, HOP
        )
        assert metrics.true_positive_rate == 100.0

    def test_report_linger_credits_after_span(self):
        # Injection ends at 0.05; report at 0.06 with linger 0.02 counts.
        result = make_result(100, report_at=(60,))
        with_linger = evaluate_run(
            result, timeline(100), [(0.03, 0.05)], WINDOW, HOP,
            report_linger=0.02,
        )
        assert with_linger.detected

    def test_coverage_counts_mistracking(self):
        tracked = ["loop:A"] * 50 + ["loop:B"] * 50
        result = make_result(100, tracked=tracked)
        metrics = evaluate_run(result, timeline(100), [], WINDOW, HOP)
        assert metrics.coverage == pytest.approx(50.0)

    def test_per_region_accuracy_mean(self):
        tl = RegionTimeline(
            [
                RegionInterval("loop:A", -1.0, 0.0495),
                RegionInterval("loop:B", 0.0495, 10.0),
            ]
        )
        # One false report in region B only.
        result = make_result(100, report_at=(75,))
        metrics = evaluate_run(result, tl, [], WINDOW, HOP)
        assert metrics.per_region_accuracy["loop:A"] == 100.0
        assert metrics.per_region_accuracy["loop:B"] < 100.0
        expected = np.mean(list(metrics.per_region_accuracy.values()))
        assert metrics.accuracy == pytest.approx(expected)

    def test_empty_result(self):
        result = make_result(0)
        metrics = evaluate_run(result, timeline(1), [], WINDOW, HOP)
        assert metrics.n_groups == 0
        assert metrics.detection_latency is None


class TestGroupMask:
    def test_group_span_includes_history(self):
        # Group at index i covers [t_i - n*hop - w/2, t_i + w/2): an
        # injection long past still inside the group's history counts.
        result = make_result(100, group=20)
        mask = injected_group_mask(result, [(0.010, 0.011)], WINDOW, HOP)
        assert mask[11]          # right after the span
        assert mask[25]          # span still inside the 20-hop history
        assert not mask[45]      # history has slid past

    def test_no_spans(self):
        result = make_result(10)
        assert not injected_group_mask(result, [], WINDOW, HOP).any()


class TestRejectionFalseNegative:
    def test_graded_fn(self):
        # Injection covers groups ~50..70; half of them rejected.
        rejected = range(50, 60)
        result = make_result(100, reject_at=rejected, group=2)
        fn = rejection_false_negative_rate(
            result, [(0.049, 0.0691)], WINDOW, HOP
        )
        assert fn is not None
        assert 0.0 < fn < 100.0

    def test_none_without_injection(self):
        result = make_result(10)
        assert rejection_false_negative_rate(result, [], WINDOW, HOP) is None

    def test_all_rejected_is_zero_fn(self):
        result = make_result(100, reject_at=range(100))
        fn = rejection_false_negative_rate(result, [(0.0, 1.0)], WINDOW, HOP)
        assert fn == 0.0


class TestAggregate:
    def test_mean_and_counts(self):
        m1 = RunMetrics(
            detection_latency=0.01, false_positive_rate=1.0,
            false_negative_rate=20.0, true_positive_rate=80.0,
            accuracy=90.0, coverage=80.0, per_region_accuracy={"a": 90.0},
            n_groups=10, n_injected_groups=5, n_reports=2, detected=True,
        )
        m2 = RunMetrics(
            detection_latency=None, false_positive_rate=3.0,
            false_negative_rate=None, true_positive_rate=None,
            accuracy=100.0, coverage=90.0, per_region_accuracy={"a": 100.0},
            n_groups=20, n_injected_groups=0, n_reports=0, detected=False,
        )
        agg = aggregate_metrics([m1, m2])
        assert agg.detection_latency == pytest.approx(0.01)  # None skipped
        assert agg.false_positive_rate == pytest.approx(2.0)
        assert agg.accuracy == pytest.approx(95.0)
        assert agg.per_region_accuracy["a"] == pytest.approx(95.0)
        assert agg.n_groups == 30
        assert agg.detected  # any


class TestReportedMask:
    def test_mask_from_report_indices(self):
        result = make_result(10, report_at=(2, 7))
        result.report_indices = [2, 7]
        mask = result.reported_mask
        assert mask.sum() == 2
        assert mask[2] and mask[7]

    def test_float_reconstructed_times_still_match(self):
        """Regression: report times rebuilt through different arithmetic.

        ``0.1 + 0.1 + 0.1 != 0.3`` in floats; the old exact ``t in set``
        matching silently dropped such reports from the mask.
        """
        n = 10
        times = np.arange(n) * 0.1          # times[3] = 0.30000000000000004
        accumulated = 0.0
        for _ in range(3):
            accumulated += 0.1              # 0.30000000000000004... or not
        report_time = float(np.float32(0.3))  # a third arithmetic path
        assert report_time != times[3]      # genuinely different floats...
        result = MonitorResult(
            times=times,
            tracked=["loop:A"] * n,
            reports=[AnomalyReport(time=0.3, region="loop:A", streak=4)],
            rejection_flags=np.zeros(n, dtype=bool),
            group_sizes=np.full(n, 8),
        )
        mask = result.reported_mask         # ...but isclose still matches
        assert mask[3]
        assert mask.sum() == 1

    def test_no_reports_empty_mask(self):
        result = make_result(5)
        assert not result.reported_mask.any()


class TestFaultAwareScoring:
    def test_fp_split_between_faulted_and_unfaulted(self):
        # Reports at 10 (clean stretch) and 50 (inside a fault span).
        result = make_result(100, report_at=(10, 50))
        fault = FaultSpan(kind="drop", t_start=0.049, t_end=0.052)
        metrics = evaluate_run(
            result, timeline(100), [], WINDOW, HOP, fault_spans=[fault]
        )
        # The all-groups rate keeps its original definition.
        assert metrics.false_positive_rate == pytest.approx(2.0)
        assert metrics.n_faulted_groups > 0
        assert metrics.false_positive_rate_faulted > 0.0
        # The clean-stretch report is the only unfaulted false positive.
        n_unfaulted = 100 - metrics.n_faulted_groups
        assert metrics.false_positive_rate_unfaulted == pytest.approx(
            100.0 / n_unfaulted
        )

    def test_tuple_spans_accepted(self):
        result = make_result(100, report_at=(50,))
        metrics = evaluate_run(
            result, timeline(100), [], WINDOW, HOP,
            fault_spans=[(0.049, 0.052)],
        )
        assert metrics.false_positive_rate_faulted > 0.0

    def test_no_fault_spans_leaves_split_unset(self):
        result = make_result(100, report_at=(50,))
        metrics = evaluate_run(result, timeline(100), [], WINDOW, HOP)
        assert metrics.false_positive_rate_unfaulted is None
        assert metrics.false_positive_rate_faulted is None
        assert metrics.n_faulted_groups == 0

    def test_fault_group_mask_covers_group_history(self):
        result = make_result(100, group=20)
        mask = fault_group_mask(
            result, [FaultSpan(kind="drop", t_start=0.010, t_end=0.011)],
            WINDOW, HOP,
        )
        assert mask[11]
        assert mask[25]      # span still inside the 20-hop group history
        assert not mask[45]

    def test_desync_and_unscorable_counting(self):
        n = 20
        result = make_result(n)
        result.reports = [
            AnomalyReport(time=result.times[5], region="loop:A", streak=4),
            AnomalyReport(time=result.times[9], region="loop:A", streak=8,
                          kind="desync"),
        ]
        result.report_indices = [5, 9]
        result.unscorable_flags = np.zeros(n, dtype=bool)
        result.unscorable_flags[2:6] = True
        metrics = evaluate_run(result, timeline(n), [], WINDOW, HOP)
        assert metrics.n_desyncs == 1
        assert metrics.n_unscorable == 4

    def test_degraded_status_propagates(self):
        result = make_result(10)
        result.status = "degraded"
        metrics = evaluate_run(result, timeline(10), [], WINDOW, HOP)
        assert metrics.status == "degraded"
        clean = evaluate_run(make_result(10), timeline(10), [], WINDOW, HOP)
        agg = aggregate_metrics([metrics, clean])
        assert agg.status == "degraded"
