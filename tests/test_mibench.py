"""Tests for the MiBench-like benchmark programs and workload kernels."""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.simulator import Simulator
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import find_loops
from repro.cfg.regions import build_region_machine
from repro.programs.ir import OpClass
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import (
    crypto_kernel,
    diffuse_loop_program,
    fp_kernel,
    injection_mix,
    int_kernel,
    mem_kernel,
    mixed_kernel,
    multi_peak_loop_program,
    sharp_loop_program,
)

CORE = CoreConfig.iot_inorder(clock_hz=1e8)


class TestKernels:
    def test_int_kernel_size_and_phases(self):
        body = int_kernel(100, "x")
        assert len(body) == 100
        # The serial tail is a dependency chain on one register.
        tail = body[60:]
        assert all(i.dst == "xacc" for i in tail)

    def test_fp_kernel_ops(self):
        body = fp_kernel(50, "f", div_every=10)
        ops = {i.op for i in body}
        assert OpClass.FADD in ops and OpClass.FMUL in ops
        assert OpClass.FDIV in ops

    def test_mem_kernel_streams(self):
        body = mem_kernel(5, "m", "buf", 4096, n_stores=2)
        loads = [i for i in body if i.op is OpClass.LOAD]
        stores = [i for i in body if i.op is OpClass.STORE]
        assert len(loads) == 5 and len(stores) == 2
        assert all(i.mem.stream == "buf" for i in loads + stores)

    def test_mixed_kernel_preserves_counts(self):
        body = mixed_kernel(40, 6, "z", "img", 1 << 16)
        assert sum(1 for i in body if i.op is OpClass.LOAD) == 6

    def test_crypto_kernel_has_table_lookups(self):
        body = crypto_kernel(20, "c", "sbox", 1024)
        assert any(i.op is OpClass.LOAD for i in body)

    def test_injection_mix_counts(self):
        payload = injection_mix(4, 4)
        assert sum(1 for i in payload if i.op is OpClass.IADD) == 4
        assert sum(1 for i in payload if i.op is OpClass.STORE) == 4
        assert len(injection_mix(8, 0)) == 8


class TestWorkloadShapes:
    @pytest.mark.parametrize(
        "builder", [sharp_loop_program, multi_peak_loop_program, diffuse_loop_program]
    )
    def test_shapes_build_and_run(self, builder):
        program = builder(trips=500)
        result = Simulator(program, CORE).run(seed=0)
        assert result.cycles > 0
        regions = {iv.region for iv in result.timeline}
        assert "loop:L" in regions


class TestMibenchPrograms:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_builds_and_analyzes(self, name):
        program = BENCHMARKS[name]()
        assert program.name == name
        cfg = ControlFlowGraph.from_program(program)
        forest = find_loops(cfg)
        machine = build_region_machine(program, cfg, forest)
        assert len(machine.loop_regions) >= 2
        # The default injection target must be a loop header.
        assert forest.is_header(INJECTION_LOOPS[name])

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_simulates_with_reasonable_size(self, name):
        result = Simulator(BENCHMARKS[name](), CORE).run(seed=0)
        # Every benchmark yields enough samples for dozens of STFT windows
        # but stays laptop-fast.
        assert 8_000 < len(result.power) < 2_000_000
        assert result.instr_count > 50_000

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_input_variation_changes_runs(self, name):
        simulator = Simulator(BENCHMARKS[name](), CORE)
        a = simulator.run(seed=0)
        b = simulator.run(seed=1)
        assert a.cycles != b.cycles  # trip-count parameters differ

    def test_bitcount_has_five_kernels(self):
        machine = build_region_machine(BENCHMARKS["bitcount"]())
        loops = [r for r in machine.loop_regions]
        assert len(loops) == 5

    def test_susan_has_five_nests(self):
        machine = build_region_machine(BENCHMARKS["susan"]())
        assert len(machine.loop_regions) == 5

    def test_gsm_lpc_has_flat_body(self):
        """gsm's lpc loop must stay homogeneous (the peak-less region)."""
        program = BENCHMARKS["gsm"]()
        lpc = program.block("lpc")
        ops = {i.op for i in lpc.instrs}
        assert ops == {OpClass.IADD}

    def test_region_chain_structure(self):
        """Benchmarks are loop chains: each loop region leads onward."""
        for name in ("basicmath", "sha", "rijndael"):
            machine = build_region_machine(BENCHMARKS[name]())
            for region in machine.loop_regions:
                assert machine.successors(region), f"{name}:{region} is terminal"
