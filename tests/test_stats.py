"""Unit tests for repro.core.stats, validated against scipy as the oracle."""

import numpy as np
import pytest
import scipy.stats

from repro.core.stats.anova import n_way_anova
from repro.core.stats.empirical import ecdf, ecdf_values
from repro.core.stats.ks import (
    KsResult,
    kolmogorov_sf,
    ks_2samp,
    ks_critical_value,
    ks_statistic,
)
from repro.core.stats.utest import mann_whitney_u
from repro.errors import ConfigurationError


class TestEcdf:
    def test_basic_steps(self):
        F = ecdf(np.array([1.0, 2.0, 3.0]))
        assert F(0.5) == 0.0
        assert F(1.0) == pytest.approx(1 / 3)
        assert F(2.5) == pytest.approx(2 / 3)
        assert F(3.0) == 1.0

    def test_vectorized(self):
        F = ecdf(np.array([1.0, 2.0]))
        np.testing.assert_allclose(F(np.array([0.0, 1.5, 5.0])), [0.0, 0.5, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ecdf(np.array([]))

    def test_ecdf_values_matches_callable(self):
        data = np.array([3.0, 1.0, 2.0])
        F = ecdf(data)
        at = np.array([0.5, 1.5, 2.5, 3.5])
        np.testing.assert_allclose(ecdf_values(np.sort(data), at), F(at))


class TestKolmogorovDistribution:
    def test_sf_bounds(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(5.0) < 1e-15

    def test_sf_matches_scipy(self):
        for x in (0.5, 0.8, 1.0, 1.36, 1.63, 2.0):
            assert kolmogorov_sf(x) == pytest.approx(
                scipy.stats.kstwobign.sf(x), abs=1e-9
            )

    def test_critical_value_textbook(self):
        # c(0.05) ~ 1.358, c(0.01) ~ 1.628 (classic K-S table values).
        assert ks_critical_value(100, 100, 0.05) == pytest.approx(
            1.358 * np.sqrt(2 / 100), abs=0.01
        )
        assert ks_critical_value(100, 100, 0.01) == pytest.approx(
            1.628 * np.sqrt(2 / 100), abs=0.01
        )

    def test_critical_value_validations(self):
        with pytest.raises(ConfigurationError):
            ks_critical_value(0, 10)


class TestKs2Samp:
    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 200)
        y = rng.normal(0.3, 1.2, 150)
        ours = ks_2samp(x, y)
        theirs = scipy.stats.ks_2samp(x, y, method="asymp")
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-12)
        # scipy's 'asymp' applies a small-sample correction; our p-value is
        # the textbook Kolmogorov asymptotic the paper specifies, so match
        # kstwobign exactly and scipy loosely.
        en = np.sqrt(len(x) * len(y) / (len(x) + len(y)))
        assert ours.pvalue == pytest.approx(
            scipy.stats.kstwobign.sf(ours.statistic * en), abs=1e-9
        )
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=0.15)

    def test_identical_samples(self):
        x = np.arange(50, dtype=float)
        result = ks_2samp(x, x)
        assert result.statistic == 0.0
        assert result.pvalue == 1.0
        assert not result.reject(0.01)

    def test_disjoint_samples_reject(self):
        x = np.arange(0, 100, dtype=float)
        y = np.arange(1000, 1100, dtype=float)
        result = ks_2samp(x, y)
        assert result.statistic == 1.0
        assert result.reject(0.01)

    def test_same_distribution_rarely_rejects(self):
        rng = np.random.default_rng(1)
        rejections = 0
        trials = 200
        for _ in range(trials):
            x = rng.normal(0, 1, 120)
            y = rng.normal(0, 1, 60)
            if ks_2samp(x, y).reject(0.05):
                rejections += 1
        # At alpha=0.05, expect ~5% (the asymptotic test is conservative).
        assert rejections / trials < 0.08

    def test_ks_statistic_requires_nonempty(self):
        with pytest.raises(ConfigurationError):
            ks_statistic(np.array([]), np.array([1.0]))

    def test_presorted_fast_path_agrees(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, 80)
        y = rng.uniform(0, 1, 40)
        d_fast = ks_statistic(np.sort(x), y)
        d_full = ks_2samp(x, y).statistic
        assert d_fast == pytest.approx(d_full, abs=1e-15)

    def test_discrete_data_with_ties(self):
        """Peak frequencies are bin-quantized; ties must be handled."""
        rng = np.random.default_rng(3)
        x = rng.integers(0, 10, 100).astype(float)
        y = rng.integers(0, 10, 100).astype(float)
        ours = ks_2samp(x, y)
        theirs = scipy.stats.ks_2samp(x, y, method="asymp")
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-12)


class TestMannWhitney:
    def test_matches_scipy_continuous(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 80)
        y = rng.normal(0.5, 1, 90)
        ours = mann_whitney_u(x, y)
        theirs = scipy.stats.mannwhitneyu(x, y, alternative="two-sided",
                                          method="asymptotic")
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-9)
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-3)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(5)
        x = rng.integers(0, 6, 60).astype(float)
        y = rng.integers(1, 7, 70).astype(float)
        ours = mann_whitney_u(x, y)
        theirs = scipy.stats.mannwhitneyu(x, y, alternative="two-sided",
                                          method="asymptotic")
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=0.02)

    def test_identical_constant_samples(self):
        x = np.ones(20)
        result = mann_whitney_u(x, x)
        assert result.pvalue == 1.0

    def test_clear_shift_rejects(self):
        x = np.arange(50, dtype=float)
        y = np.arange(100, 150, dtype=float)
        assert mann_whitney_u(x, y).reject(0.01)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mann_whitney_u(np.array([]), np.array([1.0]))


class TestAnova:
    def test_one_way_matches_scipy(self):
        rng = np.random.default_rng(0)
        groups = [rng.normal(mu, 1, 30) for mu in (0.0, 0.5, 1.0)]
        y = np.concatenate(groups)
        labels = np.repeat(["a", "b", "c"], 30)
        ours = n_way_anova({"g": labels}, y)
        theirs = scipy.stats.f_oneway(*groups)
        effect = ours.effects["g"]
        assert effect.f_stat == pytest.approx(theirs.statistic, rel=1e-9)
        assert effect.pvalue == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_two_way_balanced(self):
        rng = np.random.default_rng(1)
        rows = []
        a_labels, b_labels = [], []
        for a in (0.0, 2.0):
            for b in (0.0, 0.0):  # factor b has no effect
                for _ in range(25):
                    rows.append(a + rng.normal(0, 1))
                    a_labels.append(f"a{a}")
                    b_labels.append(f"b{len(b_labels) % 2}")
        result = n_way_anova({"a": a_labels, "b": b_labels}, rows)
        assert result.effects["a"].significant(0.01)
        assert not result.effects["b"].significant(0.05)
        assert result.significant_factors(0.01) == ["a"]

    def test_constant_factor_zero_df(self):
        y = np.random.default_rng(0).normal(0, 1, 20)
        result = n_way_anova({"c": ["x"] * 20}, y)
        assert result.effects["c"].df == 0
        assert result.effects["c"].pvalue == 1.0

    def test_label_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            n_way_anova({"a": ["x", "y"]}, [1.0, 2.0, 3.0])

    def test_too_few_observations(self):
        with pytest.raises(ConfigurationError):
            n_way_anova({"a": ["x", "y"]}, [1.0, 2.0])

    def test_ss_decomposition(self):
        rng = np.random.default_rng(2)
        labels = np.repeat(["a", "b"], 40)
        y = rng.normal(0, 1, 80) + (labels == "b") * 1.5
        result = n_way_anova({"g": labels}, y)
        assert result.ss_total == pytest.approx(
            result.effects["g"].ss + result.ss_residual
        )
