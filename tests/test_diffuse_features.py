"""Tests for the diffuse-spectral-features extension (DESIGN.md D13).

The paper suggests (Section 5.2) that "better consideration of diffuse
spectral features may improve EDDIE's accuracy". With
``EddieConfig(diffuse_features=True)``, every STS contributes two extra
tested dimensions -- spectral centroid and bandwidth -- which make even
peak-less regions testable.
"""

import numpy as np
import pytest

from repro.core.model import EddieConfig, RegionProfile
from repro.core.peaks import peak_matrix, spectral_descriptors
from repro.core.stft import stft
from repro.errors import TrainingError
from repro.experiments.runner import Scale, build_detector
from repro.programs.mibench import gsm
from repro.types import Signal


class TestSpectralDescriptors:
    def test_single_tone_centroid(self):
        power = np.zeros(100)
        power[30] = 10.0
        freqs = np.arange(100.0)
        centroid, spread = spectral_descriptors(power, freqs)
        assert centroid == pytest.approx(30.0)
        assert spread == pytest.approx(0.0)

    def test_two_tone_centroid_between(self):
        power = np.zeros(100)
        power[20] = 1.0
        power[60] = 1.0
        freqs = np.arange(100.0)
        centroid, spread = spectral_descriptors(power, freqs)
        assert centroid == pytest.approx(40.0)
        assert spread == pytest.approx(20.0)

    def test_wider_spectrum_larger_spread(self):
        freqs = np.arange(200.0)
        narrow = np.exp(-0.5 * ((freqs - 100) / 3) ** 2)
        wide = np.exp(-0.5 * ((freqs - 100) / 30) ** 2)
        _, s_narrow = spectral_descriptors(narrow, freqs)
        _, s_wide = spectral_descriptors(wide, freqs)
        assert s_wide > 5 * s_narrow

    def test_zero_power(self):
        centroid, spread = spectral_descriptors(np.zeros(10), np.arange(10.0))
        assert np.isnan(centroid) and np.isnan(spread)


class TestPeakMatrixDescriptors:
    def test_shape_and_values(self):
        fs = 1e5
        t = np.arange(4096) / fs
        sig = Signal(np.sin(2 * np.pi * 1e4 * t), fs)
        seq = stft(sig, window_samples=512)
        matrix = peak_matrix(seq, max_peaks=4, descriptors=True)
        assert matrix.shape == (len(seq), 6)
        # Descriptor columns are never NaN for nonzero windows, and the
        # centroid sits at the tone.
        assert np.all(~np.isnan(matrix[:, 4]))
        assert np.allclose(matrix[:, 4], 1e4, rtol=0.1)

    def test_off_by_default(self):
        fs = 1e5
        sig = Signal(np.sin(np.arange(2048)), fs)
        seq = stft(sig, window_samples=512)
        assert peak_matrix(seq, max_peaks=4).shape[1] == 4


class TestRegionProfileDescriptorDims:
    def test_test_dims_combines(self):
        ref = np.full((20, 6), np.nan)
        ref[:, 0] = 1.0
        ref[:, 4] = 2.0
        ref[:, 5] = 3.0
        profile = RegionProfile("r", ref, 1, 8, descriptor_dims=(4, 5))
        assert profile.test_dims == (0, 4, 5)
        assert profile.testable()

    def test_peakless_region_testable_via_descriptors(self):
        ref = np.full((20, 6), np.nan)
        ref[:, 4] = 2.0
        ref[:, 5] = 3.0
        profile = RegionProfile("r", ref, 0, 8, descriptor_dims=(4, 5))
        assert profile.testable()
        without = RegionProfile("r", ref[:, :4], 0, 8)
        assert not without.testable()

    def test_descriptor_dims_validated(self):
        ref = np.zeros((10, 4))
        with pytest.raises(TrainingError):
            RegionProfile("r", ref, 1, 8, descriptor_dims=(9,))


class TestEndToEnd:
    def test_gsm_lpc_becomes_testable(self):
        scale = Scale(train_runs=3, clean_runs=1, injected_runs=1)
        detector = build_detector(
            gsm(), scale, source="em",
            config=EddieConfig(diffuse_features=True),
        )
        lpc = detector.model.profiles["loop:lpc"]
        assert lpc.num_peaks == 0  # still peak-less
        assert lpc.descriptor_dims  # but testable via descriptors
        assert lpc.testable()

    def test_model_round_trip_preserves_descriptors(self, tmp_path):
        from repro.serialize import load_model, save_model

        scale = Scale(train_runs=3, clean_runs=1, injected_runs=1)
        detector = build_detector(
            gsm(), scale, source="em",
            config=EddieConfig(diffuse_features=True),
        )
        path = tmp_path / "m.npz"
        save_model(detector.model, path)
        loaded = load_model(path)
        assert loaded.config.diffuse_features
        for name, profile in detector.model.profiles.items():
            assert loaded.profiles[name].descriptor_dims == profile.descriptor_dims
