"""Unit tests for repro.types (Signal, RegionInterval, RegionTimeline)."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.types import RegionInterval, RegionTimeline, Signal


class TestSignal:
    def test_basic_properties(self):
        sig = Signal(np.arange(100.0), 1e3, t0=1.0)
        assert len(sig) == 100
        assert sig.duration == pytest.approx(0.1)
        assert sig.t_end == pytest.approx(1.1)
        assert sig.time_axis()[0] == 1.0
        assert sig.time_axis()[-1] == pytest.approx(1.0 + 99 / 1e3)

    def test_rejects_bad_rate(self):
        with pytest.raises(SignalError):
            Signal(np.zeros(4), 0.0)

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            Signal(np.zeros((2, 2)), 1e3)

    def test_slice_time(self):
        sig = Signal(np.arange(1000.0), 1e3)
        part = sig.slice_time(0.1, 0.2)
        assert part.t0 == pytest.approx(0.1)
        assert len(part) == 100
        assert part.samples[0] == 100.0

    def test_slice_time_clamps(self):
        sig = Signal(np.arange(10.0), 1e3)
        part = sig.slice_time(-1.0, 100.0)
        assert len(part) == 10

    def test_slice_time_rejects_reversed(self):
        sig = Signal(np.arange(10.0), 1e3)
        with pytest.raises(SignalError):
            sig.slice_time(0.5, 0.1)

    def test_concat(self):
        a = Signal(np.ones(10), 1e3)
        b = Signal(np.zeros(5), 1e3)
        combined = a.concat(b)
        assert len(combined) == 15
        assert combined.samples[9] == 1.0 and combined.samples[10] == 0.0

    def test_concat_rate_mismatch(self):
        with pytest.raises(SignalError):
            Signal(np.ones(4), 1e3).concat(Signal(np.ones(4), 2e3))


class TestRegionInterval:
    def test_contains_half_open(self):
        iv = RegionInterval("r", 1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(1.999)
        assert not iv.contains(2.0)
        assert iv.duration == 1.0

    def test_overlaps(self):
        iv = RegionInterval("r", 1.0, 2.0)
        assert iv.overlaps(1.5, 3.0)
        assert iv.overlaps(0.0, 1.1)
        assert not iv.overlaps(2.0, 3.0)
        assert not iv.overlaps(0.0, 1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(SignalError):
            RegionInterval("r", 2.0, 1.0)


class TestRegionTimeline:
    def make(self):
        return RegionTimeline(
            [
                RegionInterval("a", 0.0, 1.0),
                RegionInterval("b", 1.0, 3.0),
                RegionInterval("a", 3.0, 4.0),
            ]
        )

    def test_region_at(self):
        tl = self.make()
        assert tl.region_at(0.5) == "a"
        assert tl.region_at(2.0) == "b"
        assert tl.region_at(3.5) == "a"
        assert tl.region_at(4.5) is None

    def test_dominant_region(self):
        tl = self.make()
        assert tl.dominant_region(0.8, 2.8) == "b"  # 1.8s of b vs 0.2s of a
        assert tl.dominant_region(0.0, 1.1) == "a"
        assert tl.dominant_region(10.0, 11.0) is None

    def test_rejects_overlap(self):
        with pytest.raises(SignalError):
            RegionTimeline(
                [RegionInterval("a", 0.0, 2.0), RegionInterval("b", 1.0, 3.0)]
            )

    def test_append_enforces_order(self):
        tl = self.make()
        with pytest.raises(SignalError):
            tl.append(RegionInterval("c", 0.0, 0.5))
        tl.append(RegionInterval("c", 4.0, 5.0))
        assert tl.region_at(4.5) == "c"

    def test_regions_in_first_appearance_order(self):
        assert self.make().regions() == ["a", "b"]

    def test_total_time(self):
        assert self.make().total_time("a") == pytest.approx(2.0)
        assert self.make().total_time("b") == pytest.approx(2.0)

    def test_shifted(self):
        shifted = self.make().shifted(10.0)
        assert shifted.region_at(10.5) == "a"
        assert shifted.t_end == pytest.approx(14.0)

    def test_empty_timeline(self):
        tl = RegionTimeline()
        assert tl.t_start == 0.0
        assert tl.t_end == 0.0
        assert tl.region_at(0.0) is None
        assert len(tl) == 0
