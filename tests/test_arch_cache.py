"""Unit tests for repro.arch.cache (functional model and analytic model)."""

import numpy as np
import pytest

from repro.arch.cache import Cache, CacheHierarchy, stream_miss_profile
from repro.arch.config import CacheConfig, MemoryConfig
from repro.programs.ir import MemRef


def tiny_cache(size=1024, assoc=2, line=64) -> Cache:
    return Cache(CacheConfig(size=size, assoc=assoc, line_size=line))


class TestFunctionalCache:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line
        assert cache.access(64) is False  # next line

    def test_lru_eviction(self):
        # Direct-mapped-like: 1 set via assoc == size/line.
        cache = Cache(CacheConfig(size=128, assoc=2, line_size=64))  # 1 set, 2 ways
        cache.access(0)      # line 0
        cache.access(64)     # line 1
        cache.access(0)      # touch line 0 (now MRU)
        cache.access(128)    # evicts line 1 (LRU)
        assert cache.access(0) is True
        assert cache.access(64) is False  # was evicted

    def test_miss_rate_counters(self):
        cache = tiny_cache()
        for _ in range(3):
            cache.access(0)
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.miss_rate == pytest.approx(1 / 3)

    def test_reset_stats(self):
        cache = tiny_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.miss_rate == 0.0

    def test_working_set_fits(self):
        cache = tiny_cache(size=4096, assoc=4)
        addrs = list(range(0, 2048, 4))
        for a in addrs:
            cache.access(a)
        cache.reset_stats()
        for a in addrs:
            cache.access(a)
        assert cache.miss_rate == 0.0

    def test_streaming_larger_than_cache(self):
        cache = tiny_cache(size=1024, assoc=2, line=64)
        # Walk 64 KiB twice: second pass should still miss once per line.
        cache.reset_stats()
        for _ in range(2):
            for a in range(0, 65536, 4):
                cache.access(a)
        # one miss per 16 accesses (64-byte line / 4-byte stride)
        assert cache.miss_rate == pytest.approx(1 / 16, rel=0.05)


class TestCacheHierarchy:
    def test_levels(self):
        mem = MemoryConfig(
            l1=CacheConfig(1024, 2, hit_latency=2),
            l2=CacheConfig(8192, 4, hit_latency=12),
            dram_latency=100,
        )
        h = CacheHierarchy(mem)
        first = h.access(0)
        assert first.level == "dram"
        assert first.latency == 100
        second = h.access(0)
        assert second.level == "l1"
        assert second.latency == 2

    def test_l2_hit_after_l1_eviction(self):
        mem = MemoryConfig(
            l1=CacheConfig(128, 2, line_size=64, hit_latency=2),  # 1 set, 2 ways
            l2=CacheConfig(8192, 4, hit_latency=12),
            dram_latency=100,
        )
        h = CacheHierarchy(mem)
        h.access(0)
        h.access(64)
        h.access(128)  # evicts line 0 from L1; L2 still has it
        result = h.access(0)
        assert result.level == "l2"


class TestAnalyticMissModel:
    def test_fitting_stream_never_misses(self):
        mem = MemoryConfig()
        ref = MemRef("small", footprint=4096, stride=4, pattern="seq")
        profile = stream_miss_profile(ref, mem)
        assert profile.l1_miss == 0.0
        assert profile.mean_penalty(mem) == 0.0

    def test_streaming_misses_once_per_line(self):
        mem = MemoryConfig()
        ref = MemRef("big", footprint=1 << 24, stride=4, pattern="seq")
        profile = stream_miss_profile(ref, mem)
        assert profile.l1_miss == pytest.approx(4 / 64)

    def test_random_large_footprint(self):
        mem = MemoryConfig()
        ref = MemRef("heap", footprint=1 << 20, pattern="rand")
        profile = stream_miss_profile(ref, mem)
        expected = 1.0 - (32 * 1024) / (1 << 20)
        assert profile.l1_miss == pytest.approx(expected)

    def test_none_ref_hits(self):
        profile = stream_miss_profile(None, MemoryConfig())
        assert profile.l1_miss == 0.0
        assert profile.l2_miss == 0.0

    def test_mean_penalty_increases_with_footprint(self):
        mem = MemoryConfig()
        small = stream_miss_profile(MemRef("a", footprint=1 << 18, pattern="rand"), mem)
        large = stream_miss_profile(MemRef("a", footprint=1 << 26, pattern="rand"), mem)
        assert large.mean_penalty(mem) > small.mean_penalty(mem)

    def test_analytic_matches_functional_for_streaming(self):
        """The analytic steady-state rate should track the real LRU cache."""
        mem = MemoryConfig(
            l1=CacheConfig(1024, 2, line_size=64, hit_latency=2),
            l2=CacheConfig(65536, 4, hit_latency=12),
        )
        ref = MemRef("s", footprint=1 << 20, stride=4, pattern="seq")
        cache = Cache(mem.l1)
        # Warm then measure one full pass.
        for a in range(0, 1 << 16, 4):
            cache.access(a)
        cache.reset_stats()
        for a in range(1 << 16, 1 << 17, 4):
            cache.access(a)
        profile = stream_miss_profile(ref, mem)
        assert cache.miss_rate == pytest.approx(profile.l1_miss, rel=0.05)

    def test_analytic_matches_functional_for_random(self):
        rng = np.random.default_rng(7)
        mem = MemoryConfig(
            l1=CacheConfig(4096, 4, line_size=64, hit_latency=2),
            l2=CacheConfig(65536, 4, hit_latency=12),
        )
        footprint = 1 << 16
        ref = MemRef("r", footprint=footprint, pattern="rand")
        cache = Cache(mem.l1)
        addrs = rng.integers(0, footprint, size=30000)
        for a in addrs[:10000]:
            cache.access(int(a))
        cache.reset_stats()
        for a in addrs[10000:]:
            cache.access(int(a))
        profile = stream_miss_profile(ref, mem)
        assert cache.miss_rate == pytest.approx(profile.l1_miss, abs=0.05)
