"""Cross-validation: the fast composition engine vs the reference interpreter.

DESIGN.md D1 claims the vectorized engine preserves cycle-level semantics
at the path level. These tests check that claim against an independent
implementation (:mod:`repro.arch.reference`) that interprets every dynamic
instruction, uses the *functional* LRU caches with concrete addresses, and
drives branches through a *functional* two-bit predictor.
"""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.reference import ReferenceInterpreter
from repro.arch.simulator import Simulator
from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, MemRef, OpClass
from repro.programs.workloads import int_kernel, mem_kernel

CORE = CoreConfig.iot_inorder(clock_hz=1e8)


def run_both(program, seed=0, inputs=None):
    fast = Simulator(program, CORE).run(seed=seed, inputs=inputs)
    slow = ReferenceInterpreter(program, CORE).run(seed=seed, inputs=inputs)
    return fast, slow


def dominant_freq(power_signal):
    x = power_signal.samples - power_signal.samples.mean()
    spec = np.abs(np.fft.rfft(x)) ** 2
    freqs = np.fft.rfftfreq(len(x), 1 / power_signal.sample_rate)
    mask = freqs > 1e4  # skip the near-DC noise concentration
    return freqs[mask][np.argmax(spec[mask])]


class TestEngineAgainstReference:
    def test_pure_alu_loop_exact_instr_count_close_cycles(self):
        b = ProgramBuilder("p")
        b.block("init", int_kernel(10, "i"), next_block="L")
        b.counted_loop("L", int_kernel(120, "x"), trips=2000, exit="done")
        b.halt("done", int_kernel(5, "d"))
        program = b.build(entry="init")
        fast, slow = run_both(program)
        assert fast.instr_count == slow.instr_count
        # No stochastic events in this program: cycles must agree closely
        # (the engine runs paths back-to-back, the interpreter identically).
        assert fast.cycles == pytest.approx(slow.cycles, rel=0.02)

    def test_loop_spectral_peak_agrees(self):
        b = ProgramBuilder("p")
        b.block("init", [], next_block="L")
        b.counted_loop("L", int_kernel(150, "x"), trips=4000, exit="done")
        b.halt("done")
        program = b.build(entry="init")
        fast, slow = run_both(program)
        f_fast = dominant_freq(fast.power)
        f_slow = dominant_freq(slow.power)
        assert f_fast == pytest.approx(f_slow, rel=0.03)

    def test_l2_resident_stream_timing_agrees(self):
        """Analytic steady-state misses vs real LRU: same mean timing."""
        body = int_kernel(60, "x") + mem_kernel(
            8, "x", "buf", footprint=128 * 1024, pattern="seq"
        )
        b = ProgramBuilder("p")
        b.block("init", [], next_block="L")
        b.counted_loop("L", body, trips=3000, exit="done")
        b.halt("done")
        program = b.build(entry="init")
        fast, slow = run_both(program)
        assert fast.instr_count == slow.instr_count
        # Stochastic misses: mean cycles agree within 10%.
        assert fast.cycles == pytest.approx(slow.cycles, rel=0.10)
        # And the analytic L1 miss probability matches the functional LRU.
        from repro.arch.cache import stream_miss_profile

        profile = stream_miss_profile(
            MemRef("buf", footprint=128 * 1024, pattern="seq"), CORE.mem
        )
        assert slow.l1_miss_rate == pytest.approx(profile.l1_miss, abs=0.02)

    def test_random_stream_miss_rates_agree(self):
        body = int_kernel(40, "x") + mem_kernel(
            6, "x", "heap", footprint=1 << 20, pattern="rand"
        )
        b = ProgramBuilder("p")
        b.block("init", [], next_block="L")
        b.counted_loop("L", body, trips=2000, exit="done")
        b.halt("done")
        program = b.build(entry="init")
        fast, slow = run_both(program)
        from repro.arch.cache import stream_miss_profile

        profile = stream_miss_profile(
            MemRef("heap", footprint=1 << 20, pattern="rand"), CORE.mem
        )
        assert slow.l1_miss_rate == pytest.approx(profile.l1_miss, abs=0.05)
        assert fast.cycles == pytest.approx(slow.cycles, rel=0.15)

    def test_branchy_loop_mispredict_rate_matches_analytic(self):
        b = ProgramBuilder("p")
        b.block("init", [], next_block="W")
        b.branch_block("W", int_kernel(50, "x"), taken="W", not_taken="done",
                       taken_prob=0.999)
        b.halt("done")
        program = b.build(entry="init")
        slow = ReferenceInterpreter(program, CORE).run(seed=3)
        from repro.arch.branch import two_bit_mispredict_rate

        # Near-always-taken branch: low but nonzero mispredict rate.
        assert slow.mispredict_rate == pytest.approx(
            two_bit_mispredict_rate(0.999), abs=0.01
        )

    def test_two_loop_program_cycles(self):
        b = ProgramBuilder("p")
        b.block("init", int_kernel(8, "i"), next_block="L1")
        b.counted_loop("L1", int_kernel(90, "a"), trips=1500, exit="mid")
        b.block("mid", int_kernel(20, "m"), next_block="L2")
        b.counted_loop("L2", int_kernel(160, "b"), trips=1000, exit="done")
        b.halt("done")
        program = b.build(entry="init")
        fast, slow = run_both(program)
        assert fast.instr_count == slow.instr_count
        assert fast.cycles == pytest.approx(slow.cycles, rel=0.02)

    def test_random_loop_chains_agree(self):
        """Property-style sweep: random loop-chain programs, both
        implementations agree on instruction counts exactly and cycle
        counts closely."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=12, deadline=None)
        @given(
            body_sizes=st.lists(
                st.integers(min_value=30, max_value=200), min_size=1, max_size=3
            ),
            trips=st.integers(min_value=50, max_value=800),
            inter_size=st.integers(min_value=0, max_value=30),
        )
        def check(body_sizes, trips, inter_size):
            b = ProgramBuilder("rand")
            b.block("init", int_kernel(5, "i"), next_block="L0")
            for k, size in enumerate(body_sizes):
                nxt = f"mid{k}" if k + 1 < len(body_sizes) else "done"
                b.counted_loop(f"L{k}", int_kernel(size, f"x{k}"),
                               trips=trips, exit=nxt)
                if k + 1 < len(body_sizes):
                    b.block(f"mid{k}", int_kernel(inter_size, f"m{k}"),
                            next_block=f"L{k + 1}")
            b.halt("done")
            program = b.build(entry="init")
            fast, slow = run_both(program)
            assert fast.instr_count == slow.instr_count
            assert fast.cycles == pytest.approx(slow.cycles, rel=0.03)

        check()

    def test_budget_guard(self):
        from repro.errors import SimulationError

        b = ProgramBuilder("p")
        b.block("init", [], next_block="L")
        b.counted_loop("L", int_kernel(200, "x"), trips=10_000_000, exit="done")
        b.halt("done")
        with pytest.raises(SimulationError, match="budget"):
            ReferenceInterpreter(b.build(entry="init"), CORE).run(seed=0)
