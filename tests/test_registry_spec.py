"""Registry spec grammar: round-trip, canonicalization, typed rejection.

The spec grammar (DESIGN.md D23) is the fleet's addressing surface --
CLI arguments, OPEN frames from network peers, checkpoint metadata all
funnel through :func:`repro.serve.registry.parse_spec`. Two properties
are load-bearing:

- **round-trip**: ``parse_spec(str(parsed)) == parsed`` for every
  well-formed spec, so specs survive being stored and echoed;
- **typed rejection**: malformed input raises
  :class:`~repro.errors.RegistryError` with ``code='bad_spec'`` --
  never a traceback, never a silent mis-parse.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RegistryError
from repro.serve.registry import ParsedSpec, parse_spec

names = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9._-]{0,24}", fullmatch=True)
versions = st.one_of(st.none(), st.integers(min_value=1, max_value=99999))
hex_digits = "0123456789abcdef"
cals = st.one_of(
    st.none(),
    st.text(alphabet=hex_digits, min_size=6, max_size=12),
)
fingerprints = st.text(alphabet=hex_digits, min_size=6, max_size=64)


class TestRoundTrip:
    @given(name=names, version=versions, cal=cals)
    @settings(max_examples=200, deadline=None)
    def test_name_specs_round_trip(self, name, version, cal):
        spec = ParsedSpec(name=name, version=version, cal=cal)
        assert parse_spec(str(spec)) == spec

    @given(fingerprint=fingerprints)
    @settings(max_examples=100, deadline=None)
    def test_fingerprint_specs_round_trip(self, fingerprint):
        spec = ParsedSpec(fingerprint=fingerprint)
        assert parse_spec(str(spec)) == spec

    @given(fingerprint=fingerprints)
    @settings(max_examples=50, deadline=None)
    def test_hex_case_is_canonicalized(self, fingerprint):
        assert parse_spec(f"fp:{fingerprint.upper()}") == ParsedSpec(
            fingerprint=fingerprint
        )

    def test_version_forms(self):
        assert parse_spec("m@3") == parse_spec("m@v3")
        assert parse_spec("m@latest") == parse_spec("m")
        assert parse_spec("m").version is None


class TestRejection:
    @pytest.mark.parametrize("spec", [
        "",
        "fp:",
        "fp:abc",  # too short
        "fp:nothex",
        "fp:abcdef@1",  # version on a content address
        "@1",
        "m@",
        "m@0",
        "m@-1",
        "m@1.5",
        "m@@1",
        ".m",  # name must start alphanumeric
        "na me",
        "m+cal",
        "m+cal:",
        "m+cal:abc",  # too short
        "m+cal:abcdefabcdefa",  # > 12 digits
        "m+cal:nothexx",
        "m+gpu:abcdef",  # unknown suffix
        "m@1+cal:abc def",
        None,
        7,
    ])
    def test_malformed_specs_are_typed_refusals(self, spec):
        with pytest.raises(RegistryError) as excinfo:
            parse_spec(spec)
        assert excinfo.value.code == "bad_spec"

    @given(st.text(max_size=30))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_parses_or_refuses_typed(self, text):
        # Never anything but a ParsedSpec or a typed bad_spec error.
        try:
            parsed = parse_spec(text)
        except RegistryError as error:
            assert error.code == "bad_spec"
        else:
            assert parse_spec(str(parsed)) == parsed
