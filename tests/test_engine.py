"""Unit tests for the composition engine (repro.arch.engine)."""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.engine import CompositionEngine, TraceBuilder
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import find_loops
from repro.errors import SimulationError
from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, MemRef, OpClass


def adds(n):
    return [Instr(OpClass.IADD, dst=f"r{i % 8}") for i in range(n)]


def make_engine(build, core=None):
    """build: callable(ProgramBuilder) configuring blocks; returns engine+forest."""
    b = ProgramBuilder("t")
    build(b)
    program = b.build(entry="init")
    cfg = ControlFlowGraph.from_program(program)
    forest = find_loops(cfg)
    core = core or CoreConfig(clock_hz=1e8)
    return CompositionEngine(program, core, forest), forest, program


class TestTraceBuilder:
    def test_binning_means(self):
        tb = TraceBuilder(cycles_per_sample=4)
        tb.add_cycles(np.array([1.0, 1.0, 3.0, 3.0, 5.0, 5.0, 7.0, 7.0]))
        assert np.allclose(tb.samples(), [2.0, 6.0])

    def test_carry_across_chunks(self):
        tb = TraceBuilder(cycles_per_sample=4)
        tb.add_cycles(np.array([2.0, 2.0]))
        assert len(tb.samples()) == 0
        tb.add_cycles(np.array([4.0, 4.0, 8.0]))
        assert np.allclose(tb.samples(), [3.0])
        assert tb.total_cycles == 5

    def test_add_constant(self):
        tb = TraceBuilder(cycles_per_sample=2)
        tb.add_constant(1.5, 4)
        assert np.allclose(tb.samples(), [1.5, 1.5])

    def test_invalid_cps(self):
        with pytest.raises(SimulationError):
            TraceBuilder(0)


class TestLeafLoopRendering:
    def build_counted(self, b):
        b.block("init", [], next_block="L")
        b.counted_loop("L", adds(30), trips=500, exit="out")
        b.halt("out")

    def test_iteration_count_and_cycles(self):
        engine, forest, program = make_engine(self.build_counted)
        tb = TraceBuilder(1)
        rng = np.random.default_rng(0)
        execution = engine.run_nest(forest.by_header("L"), {}, rng, tb)
        assert execution.iterations == 500
        assert execution.exit_block == "out"
        # 31 dynamic instrs per iteration (body + latch branch).
        assert execution.instr_count == 500 * 31
        assert tb.total_cycles > 500  # at least a cycle per iteration

    def test_periodicity_in_waveform(self):
        """A uniform counted loop must produce a strongly periodic signal."""
        engine, forest, program = make_engine(self.build_counted)
        tb = TraceBuilder(1)
        rng = np.random.default_rng(0)
        execution = engine.run_nest(forest.by_header("L"), {}, rng, tb)
        samples = tb.samples()
        period = tb.total_cycles / execution.iterations
        spec = np.abs(np.fft.rfft(samples - samples.mean())) ** 2
        freqs = np.fft.rfftfreq(len(samples))
        fundamental = 1.0 / period
        # The strongest spectral line must be a harmonic of the iteration
        # frequency (within-iteration structure makes harmonics strong, as
        # in the paper's Figure 1 sidebands and their harmonics).
        peak_freq = freqs[np.argmax(spec)]
        harmonic = peak_freq / fundamental
        assert harmonic == pytest.approx(round(harmonic), abs=0.05)
        # And the fundamental itself must stand far above the noise floor.
        fund_bin = int(round(fundamental * len(samples)))
        fund_power = spec[fund_bin - 1: fund_bin + 2].max()
        assert fund_power > 100 * np.median(spec)

    def test_deterministic_given_seed(self):
        engine, forest, _ = make_engine(self.build_counted)
        out = []
        for _ in range(2):
            tb = TraceBuilder(1)
            engine.run_nest(forest.by_header("L"), {}, np.random.default_rng(7), tb)
            out.append(tb.samples())
        assert np.array_equal(out[0], out[1])

    def test_branchy_loop_mixes_paths(self):
        def build(b):
            b.block("init", [], next_block="L")
            b.branchy_loop(
                "L",
                paths=[(0.5, adds(10)), (0.5, adds(40))],
                trips=2000,
                exit="out",
            )
            b.halt("out")

        engine, forest, _ = make_engine(build)
        tb = TraceBuilder(1)
        execution = engine.run_nest(
            forest.by_header("L"), {}, np.random.default_rng(1), tb
        )
        assert execution.iterations == 2000
        # Mean dynamic length must be between the two path extremes.
        per_iter = execution.instr_count / 2000
        assert 13 < per_iter < 45

    def test_param_trip_count(self):
        def build(b):
            b.param("n", "int", 100, 100)
            b.block("init", [], next_block="L")
            b.counted_loop("L", adds(5), trips="n", exit="out")
            b.halt("out")

        engine, forest, program = make_engine(build)
        tb = TraceBuilder(1)
        execution = engine.run_nest(
            forest.by_header("L"), {"n": 100}, np.random.default_rng(0), tb
        )
        assert execution.iterations == 100


class TestConditionalExitLoop:
    def test_geometric_trip_counts(self):
        """A while-style loop exits with the branch's exit probability."""

        def build(b):
            b.block("init", [], next_block="W")
            b.branch_block("W", adds(10), taken="W", not_taken="out", taken_prob=0.99)
            b.halt("out")

        engine, forest, _ = make_engine(build)
        counts = []
        for seed in range(60):
            tb = TraceBuilder(1)
            execution = engine.run_nest(
                forest.by_header("W"), {}, np.random.default_rng(seed), tb
            )
            assert execution.exit_block == "out"
            counts.append(execution.iterations)
        # Geometric with p = 0.01 -> mean 100.
        assert 50 < np.mean(counts) < 200

    def test_counted_loop_with_break(self):
        """A counted loop with an early-exit branch can leave both ways."""
        from repro.programs.ir import BasicBlock, LoopBack

        b = ProgramBuilder("t")
        b.block("init", [], next_block="L")
        b.branch_block("L", adds(10), taken="brk", not_taken="L.latch", taken_prob=0.0005)
        b.block("brk", adds(2), next_block="out_break")
        b.add(BasicBlock("L.latch", adds(2), LoopBack("L", "out_normal", 1000)))
        b.halt("out_break")
        b.halt("out_normal")
        program = b.build(entry="init")
        cfg = ControlFlowGraph.from_program(program)
        forest = find_loops(cfg)
        engine = CompositionEngine(program, CoreConfig(clock_hz=1e8), forest)
        exits = set()
        for seed in range(30):
            tb = TraceBuilder(1)
            execution = engine.run_nest(
                forest.by_header("L"), {}, np.random.default_rng(seed), tb
            )
            exits.add(execution.exit_block)
        # With p_break=0.002 and 5000 trips, both ways out should occur:
        # the break path (continuing at block "brk", outside the loop) and
        # the counted exit.
        assert exits == {"brk", "out_normal"}


class TestNestedLoopRendering:
    def test_nested_counts(self):
        def build(b):
            b.block("init", [], next_block="N")
            b.nested_loop(
                "N",
                inner_body=adds(20),
                inner_trips=50,
                outer_trips=10,
                exit="out",
                outer_pre=adds(3),
                outer_post=adds(2),
            )
            b.halt("out")

        engine, forest, _ = make_engine(build)
        tb = TraceBuilder(1)
        execution = engine.run_nest(
            forest.by_header("N"), {}, np.random.default_rng(0), tb
        )
        assert execution.exit_block == "out"
        assert execution.iterations == 10
        # inner: 50*(20+1) per outer iteration; outer adds pre 3+1(jump),
        # post 2+1(branch) -- exact bookkeeping checked loosely:
        assert execution.instr_count > 10 * 50 * 20

    def test_injection_into_inner_loop(self):
        def build(b):
            b.block("init", [], next_block="N")
            b.nested_loop(
                "N", inner_body=adds(20), inner_trips=50, outer_trips=10, exit="out"
            )
            b.halt("out")

        engine, forest, _ = make_engine(build)
        engine.loop_injections["N.inner"] = (tuple(adds(8)), 1.0)
        tb = TraceBuilder(1)
        execution = engine.run_nest(
            forest.by_header("N"), {}, np.random.default_rng(0), tb
        )
        assert execution.injected_instr_count == 10 * 50 * 8


class TestInjectionContamination:
    def build(self, b):
        b.block("init", [], next_block="L")
        b.counted_loop("L", adds(30), trips=10000, exit="out")
        b.halt("out")

    @pytest.mark.parametrize("rate", [0.0, 0.3, 1.0])
    def test_injected_fraction_tracks_contamination(self, rate):
        engine, forest, _ = make_engine(self.build)
        engine.loop_injections["L"] = (tuple(adds(8)), rate)
        tb = TraceBuilder(1)
        execution = engine.run_nest(
            forest.by_header("L"), {}, np.random.default_rng(5), tb
        )
        expected = 10000 * 8 * rate
        assert execution.injected_instr_count == pytest.approx(expected, rel=0.1, abs=10)

    def test_injection_lengthens_execution(self):
        engine, forest, _ = make_engine(self.build)
        tb_clean = TraceBuilder(1)
        engine.run_nest(forest.by_header("L"), {}, np.random.default_rng(0), tb_clean)
        engine.loop_injections["L"] = (tuple(adds(8)), 1.0)
        tb_injected = TraceBuilder(1)
        engine.run_nest(forest.by_header("L"), {}, np.random.default_rng(0), tb_injected)
        assert tb_injected.total_cycles > tb_clean.total_cycles


class TestRunRepeated:
    def test_instruction_count(self):
        engine, _, _ = make_engine(
            lambda b: (b.block("init", [], next_block="L"),
                       b.counted_loop("L", adds(5), trips=10, exit="out"),
                       b.halt("out"))
        )
        tb = TraceBuilder(1)
        executed = engine.run_repeated(adds(50), 100, np.random.default_rng(0), tb)
        assert executed == 5000
        assert tb.total_cycles > 0

    def test_zero_iterations(self):
        engine, _, _ = make_engine(
            lambda b: (b.block("init", [], next_block="L"),
                       b.counted_loop("L", adds(5), trips=10, exit="out"),
                       b.halt("out"))
        )
        tb = TraceBuilder(1)
        assert engine.run_repeated(adds(50), 0, np.random.default_rng(0), tb) == 0


class TestOOOVariance:
    def test_ooo_iteration_time_varies_more(self):
        """Matches the paper: OOO cores produce more STS variation."""

        def build(b):
            b.block("init", [], next_block="L")
            body = adds(40) + [
                Instr(OpClass.LOAD, dst="m", srcs=("p",),
                      mem=MemRef("arr", footprint=1 << 22, pattern="rand"))
            ] * 4
            b.counted_loop("L", body, trips=4000, exit="out")
            b.halt("out")

        lengths = {}
        for kind in ("inorder", "ooo"):
            core = CoreConfig(kind=kind, issue_width=2, rob_size=64, clock_hz=1e8)
            engine, forest, _ = make_engine(build, core)
            per_iter = []
            for seed in range(10):
                tb = TraceBuilder(1)
                execution = engine.run_nest(
                    forest.by_header("L"), {}, np.random.default_rng(seed), tb
                )
                per_iter.append(tb.total_cycles / execution.iterations)
            lengths[kind] = np.std(per_iter) / np.mean(per_iter)
        assert lengths["ooo"] > 0
