"""Unit tests for repro.arch.branch."""

import numpy as np
import pytest

from repro.arch.branch import GShare, TwoBitPredictor, two_bit_mispredict_rate
from repro.errors import ConfigurationError


class TestTwoBitPredictor:
    def test_always_taken_learns(self):
        pred = TwoBitPredictor(initial_state=0)
        for _ in range(5):
            pred.update(True)
        assert pred.predict() is True
        pred.reset = None  # no-op guard against typo'd API
        for _ in range(100):
            assert pred.update(True)

    def test_hysteresis_survives_single_flip(self):
        pred = TwoBitPredictor(initial_state=3)
        pred.update(False)  # one not-taken: state 2, still predicts taken
        assert pred.predict() is True

    def test_two_flips_change_prediction(self):
        pred = TwoBitPredictor(initial_state=3)
        pred.update(False)
        pred.update(False)
        assert pred.predict() is False

    def test_invalid_state(self):
        with pytest.raises(ConfigurationError):
            TwoBitPredictor(initial_state=5)

    def test_mispredict_rate_counter(self):
        pred = TwoBitPredictor(initial_state=0)
        pred.update(True)   # predicted NT, was T: mispredict
        pred.update(False)  # predicted NT, was NT: correct
        assert pred.mispredict_rate == pytest.approx(0.5)


class TestGShare:
    def test_learns_alternating_pattern(self):
        """gshare with history should learn a strict T/NT alternation."""
        gshare = GShare(table_bits=8, history_bits=4)
        pc = 0x400
        outcomes = [bool(i % 2) for i in range(2000)]
        for taken in outcomes:
            gshare.update(pc, taken)
        # Measure over the last 500: should be near-perfect.
        before = gshare.mispredictions
        for i in range(2000, 2500):
            gshare.update(pc, bool(i % 2))
        assert gshare.mispredictions - before < 10

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            GShare(table_bits=0)

    def test_distinct_pcs_use_distinct_counters(self):
        gshare = GShare(table_bits=10, history_bits=0)
        gshare.update(0, True)
        gshare.update(0, True)
        assert gshare.predict(0) is True
        # An untouched PC retains the default weak-taken state.
        assert gshare.predict(1) is True


class TestAnalyticMispredictRate:
    def test_degenerate_probs(self):
        assert two_bit_mispredict_rate(0.0) == 0.0
        assert two_bit_mispredict_rate(1.0) == 0.0

    def test_symmetry(self):
        assert two_bit_mispredict_rate(0.3) == pytest.approx(
            two_bit_mispredict_rate(0.7), abs=1e-12
        )

    def test_worst_case_at_half(self):
        rate_half = two_bit_mispredict_rate(0.5)
        assert rate_half == pytest.approx(0.5, abs=1e-9)
        assert two_bit_mispredict_rate(0.9) < rate_half

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            two_bit_mispredict_rate(1.5)

    @pytest.mark.parametrize("p", [0.1, 0.25, 0.5, 0.8, 0.95])
    def test_matches_functional_simulation(self, p):
        """The stationary rate must match a long two-bit counter simulation."""
        rng = np.random.default_rng(42)
        pred = TwoBitPredictor()
        outcomes = rng.random(200_000) < p
        for taken in outcomes[:1000]:  # warm up to stationarity
            pred.update(bool(taken))
        pred.predictions = pred.mispredictions = 0
        for taken in outcomes[1000:]:
            pred.update(bool(taken))
        assert pred.mispredict_rate == pytest.approx(
            two_bit_mispredict_rate(p), abs=0.01
        )
