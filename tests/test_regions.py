"""Unit tests for the region-level state machine (repro.cfg.regions)."""

import pytest

from repro.cfg.regions import ENTRY, EXIT, build_region_machine
from repro.errors import AnalysisError
from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, OpClass


IADD = Instr(OpClass.IADD, dst="r1")


def two_loop_program():
    """init -> L1 -> mid -> L2 -> done, the canonical two-region program."""
    b = ProgramBuilder("two")
    b.block("init", [IADD], next_block="L1")
    b.counted_loop("L1", [IADD], trips=100, exit="mid")
    b.block("mid", [IADD], next_block="L2")
    b.counted_loop("L2", [IADD], trips=100, exit="done")
    b.halt("done")
    return b.build(entry="init")


class TestBuildRegionMachine:
    def test_two_loops(self):
        machine = build_region_machine(two_loop_program())
        assert set(machine.loop_regions) == {"loop:L1", "loop:L2"}
        names = set(machine.inter_regions)
        assert "inter:ENTRY->loop:L1" in names
        assert "inter:loop:L1->loop:L2" in names
        assert "inter:loop:L2->EXIT" in names
        assert len(machine) == 5

    def test_inter_region_blocks(self):
        machine = build_region_machine(two_loop_program())
        mid = machine.inter_regions["inter:loop:L1->loop:L2"]
        assert mid.blocks == frozenset({"mid"})
        pre = machine.inter_regions["inter:ENTRY->loop:L1"]
        assert pre.blocks == frozenset({"init"})
        post = machine.inter_regions["inter:loop:L2->EXIT"]
        assert post.blocks == frozenset({"done"})

    def test_successors_chain(self):
        machine = build_region_machine(two_loop_program())
        assert machine.successors("loop:L1") == ["inter:loop:L1->loop:L2"]
        assert machine.successors("inter:loop:L1->loop:L2") == ["loop:L2"]
        assert machine.successors("loop:L2") == ["inter:loop:L2->EXIT"]
        assert machine.successors("inter:loop:L2->EXIT") == []

    def test_initial_regions(self):
        machine = build_region_machine(two_loop_program())
        assert machine.initial_regions() == ["inter:ENTRY->loop:L1"]

    def test_unknown_region_successors(self):
        machine = build_region_machine(two_loop_program())
        with pytest.raises(AnalysisError):
            machine.successors("loop:nope")

    def test_region_of_block(self):
        machine = build_region_machine(two_loop_program())
        assert machine.region_of_block("L1") == "loop:L1"
        assert machine.region_of_block("mid") is None

    def test_loopless_program(self):
        b = ProgramBuilder("flat")
        b.block("a", [IADD], next_block="b")
        b.halt("b")
        machine = build_region_machine(b.build(entry="a"))
        assert not machine.loop_regions
        assert list(machine.inter_regions) == [f"inter:{ENTRY}->{EXIT}"]

    def test_nest_is_single_region(self):
        b = ProgramBuilder("nest")
        b.block("init", [], next_block="N")
        b.nested_loop(
            "N", inner_body=[IADD], inner_trips=10, outer_trips=5, exit="done"
        )
        b.halt("done")
        machine = build_region_machine(b.build(entry="init"))
        assert set(machine.loop_regions) == {"loop:N"}
        nest = machine.loop_regions["loop:N"]
        assert nest.blocks == frozenset({"N", "N.inner", "N.latch"})

    def test_branch_between_loops_merges_parallel_edges(self):
        # L1 exits to a diamond (mid_a | mid_b) that reconverges before L2:
        # both paths must collapse into ONE inter-loop region L1->L2.
        b = ProgramBuilder("diamond")
        b.block("init", [], next_block="L1")
        b.counted_loop("L1", [IADD], trips=10, exit="split")
        b.branch_block("split", [], taken="mid_a", not_taken="mid_b", taken_prob=0.5)
        b.block("mid_a", [IADD], next_block="L2")
        b.block("mid_b", [IADD, IADD], next_block="L2")
        b.counted_loop("L2", [IADD], trips=10, exit="done")
        b.halt("done")
        machine = build_region_machine(b.build(entry="init"))
        inter = machine.inter_regions["inter:loop:L1->loop:L2"]
        assert {"split", "mid_a", "mid_b"} <= set(inter.blocks)
        # Exactly one edge from L1 to L2.
        assert machine.successors("loop:L1") == ["inter:loop:L1->loop:L2"]

    def test_loop_skippable_by_branch(self):
        # A branch may bypass L2 entirely: L1 then has two successor edges.
        b = ProgramBuilder("skip")
        b.block("init", [], next_block="L1")
        b.counted_loop("L1", [IADD], trips=10, exit="choose")
        b.branch_block("choose", [], taken="L2", not_taken="done", taken_prob=0.5)
        b.counted_loop("L2", [IADD], trips=10, exit="done")
        b.halt("done")
        machine = build_region_machine(b.build(entry="init"))
        succ = set(machine.successors("loop:L1"))
        assert succ == {"inter:loop:L1->loop:L2", "inter:loop:L1->EXIT"}

    def test_adjacent_loops_direct_edge(self):
        # L1's exit is L2's header: empty inter-loop region still exists.
        b = ProgramBuilder("adjacent")
        b.block("init", [], next_block="L1")
        b.counted_loop("L1", [IADD], trips=10, exit="L2")
        b.counted_loop("L2", [IADD], trips=10, exit="done")
        b.halt("done")
        machine = build_region_machine(b.build(entry="init"))
        inter = machine.inter_regions["inter:loop:L1->loop:L2"]
        assert inter.blocks == frozenset()

    def test_region_names_unique_and_complete(self):
        machine = build_region_machine(two_loop_program())
        names = machine.region_names()
        assert len(names) == len(set(names))
        assert len(names) == len(machine)
