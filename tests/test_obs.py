"""Unit and integration tests for the observability layer (repro.obs).

Covers the three sub-layers -- tracing spans, typed metrics, run
manifests -- plus the contracts the rest of the PR relies on: disabled
paths are no-ops, worker exports merge deterministically, and a parallel
experiment's manifest diffs clean against the serial one on everything
except timings/environment.
"""

import json
import threading

import numpy as np
import pytest

from repro import cache as cache_mod
from repro import obs
from repro.experiments.runner import Scale, parallel_map
from repro.experiments.tables_common import run_table

TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16))


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts disabled with empty state and leaves it that way."""
    obs.disable()
    obs.reset()
    cache_mod.configure(None)
    yield
    obs.disable()
    obs.reset()
    cache_mod.configure(None)


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        a = obs.span("x")
        b = obs.span("y")
        assert a is b  # one shared no-op object, nothing recorded
        with a:
            pass
        assert obs.get_collector().spans == []

    def test_nesting_and_parent_indices(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        spans = obs.get_collector().spans
        names = [(s.name, s.parent) for s in spans]
        outer = next(i for i, s in enumerate(spans) if s.name == "outer")
        assert ("outer", -1) in names
        assert all(s.parent == outer for s in spans if s.name == "inner")
        assert all(s.wall_s >= 0 and s.cpu_s >= 0 for s in spans)

    def test_export_merge_rebases_parents(self):
        obs.enable()
        with obs.span("worker-root"):
            with obs.span("worker-child"):
                pass
        exported = obs.export_spans(reset=True)
        assert obs.get_collector().spans == []
        with obs.span("parent"):
            obs.merge_spans(exported)
        spans = obs.get_collector().spans
        by_name = {s.name: s for s in spans}
        parent_idx = spans.index(by_name["parent"])
        root_idx = spans.index(by_name["worker-root"])
        assert by_name["worker-root"].parent == parent_idx
        assert by_name["worker-child"].parent == root_idx

    def test_aggregate_and_tree(self):
        obs.enable()
        for _ in range(3):
            with obs.span("stage"):
                pass
        agg = obs.aggregate_spans()
        assert agg["stage"]["count"] == 3
        assert "stage x3" in obs.format_span_tree()

    def test_exception_still_closes_span(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        spans = obs.get_collector().spans
        assert len(spans) == 1 and spans[0].t_start > 0


class TestMetrics:
    def test_disabled_mutations_are_noops(self):
        obs.counter("m", "c").inc(5)
        obs.gauge("m", "g").set(3.0)
        obs.histogram("m", "h", (0, 1, 2)).record(0.5)
        snap = obs.snapshot()
        assert snap["counters"]["m/c"] == 0
        assert snap["gauges"]["m/g"]["set"] is False
        assert snap["histograms"]["m/h"]["count"] == 0

    def test_counter_rejects_negative(self):
        obs.enable()
        with pytest.raises(ValueError):
            obs.counter("m", "c").inc(-1)

    def test_kind_mismatch(self):
        obs.counter("m", "x")
        with pytest.raises(TypeError):
            obs.gauge("m", "x")

    def test_histogram_binning_and_stats(self):
        obs.enable()
        h = obs.histogram("m", "h", (0.0, 1.0, 2.0))
        h.record_many([-0.5, 0.5, 1.5, 5.0, float("nan")])
        d = h.to_dict()
        assert d["bins"] == [1, 1, 1, 1]  # below, [0,1), [1,2), above
        assert d["count"] == 4
        assert d["min"] == -0.5 and d["max"] == 5.0

    def test_snapshot_merge_adds(self):
        obs.enable()
        obs.counter("m", "c").inc(2)
        obs.histogram("m", "h", (0.0, 1.0)).record(0.5)
        snap = obs.snapshot()
        obs.merge_snapshot(snap)
        merged = obs.snapshot()
        assert merged["counters"]["m/c"] == 4
        assert merged["histograms"]["m/h"]["count"] == 2

    def test_merge_creates_missing_instruments(self):
        obs.enable()
        obs.counter("m", "c").inc(1)
        snap = obs.snapshot()
        obs.reset()
        obs.merge_snapshot(snap)
        assert obs.snapshot()["counters"]["m/c"] == 1

    def test_histogram_merge_requires_same_edges(self):
        obs.enable()
        h = obs.histogram("m", "h", (0.0, 1.0))
        with pytest.raises(ValueError):
            h.merge({"edges": [0.0, 2.0], "bins": [0, 0, 0], "count": 0,
                     "sum": 0.0, "min": None, "max": None})


class TestManifest:
    def test_write_load_roundtrip(self, tmp_path):
        obs.enable()
        with obs.span("stage"):
            obs.counter("m", "c").inc(3)
        manifest = obs.build_manifest("exp", scale=TINY, result={"x": 1.5})
        path = obs.write_manifest(manifest, tmp_path / "m.json")
        loaded = obs.load_manifest(path)
        assert obs.diff_manifests(manifest, loaded, ignore=()) == []

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": {"kind": "other"}}))
        with pytest.raises(ValueError):
            obs.load_manifest(path)

    def test_identity_records_config_and_seeds(self):
        manifest = obs.build_manifest("exp", scale=TINY, jobs=1)
        identity = manifest["identity"]
        assert identity["experiment"] == "exp"
        assert identity["seeds"]["train_seed"] == TINY.train_seed(0)
        assert identity["seeds"]["monitor_seed"] == TINY.monitor_seed(0)
        assert len(identity["config_fingerprint"]) == 64
        # Same config -> same fingerprint; different scale -> different.
        again = obs.build_manifest("exp", scale=TINY, jobs=4)
        assert (
            again["identity"]["config_fingerprint"]
            == identity["config_fingerprint"]
        )
        other = obs.build_manifest(
            "exp", scale=Scale(train_runs=3, clean_runs=1, injected_runs=1)
        )
        assert (
            other["identity"]["config_fingerprint"]
            != identity["config_fingerprint"]
        )

    def test_diff_flags_value_and_structure_changes(self):
        a = obs.build_manifest("exp", scale=TINY, result={"v": 1.0})
        b = json.loads(json.dumps(a))
        b["results"]["result"]["v"] = 2.0
        diffs = obs.diff_manifests(a, b)
        assert len(diffs) == 1 and diffs[0].path == "results.result.v"
        del b["results"]["result"]
        diffs = obs.diff_manifests(a, b)
        assert any("results.result" in d.path for d in diffs)

    def test_diff_tolerates_float_jitter_and_nan(self):
        a = obs.build_manifest("exp", result={"v": 1.0, "n": float("nan")})
        b = json.loads(json.dumps(a))
        b["results"]["result"]["v"] = 1.0 + 1e-12
        assert obs.diff_manifests(a, b) == []

    def test_diff_ignores_timings_and_environment_by_default(self):
        a = obs.build_manifest("exp")
        b = json.loads(json.dumps(a))
        b["environment"]["git_sha"] = "somewhere-else"
        b["timings"]["total_wall_s"] = 123.0
        assert obs.diff_manifests(a, b) == []
        assert obs.diff_manifests(a, b, ignore=()) != []

    def test_jsonify_numpy_and_dataclass(self):
        out = obs.jsonify(
            {"a": np.float64(1.5), "b": np.arange(3), 2: "int-key"}
        )
        assert out == {"2": "int-key", "a": 1.5, "b": [0, 1, 2]}


class TestOverhead:
    def test_span_overhead_estimate_positive_and_isolated(self):
        obs.enable()
        before = len(obs.get_collector().spans)
        per_span = obs.trace.estimate_span_overhead_s(samples=64)
        assert per_span > 0
        assert len(obs.get_collector().spans) == before  # no pollution


def _noop_task(x):  # top-level so the pool can pickle it
    return x


class TestParallelObservability:
    def test_parallel_map_merges_worker_state(self, tmp_path):
        obs.enable()
        cache_mod.configure(tmp_path)
        run_table(TINY, "power", benchmarks=["bitcount"], jobs=2)
        snap = obs.snapshot()
        # Work happened only in workers, yet the parent sees it all.
        assert snap["counters"]["arch.simulator/runs"] > 0
        assert snap["counters"]["repro.cache/puts"] > 0
        assert any(
            s.name == "benchmark.bitcount" for s in obs.get_collector().spans
        )
        cache_mod.disable()

    def test_serial_and_parallel_manifests_diff_clean(self, tmp_path):
        """The tentpole contract: --jobs 2 and serial runs produce
        manifests that differ in nothing but timings/environment."""
        manifests = []
        for jobs, subdir in ((1, "a"), (2, "b")):
            obs.enable()
            obs.reset()
            cache_mod.configure(tmp_path / subdir)
            result = run_table(
                TINY, "power", benchmarks=["bitcount", "basicmath"], jobs=jobs
            )
            cache_mod.disable()
            manifests.append(
                obs.build_manifest(
                    "table2", scale=TINY, result=result, jobs=jobs
                )
            )
        serial, parallel = manifests
        diffs = obs.diff_manifests(serial, parallel)
        assert diffs == [], obs.format_diff(diffs)
        # jobs is recorded -- in the (ignored) environment section.
        assert serial["environment"]["jobs"] == 1
        assert parallel["environment"]["jobs"] == 2

    def test_disabled_parallel_map_ships_plain_results(self):
        assert parallel_map(_noop_task, [1, 2, 3], jobs=2) == [1, 2, 3]
        assert obs.get_collector().spans == []
