"""Serving resilience (DESIGN.md D19): checkpoint/resume under fire.

The load-bearing assertions: a session interrupted mid-stream -- by a
chaos proxy resetting/truncating connections, by a scripted kill, or by
a full server stop/start -- finishes with reports and a summary
bit-identical to an uninterrupted local :class:`StreamingMonitor` run,
with zero windows lost and zero windows scored twice. Around that:
graceful drain, protocol-revision-1 compatibility, typed I/O deadlines,
and resume-token authentication.
"""

import dataclasses
import socket
import threading

import pytest
from conftest import shared_tiny_detector as detector_for
from conftest import tiny_scale

from repro.errors import ProtocolError, ServeError, ServeTimeoutError
from repro.serve import (
    ChaosConfig,
    ChaosProxy,
    EddieClient,
    ModelRegistry,
    ServerConfig,
    serve_in_thread,
)
from repro.serve.protocol import (
    FrameType,
    json_frame,
    parse_json,
    recv_frame,
    send_frame,
)
from repro.stream import StreamingMonitor

TINY = tiny_scale()


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    reg = ModelRegistry(tmp_path_factory.mktemp("registry"))
    reg.publish(detector_for("bitcount").model)
    return reg


def resilient_config(**overrides):
    base = dict(
        max_sessions=4,
        worker_threads=2,
        checkpoint_interval=2,
    )
    base.update(overrides)
    return ServerConfig(**base)


def resilient_client(host, port, **overrides):
    base = dict(
        window=4,
        connect_timeout=5.0,
        io_timeout=10.0,
        max_retries=8,
        backoff_base=0.02,
        backoff_max=0.25,
    )
    base.update(overrides)
    return EddieClient(host, port, **base)


def local_reference(model, trace, chunk_samples):
    """What a local streaming run produces for the same chunking."""
    monitor = StreamingMonitor(model, t0=trace.iq.t0)
    reports = []
    for chunk in trace.iq.iter_chunks(chunk_samples):
        for result in monitor.feed(chunk):
            reports.extend(result.reports)
    return reports, monitor.finish()


def assert_matches_local(reports, summary, client, local_reports,
                         local_summary):
    """Exactly-once, end to end: nothing lost, nothing double-scored."""
    assert reports == local_reports
    assert summary == dataclasses.replace(
        local_summary, session_id=summary.session_id
    )
    assert client.windows_seen == local_summary.windows


class TestCheckpointAcks:
    def test_acks_prune_the_replay_buffer(self, registry):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        with serve_in_thread(registry, resilient_config()) as handle:
            host, port = handle.address
            with resilient_client(host, port) as client:
                client.open("bitcount", t0=trace.iq.t0)
                assert client.resumable  # token granted at OPEN
                for chunk in trace.iq.iter_chunks(4096):
                    client.send(chunk)
                client.drain()
                # Checkpoints every 2 chunks: by drain time the server
                # has acked most of the stream and the buffer is small.
                assert client.acked_seq > 0
                assert client.unacked_chunks <= 2 * 2
                assert client.reconnects == 0
                client.close()
            assert handle.stats.checkpoints > 0
        spills = list(registry.root.glob(".sessions/*.npz"))
        assert spills == []  # clean CLOSE deletes the spill

    def test_checkpointing_disabled_means_no_token(self, registry):
        with serve_in_thread(
            registry, resilient_config(checkpoint_interval=0)
        ) as handle:
            host, port = handle.address
            with resilient_client(host, port) as client:
                client.open("bitcount")
                assert not client.resumable
                assert client.unacked_chunks == 0
                client.close()


class TestKillAndResume:
    def test_scripted_kill_resumes_bit_identically(self, registry):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(1))
        chunks = list(trace.iq.iter_chunks(4096))
        assert len(chunks) >= 4
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        with serve_in_thread(registry, resilient_config()) as handle:
            with ChaosProxy(handle.address, seed=7) as proxy:
                host, port = proxy.address
                with resilient_client(host, port) as client:
                    client.open("bitcount", t0=trace.iq.t0)
                    reports = []
                    for i, chunk in enumerate(chunks):
                        reports.extend(client.send(chunk))
                        if i == len(chunks) // 2:
                            reports.extend(client.drain())
                            assert proxy.kill_connections() == 1
                    reports.extend(client.drain())
                    summary = client.close()
                    assert client.reconnects >= 1
                    assert_matches_local(
                        reports, summary, client,
                        local_reports, local_summary,
                    )
            assert handle.stats.sessions_resumed >= 1
            assert handle.stats.sessions_suspended >= 1

    @pytest.mark.slow
    def test_random_chaos_resumes_bit_identically(self, registry):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(2))
        local_reports, local_summary = local_reference(
            detector.model, trace, 2048
        )
        chaos = ChaosConfig(
            reset_rate=0.05,
            truncate_rate=0.05,
            delay_rate=0.10,
            delay_seconds=0.002,
            grace_bytes=4096,
        )
        with serve_in_thread(registry, resilient_config()) as handle:
            with ChaosProxy(handle.address, config=chaos, seed=3) as proxy:
                host, port = proxy.address
                with resilient_client(host, port) as client:
                    client.open("bitcount", t0=trace.iq.t0)
                    reports = []
                    for chunk in trace.iq.iter_chunks(2048):
                        reports.extend(client.send(chunk))
                    reports.extend(client.drain())
                    summary = client.close()
                    faults = (
                        proxy.stats.resets
                        + proxy.stats.truncations
                        + proxy.stats.stalls
                    )
                    assert faults >= 1, "chaos seed injected no faults"
                    assert client.reconnects >= 1
                    assert_matches_local(
                        reports, summary, client,
                        local_reports, local_summary,
                    )


class TestServerRestart:
    def test_graceful_drain_and_successor_resume(self, registry):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(3))
        chunks = list(trace.iq.iter_chunks(4096))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        first = serve_in_thread(registry, resilient_config())
        host, port = first.address
        client = resilient_client(host, port).connect()
        try:
            client.open("bitcount", t0=trace.iq.t0)
            reports = []
            half = len(chunks) // 2
            for chunk in chunks[:half]:
                reports.extend(client.send(chunk))
            reports.extend(client.drain())
            final_stats = first.drain()
            assert final_stats["draining"] is True
            assert final_stats["sessions_suspended"] == 1
            first.stop()
            with serve_in_thread(
                registry, resilient_config(port=port)
            ) as second:
                for chunk in chunks[half:]:
                    reports.extend(client.send(chunk))
                reports.extend(client.drain())
                summary = client.close()
                assert client.reconnects == 1
                assert second.stats.sessions_resumed == 1
                assert_matches_local(
                    reports, summary, client, local_reports, local_summary
                )
        finally:
            client.disconnect()
            first.stop()

    def test_hard_stop_and_successor_resume(self, registry):
        # No drain at all: the periodic checkpoint alone must be enough
        # to survive a crash, replaying from the last durable ack.
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(4))
        chunks = list(trace.iq.iter_chunks(4096))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        first = serve_in_thread(registry, resilient_config())
        host, port = first.address
        client = resilient_client(host, port).connect()
        try:
            client.open("bitcount", t0=trace.iq.t0)
            reports = []
            half = len(chunks) // 2
            for chunk in chunks[:half]:
                reports.extend(client.send(chunk))
            reports.extend(client.drain())
            assert client.acked_seq > 0, "need a durable checkpoint first"
            first.stop()
            with serve_in_thread(
                registry, resilient_config(port=port)
            ) as second:
                for chunk in chunks[half:]:
                    reports.extend(client.send(chunk))
                reports.extend(client.drain())
                summary = client.close()
                assert client.reconnects >= 1
                assert second.stats.sessions_resumed >= 1
                assert_matches_local(
                    reports, summary, client, local_reports, local_summary
                )
        finally:
            client.disconnect()
            first.stop()

    def test_draining_server_refuses_new_sessions(self, registry):
        with serve_in_thread(registry, resilient_config()) as handle:
            host, port = handle.address
            bystander = resilient_client(host, port).connect()
            try:
                handle.drain()
                with pytest.raises(ServeError) as excinfo:
                    bystander.open("bitcount")
                assert excinfo.value.code == "draining"
            finally:
                bystander.disconnect()


class TestProtocolCompat:
    def test_revision_1_client_streams_unaffected(self, registry):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(5))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        with serve_in_thread(registry, resilient_config()) as handle:
            host, port = handle.address
            client = resilient_client(host, port)
            client._offer_versions = [1]  # an old deployment
            with client:
                client.open("bitcount", t0=trace.iq.t0)
                assert client.protocol_version == 1
                assert not client.resumable
                reports = []
                for chunk in trace.iq.iter_chunks(4096):
                    reports.extend(client.send(chunk))
                reports.extend(client.drain())
                summary = client.close()
                assert client.unacked_chunks == 0  # no buffering for v1
                assert_matches_local(
                    reports, summary, client, local_reports, local_summary
                )
            assert handle.stats.checkpoints == 0

    def test_resume_with_bad_token_is_rejected(self, registry):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        with serve_in_thread(registry, resilient_config()) as handle:
            host, port = handle.address
            client = resilient_client(host, port).connect()
            client.open("bitcount", t0=trace.iq.t0)
            for chunk in list(trace.iq.iter_chunks(4096))[:4]:
                client.send(chunk)
            client.drain()
            session_id = client.session_id
            client.disconnect()  # server abort-checkpoints the session
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.settimeout(5)
                send_frame(sock, json_frame(FrameType.HELLO, {
                    "versions": [1, 2],
                }))
                assert recv_frame(sock).type == FrameType.HELLO
                send_frame(sock, json_frame(FrameType.RESUME, {
                    "session": session_id,
                    "token": "f" * 32,
                    "delivered": 0,
                    "window": 4,
                }))
                reply = recv_frame(sock)
                assert reply.type == FrameType.ERROR
                assert parse_json(reply)["code"] == "resume_rejected"

    def test_resume_of_unknown_session_is_rejected(self, registry):
        with serve_in_thread(registry, resilient_config()) as handle:
            host, port = handle.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.settimeout(5)
                send_frame(sock, json_frame(FrameType.HELLO, {
                    "versions": [1, 2],
                }))
                assert recv_frame(sock).type == FrameType.HELLO
                send_frame(sock, json_frame(FrameType.RESUME, {
                    "session": "s00000000-999999",
                    "token": "f" * 32,
                }))
                reply = recv_frame(sock)
                assert reply.type == FrameType.ERROR
                assert parse_json(reply)["code"] == "unknown_session"


class TestTimeouts:
    @pytest.fixture()
    def silent_server(self):
        """Accepts connections and never says a word."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        accepted = []
        stop = threading.Event()

        def run():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                accepted.append(conn)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        try:
            yield listener.getsockname()[:2]
        finally:
            stop.set()
            listener.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=2)

    def test_io_deadline_surfaces_typed_error(self, silent_server):
        host, port = silent_server
        client = EddieClient(
            host, port,
            connect_timeout=5.0, io_timeout=0.2, reconnect=False,
        )
        with pytest.raises(ServeTimeoutError) as excinfo:
            client.connect()  # HELLO never answered
        assert isinstance(excinfo.value, ServeError)
        assert excinfo.value.code == "timeout"
        client.disconnect()

    def test_legacy_timeout_sets_both_deadlines(self):
        client = EddieClient("127.0.0.1", 1, timeout=7.5)
        assert client.connect_timeout == 7.5
        assert client.io_timeout == 7.5
        assert client.timeout == 7.5
        split = EddieClient(
            "127.0.0.1", 1, connect_timeout=1.5, io_timeout=20.0
        )
        assert split.connect_timeout == 1.5
        assert split.io_timeout == 20.0

    def test_replay_buffer_must_hold_a_window(self):
        with pytest.raises(ServeError, match="replay_buffer_chunks"):
            EddieClient(
                "127.0.0.1", 1, window=8, replay_buffer_chunks=4
            )
