"""Unit tests for the mini-IR (repro.programs.ir)."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.programs.ir import (
    BasicBlock,
    Branch,
    Halt,
    Instr,
    Jump,
    LoopBack,
    MemRef,
    OpClass,
    ParamSpec,
    Program,
    instruction_helpers,
)


class TestMemRef:
    def test_defaults(self):
        ref = MemRef("array")
        assert ref.pattern == "seq"
        assert ref.footprint > 0

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            MemRef("array", pattern="zigzag")

    def test_rejects_nonpositive_footprint(self):
        with pytest.raises(ConfigurationError):
            MemRef("array", footprint=0)

    def test_rejects_nonpositive_stride(self):
        with pytest.raises(ConfigurationError):
            MemRef("array", stride=-4)


class TestInstr:
    def test_memory_op_requires_memref(self):
        with pytest.raises(ConfigurationError):
            Instr(OpClass.LOAD, dst="r1")

    def test_non_memory_op_rejects_memref(self):
        with pytest.raises(ConfigurationError):
            Instr(OpClass.IADD, dst="r1", mem=MemRef("a"))

    def test_srcs_normalized_to_tuple(self):
        instr = Instr(OpClass.IADD, dst="r1", srcs=["r2", "r3"])
        assert instr.srcs == ("r2", "r3")

    def test_str_is_readable(self):
        instr = Instr(OpClass.LOAD, dst="r1", srcs=("r2",), mem=MemRef("buf"))
        text = str(instr)
        assert "load" in text and "buf" in text

    def test_opclass_predicates(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.IADD.is_memory
        assert OpClass.BRANCH.is_control
        assert OpClass.SYSCALL.is_control
        assert not OpClass.FMUL.is_control


class TestInstructionHelpers:
    def test_all_opclasses_have_helpers(self):
        helpers = instruction_helpers()
        assert set(helpers) == {op.value for op in OpClass}

    def test_helper_builds_instr(self):
        ops = instruction_helpers()
        instr = ops["iadd"]("r1", "r2", "r3")
        assert instr.op is OpClass.IADD
        assert instr.dst == "r1"
        assert instr.srcs == ("r2", "r3")

    def test_memory_helper(self):
        ops = instruction_helpers()
        instr = ops["store"](None, "r1", mem=MemRef("out"))
        assert instr.op is OpClass.STORE
        assert instr.mem.stream == "out"


class TestBasicBlock:
    def test_successors_jump(self):
        blk = BasicBlock("a", [], Jump("b"))
        assert blk.successors() == ("b",)

    def test_successors_branch(self):
        blk = BasicBlock("a", [], Branch("t", "f", 0.3))
        assert blk.successors() == ("t", "f")

    def test_successors_loopback(self):
        blk = BasicBlock("a", [], LoopBack("a", "out", 10))
        assert set(blk.successors()) == {"a", "out"}

    def test_successors_halt(self):
        assert BasicBlock("a").successors() == ()

    def test_size_counts_terminator(self):
        body = [Instr(OpClass.IADD, dst="r1")]
        assert BasicBlock("a", body, Jump("b")).size == 2
        assert BasicBlock("a", body, Halt()).size == 1


def two_block_program() -> Program:
    blocks = [
        BasicBlock("start", [Instr(OpClass.IADD, dst="r1")], Jump("end")),
        BasicBlock("end", [], Halt()),
    ]
    return Program("p", blocks, entry="start")


class TestProgram:
    def test_duplicate_block_rejected(self):
        blocks = [BasicBlock("a"), BasicBlock("a")]
        with pytest.raises(AnalysisError):
            Program("p", blocks, entry="a")

    def test_missing_entry_rejected(self):
        with pytest.raises(AnalysisError):
            Program("p", [BasicBlock("a")], entry="nope")

    def test_dangling_successor_rejected(self):
        blocks = [BasicBlock("a", [], Jump("ghost"))]
        with pytest.raises(AnalysisError):
            Program("p", blocks, entry="a")

    def test_loopback_header_equals_exit_rejected(self):
        blocks = [
            BasicBlock("a", [], LoopBack("b", "b", 5)),
            BasicBlock("b", [], Halt()),
        ]
        with pytest.raises(AnalysisError):
            Program("p", blocks, entry="a")

    def test_static_size(self):
        program = two_block_program()
        assert program.static_size == 2  # iadd + jump

    def test_block_lookup_error(self):
        program = two_block_program()
        with pytest.raises(AnalysisError):
            program.block("nothere")

    def test_sample_input_covers_params(self):
        params = [
            ParamSpec("n", "int", 5, 10),
            ParamSpec("p", "float", 0.2, 0.8),
            ParamSpec("mode", "choice", choices=(1.0, 2.0)),
        ]
        program = Program(
            "p", [BasicBlock("a")], entry="a", params=params
        )
        rng = np.random.default_rng(0)
        inputs = program.sample_input(rng)
        assert set(inputs) == {"n", "p", "mode"}
        assert 5 <= inputs["n"] <= 10
        assert 0.2 <= inputs["p"] <= 0.8
        assert inputs["mode"] in (1.0, 2.0)

    def test_resolve_trips_literal_param_callable(self):
        program = two_block_program()
        assert program.resolve_trips(7, {}) == 7
        assert program.resolve_trips("n", {"n": 12}) == 12
        assert program.resolve_trips(lambda inp: inp["n"] * 2, {"n": 4}) == 8

    def test_resolve_trips_rejects_nonpositive(self):
        program = two_block_program()
        with pytest.raises(ConfigurationError):
            program.resolve_trips(0, {})

    def test_resolve_prob_bounds(self):
        program = two_block_program()
        assert program.resolve_prob(0.25, {}) == 0.25
        with pytest.raises(ConfigurationError):
            program.resolve_prob(1.5, {})

    def test_resolve_missing_param(self):
        program = two_block_program()
        with pytest.raises(ConfigurationError):
            program.resolve_trips("missing", {})


class TestParamSpec:
    def test_int_inclusive_bounds(self):
        rng = np.random.default_rng(1)
        spec = ParamSpec("n", "int", 3, 3)
        assert spec.sample(rng) == 3

    def test_choice_requires_choices(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ConfigurationError):
            ParamSpec("c", "choice").sample(rng)

    def test_unknown_kind(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ConfigurationError):
            ParamSpec("x", "gaussian").sample(rng)
