"""The preprocessing-stage API: validation, registry, bit-identity.

The load-bearing contract (DESIGN.md D22): for any stage chain and ANY
chunking of the input stream, ``FrontendChain`` feed/flush produces
samples bit-identical to the batch ``process`` composition over the
whole array -- so the batch trainer, the streaming monitor, and a
checkpoint/resume cycle all see exactly the same front-end output. The
hypothesis sweep drives that across random signals, random chunk
boundaries, and random snapshot cut points.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    AgcStage,
    FirGateStage,
    FrontendChain,
    SvdDenoiser,
    apply_frontend,
    stage_from_dict,
    stage_to_dict,
    validate_frontend,
)
from repro.errors import ConfigurationError
from repro.types import Signal

#: Stage sets the equivalence sweep exercises. Small block sizes keep
#: hypothesis examples fast while still spanning many block boundaries.
STAGE_SETS = {
    "agc": (AgcStage(block_samples=256),),
    "fir": (FirGateStage(cutoff=0.4, taps=33, block_samples=256),),
    "svd": (SvdDenoiser(block_samples=256, hankel_window=16, rank=4),),
    "chain": (
        AgcStage(block_samples=128),
        FirGateStage(cutoff=0.5, taps=17, block_samples=128),
        SvdDenoiser(block_samples=192, hankel_window=12, rank=3),
    ),
}


def make_signal(seed, n):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 1e4
    clean = np.exp(2j * np.pi * 400.0 * t) * (
        1.0 + 0.5 * np.cos(2 * np.pi * 60.0 * t)
    )
    return clean + 0.3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


def chunkings(samples, sizes):
    out, start = [], 0
    for size in sizes:
        if start >= len(samples):
            break
        out.append(samples[start : start + size])
        start += size
    if start < len(samples):
        out.append(samples[start:])
    return out


def batch_process(stages, samples):
    for stage in stages:
        samples = stage.process(samples)
    return samples


class TestValidation:
    def test_stages_are_frozen(self):
        stage = AgcStage(block_samples=256)
        with pytest.raises(dataclasses.FrozenInstanceError):
            stage.block_samples = 1

    def test_stages_are_keyword_only(self):
        with pytest.raises(TypeError):
            FirGateStage(0.5)  # noqa -- positional must be rejected

    @pytest.mark.parametrize("bad", [
        lambda: AgcStage(block_samples=1),
        lambda: AgcStage(target=0.0),
        lambda: FirGateStage(cutoff=0.0),
        lambda: FirGateStage(cutoff=1.5),
        lambda: FirGateStage(cutoff=0.5, taps=64),  # even
        lambda: FirGateStage(cutoff=0.5, taps=65, block_samples=32),
        lambda: SvdDenoiser(rank=0),
        lambda: SvdDenoiser(energy_keep=0.0),
        lambda: SvdDenoiser(hankel_window=1),
        lambda: SvdDenoiser(block_samples=8, hankel_window=64),
    ])
    def test_invalid_parameters_raise_eagerly(self, bad):
        with pytest.raises(ConfigurationError):
            bad()

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            FrontendChain(())

    def test_validate_frontend_rejects_non_stage(self):
        with pytest.raises(ConfigurationError):
            validate_frontend(("not a stage",))


class TestRegistry:
    @pytest.mark.parametrize("stage", [s for ss in STAGE_SETS.values() for s in ss])
    def test_round_trip(self, stage):
        desc = stage_to_dict(stage)
        assert desc["type"] == stage.stage_type
        assert stage_from_dict(desc) == stage

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            stage_from_dict({"type": "definitely_not_registered"})

    def test_unknown_field_rejected(self):
        desc = stage_to_dict(AgcStage())
        desc["tampered_field"] = 1.0
        with pytest.raises(ConfigurationError):
            stage_from_dict(desc)


class TestBatchStreamingEquivalence:
    @given(
        key=st.sampled_from(sorted(STAGE_SETS)),
        seed=st.integers(0, 2**31),
        n=st.integers(1, 4000),
        sizes=st.lists(st.integers(1, 700), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_is_bit_identical(self, key, seed, n, sizes):
        stages = STAGE_SETS[key]
        samples = make_signal(seed, n)
        reference = batch_process(stages, samples)

        chain = FrontendChain(stages)
        parts = [chain.feed(c) for c in chunkings(samples, sizes)]
        parts.append(chain.flush())
        streamed = np.concatenate([p for p in parts if len(p)] or [np.empty(0)])
        assert streamed.dtype == reference.dtype
        assert np.array_equal(streamed, reference)

    @given(
        key=st.sampled_from(sorted(STAGE_SETS)),
        seed=st.integers(0, 2**31),
        cut=st.integers(0, 3000),
    )
    @settings(max_examples=30, deadline=None)
    def test_snapshot_restore_is_bit_identical(self, key, seed, cut):
        stages = STAGE_SETS[key]
        samples = make_signal(seed, 3000)
        cut = min(cut, len(samples))
        reference = batch_process(stages, samples)

        first = FrontendChain(stages)
        head = first.feed(samples[:cut])
        meta, arrays = first.export_state()

        second = FrontendChain(stages)
        second.restore_state(meta, arrays)
        tail = second.feed(samples[cut:])
        out = np.concatenate([head, tail, second.flush()])
        assert np.array_equal(out, reference)

    def test_empty_feed_is_inert(self):
        chain = FrontendChain(STAGE_SETS["chain"])
        samples = make_signal(7, 1000)
        reference = batch_process(STAGE_SETS["chain"], samples)
        parts = [chain.feed(samples[:400])]
        parts.append(chain.feed(np.empty(0, dtype=samples.dtype)))
        parts.append(chain.feed(samples[400:]))
        parts.append(chain.flush())
        assert np.array_equal(np.concatenate(parts), reference)


class TestSvdDenoiser:
    def test_reduces_noise_on_structured_signal(self):
        rng = np.random.default_rng(0)
        n = 8192
        t = np.arange(n) / 1e4
        clean = np.exp(2j * np.pi * 400.0 * t) * (
            1.0 + 0.5 * np.cos(2 * np.pi * 60.0 * t)
        )
        noisy = clean + 1.0 * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ) / np.sqrt(2)
        denoised = SvdDenoiser(
            block_samples=2048, hankel_window=64, rank=8
        ).process(noisy)
        mse_before = float(np.mean(np.abs(noisy - clean) ** 2))
        mse_after = float(np.mean(np.abs(denoised - clean) ** 2))
        assert mse_after < 0.25 * mse_before

    def test_short_input_passthrough_shape(self):
        stage = SvdDenoiser(block_samples=256, hankel_window=16, rank=4)
        out = stage.process(make_signal(3, 3))
        assert out.shape == (3,)

    def test_apply_frontend_preserves_signal_frame(self):
        samples = make_signal(11, 2000)
        signal = Signal(samples, 1e4, t0=1.25)
        out = apply_frontend(STAGE_SETS["svd"], signal)
        assert out.sample_rate == signal.sample_rate
        assert out.t0 == signal.t0
        assert len(out.samples) == len(samples)
        assert not np.array_equal(out.samples, samples)
