"""Integration tests for the Eddie facade: the full train->monitor loop.

These are the library's end-to-end guarantees, exercised on small
workloads so the whole file runs in well under a minute.
"""

import numpy as np
import pytest

from repro import Eddie
from repro.arch.config import CoreConfig
from repro.arch.simulator import BurstSpec, Simulator
from repro.core.detector import MonitorReport, TrainedDetector
from repro.em.scenario import EmScenario
from repro.errors import ConfigurationError, MonitoringError
from repro.programs.workloads import (
    injection_mix,
    int_kernel,
    multi_peak_loop_program,
    sharp_loop_program,
)

CORE = CoreConfig.iot_inorder(clock_hz=1e8)


@pytest.fixture(scope="module")
def detector():
    return Eddie().train(
        sharp_loop_program(trips=15000), core=CORE, runs=5, seed=0, source="em"
    )


class TestTraining:
    def test_em_and_power_sources(self):
        program = sharp_loop_program(trips=8000)
        em = Eddie().train(program, core=CORE, runs=3, seed=0, source="em")
        power = Eddie().train(program, core=CORE, runs=3, seed=0, source="power")
        assert isinstance(em.source, EmScenario)
        assert isinstance(power.source, Simulator)
        assert "loop:L" in em.model.profiles
        assert "loop:L" in power.model.profiles

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            Eddie().train(sharp_loop_program(), core=CORE, runs=1, source="laser")

    def test_training_with_injections_rejected(self):
        program = sharp_loop_program(trips=8000)
        scenario = EmScenario.build(program, core=CORE)
        scenario.simulator.set_loop_injection("L", injection_mix(4, 4), 1.0)
        with pytest.raises(ConfigurationError):
            Eddie().train(program, scenario=scenario, runs=2)

    def test_train_from_runs(self):
        program = sharp_loop_program(trips=8000)
        scenario = EmScenario.build(program, core=CORE)
        traces = [scenario.capture(seed=s) for s in range(3)]
        detector = Eddie().train_from_runs(
            "manual",
            [(t.iq, t.timeline) for t in traces],
            successors={r: scenario.machine.successors(r)
                        for r in scenario.machine.region_names()},
            initial_regions=scenario.machine.initial_regions(),
        )
        assert detector.source is None
        assert detector.model.program_name == "manual"


class TestMonitoring:
    def test_clean_run_no_detection(self, detector):
        report = detector.monitor(seed=900)
        assert isinstance(report, MonitorReport)
        assert not report.detected
        assert report.metrics.false_positive_rate < 5.0

    def test_loop_injection_detected(self, detector):
        detector.source.simulator.set_loop_injection(
            "L", injection_mix(4, 4), 1.0
        )
        report = detector.monitor(seed=901)
        detector.source.simulator.clear_injections()
        assert report.detected
        assert report.metrics.detection_latency is not None
        assert report.anomalies  # times of reports

    def test_burst_injection_detected(self, detector):
        detector.source.simulator.add_burst(
            BurstSpec(
                after_region="loop:L",
                body=tuple(int_kernel(60, "evil")),
                iterations=3000,
            )
        )
        report = detector.monitor(seed=902)
        detector.source.simulator.clear_injections()
        assert report.detected

    def test_monitor_signal_without_source(self, detector):
        trace = detector.source.capture(seed=903)
        standalone = TrainedDetector(detector.model, source=None)
        report = standalone.monitor(trace.iq)
        assert report.trace is None
        assert len(report.result.times) > 0
        with pytest.raises(MonitoringError):
            standalone.monitor(seed=1)

    def test_with_group_size_changes_latency_granularity(self, detector):
        fast = detector.with_group_size(8)
        slow = detector.with_group_size(64)
        assert fast.model.max_group_size == 8
        assert slow.model.max_group_size == 64
        # Same underlying reference data.
        assert (
            fast.model.profiles["loop:L"].reference
            is detector.model.profiles["loop:L"].reference
        )

    def test_with_alpha(self, detector):
        relaxed = detector.with_alpha(0.05)
        assert relaxed.model.config.alpha == 0.05

    def test_determinism(self, detector):
        a = detector.monitor(seed=905)
        b = detector.monitor(seed=905)
        assert [r.time for r in a.result.reports] == [
            r.time for r in b.result.reports
        ]
        assert a.metrics.coverage == b.metrics.coverage


class TestDeprecatedAliases:
    """The pre-consolidation methods still work but warn."""

    def test_monitor_program_alias(self, detector):
        with pytest.warns(DeprecationWarning, match="monitor_program"):
            report = detector.monitor_program(seed=920)
        assert isinstance(report, MonitorReport)

    def test_monitor_trace_alias(self, detector):
        trace = detector.source.capture(seed=921)
        with pytest.warns(DeprecationWarning, match="monitor_trace"):
            report = detector.monitor_trace(trace)
        assert report.trace is trace

    def test_monitor_signal_alias_keeps_bare_result(self, detector):
        trace = detector.source.capture(seed=922)
        with pytest.warns(DeprecationWarning, match="monitor_signal"):
            result = detector.monitor_signal(trace.iq)
        # Back-compat: the old method returned a bare MonitorResult.
        assert not isinstance(result, MonitorReport)
        report = detector.monitor(trace.iq)
        assert [r.time for r in result.reports] == [
            r.time for r in report.result.reports
        ]

    def test_new_api_does_not_warn(self, detector):
        import warnings

        trace = detector.source.capture(seed=923)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            detector.monitor(trace)
            detector.monitor(trace.iq)
            detector.monitor(seed=924)

    def test_monitor_rejects_seed_with_explicit_source(self, detector):
        trace = detector.source.capture(seed=925)
        with pytest.raises(MonitoringError):
            detector.monitor(trace, seed=1)
        with pytest.raises(MonitoringError):
            detector.monitor(object())


class TestMultiRegionTracking:
    def test_tracks_region_sequence(self):
        detector = Eddie().train(
            multi_peak_loop_program(trips=12000), core=CORE, runs=5, seed=0,
            source="em",
        )
        report = detector.monitor(seed=910)
        assert "loop:L" in set(report.result.tracked)
        assert report.metrics.coverage > 50.0
