"""Integration tests for the Eddie facade: the full train->monitor loop.

These are the library's end-to-end guarantees, exercised on small
workloads so the whole file runs in well under a minute.
"""

import numpy as np
import pytest

from repro import Eddie
from repro.arch.config import CoreConfig
from repro.arch.simulator import BurstSpec, Simulator
from repro.core.detector import MonitorReport, TrainedDetector
from repro.em.scenario import EmScenario
from repro.errors import ConfigurationError, MonitoringError
from repro.programs.workloads import (
    injection_mix,
    int_kernel,
    multi_peak_loop_program,
    sharp_loop_program,
)

CORE = CoreConfig.iot_inorder(clock_hz=1e8)


@pytest.fixture(scope="module")
def detector():
    return Eddie().train(
        sharp_loop_program(trips=15000), core=CORE, runs=5, seed=0, source="em"
    )


class TestTraining:
    def test_em_and_power_sources(self):
        program = sharp_loop_program(trips=8000)
        em = Eddie().train(program, core=CORE, runs=3, seed=0, source="em")
        power = Eddie().train(program, core=CORE, runs=3, seed=0, source="power")
        assert isinstance(em.source, EmScenario)
        assert isinstance(power.source, Simulator)
        assert "loop:L" in em.model.profiles
        assert "loop:L" in power.model.profiles

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            Eddie().train(sharp_loop_program(), core=CORE, runs=1, source="laser")

    def test_training_with_injections_rejected(self):
        program = sharp_loop_program(trips=8000)
        scenario = EmScenario.build(program, core=CORE)
        scenario.simulator.set_loop_injection("L", injection_mix(4, 4), 1.0)
        with pytest.raises(ConfigurationError):
            Eddie().train(program, scenario=scenario, runs=2)

    def test_train_from_runs(self):
        program = sharp_loop_program(trips=8000)
        scenario = EmScenario.build(program, core=CORE)
        traces = [scenario.capture(seed=s) for s in range(3)]
        detector = Eddie().train_from_runs(
            "manual",
            [(t.iq, t.timeline) for t in traces],
            successors={r: scenario.machine.successors(r)
                        for r in scenario.machine.region_names()},
            initial_regions=scenario.machine.initial_regions(),
        )
        assert detector.source is None
        assert detector.model.program_name == "manual"


class TestMonitoring:
    def test_clean_run_no_detection(self, detector):
        report = detector.monitor_program(seed=900)
        assert isinstance(report, MonitorReport)
        assert not report.detected
        assert report.metrics.false_positive_rate < 5.0

    def test_loop_injection_detected(self, detector):
        detector.source.simulator.set_loop_injection(
            "L", injection_mix(4, 4), 1.0
        )
        report = detector.monitor_program(seed=901)
        detector.source.simulator.clear_injections()
        assert report.detected
        assert report.metrics.detection_latency is not None
        assert report.anomalies  # times of reports

    def test_burst_injection_detected(self, detector):
        detector.source.simulator.add_burst(
            BurstSpec(
                after_region="loop:L",
                body=tuple(int_kernel(60, "evil")),
                iterations=3000,
            )
        )
        report = detector.monitor_program(seed=902)
        detector.source.simulator.clear_injections()
        assert report.detected

    def test_monitor_signal_without_source(self, detector):
        trace = detector.source.capture(seed=903)
        standalone = TrainedDetector(detector.model, source=None)
        result = standalone.monitor_signal(trace.iq)
        assert len(result.times) > 0
        with pytest.raises(MonitoringError):
            standalone.monitor_program(seed=1)

    def test_with_group_size_changes_latency_granularity(self, detector):
        fast = detector.with_group_size(8)
        slow = detector.with_group_size(64)
        assert fast.model.max_group_size == 8
        assert slow.model.max_group_size == 64
        # Same underlying reference data.
        assert (
            fast.model.profiles["loop:L"].reference
            is detector.model.profiles["loop:L"].reference
        )

    def test_with_alpha(self, detector):
        relaxed = detector.with_alpha(0.05)
        assert relaxed.model.config.alpha == 0.05

    def test_determinism(self, detector):
        a = detector.monitor_program(seed=905)
        b = detector.monitor_program(seed=905)
        assert [r.time for r in a.result.reports] == [
            r.time for r in b.result.reports
        ]
        assert a.metrics.coverage == b.metrics.coverage


class TestMultiRegionTracking:
    def test_tracks_region_sequence(self):
        detector = Eddie().train(
            multi_peak_loop_program(trips=12000), core=CORE, runs=5, seed=0,
            source="em",
        )
        report = detector.monitor_program(seed=910)
        assert "loop:L" in set(report.result.tracked)
        assert report.metrics.coverage > 50.0
