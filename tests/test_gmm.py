"""Unit tests for the 1-D Gaussian mixture fit (repro.core.stats.gmm)."""

import numpy as np
import pytest

from repro.core.stats.gmm import GaussianMixture1D, fit_gmm
from repro.errors import ConfigurationError


class TestFitGmm:
    def test_recovers_two_well_separated_modes(self):
        rng = np.random.default_rng(0)
        data = np.concatenate(
            [rng.normal(0.0, 0.5, 600), rng.normal(10.0, 0.8, 400)]
        )
        gmm = fit_gmm(data, 2)
        assert gmm.means[0] == pytest.approx(0.0, abs=0.2)
        assert gmm.means[1] == pytest.approx(10.0, abs=0.2)
        assert gmm.weights[0] == pytest.approx(0.6, abs=0.05)
        assert gmm.stds[0] == pytest.approx(0.5, abs=0.1)

    def test_means_sorted(self):
        rng = np.random.default_rng(1)
        data = np.concatenate([rng.normal(5, 1, 100), rng.normal(-5, 1, 100)])
        gmm = fit_gmm(data, 2)
        assert gmm.means[0] < gmm.means[1]

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(2)
        gmm = fit_gmm(rng.normal(0, 1, 200), 3)
        assert sum(gmm.weights) == pytest.approx(1.0)

    def test_single_component_is_sample_stats(self):
        rng = np.random.default_rng(3)
        data = rng.normal(2.0, 3.0, 2000)
        gmm = fit_gmm(data, 1)
        assert gmm.means[0] == pytest.approx(data.mean(), abs=1e-6)
        assert gmm.stds[0] == pytest.approx(data.std(), rel=1e-3)

    def test_nan_filtered(self):
        data = np.array([1.0, np.nan, 2.0, 3.0, np.nan, 4.0, 5.0, 6.0])
        gmm = fit_gmm(data, 2)
        assert np.isfinite(gmm.means).all()

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            fit_gmm(np.array([1.0, 2.0]), 2)


class TestGmmQueries:
    def make(self):
        return GaussianMixture1D(
            weights=(0.5, 0.5), means=(0.0, 10.0), stds=(1.0, 1.0),
            log_likelihood=0.0,
        )

    def test_pdf_integrates_to_one(self):
        gmm = self.make()
        x = np.linspace(-10, 20, 20000)
        assert np.trapezoid(gmm.pdf(x), x) == pytest.approx(1.0, abs=1e-3)

    def test_cdf_monotone(self):
        gmm = self.make()
        x = np.linspace(-10, 20, 100)
        assert np.all(np.diff(gmm.cdf(x)) >= 0)
        assert gmm.cdf(np.array([100.0]))[0] == pytest.approx(1.0)

    def test_within_k_sigma(self):
        gmm = self.make()
        inside = np.array([0.0, 2.9, 10.0, 7.1])
        outside = np.array([5.0, -4.0, 14.0])
        assert gmm.within_k_sigma(inside).all()
        assert not gmm.within_k_sigma(outside).any()

    def test_sample_distribution(self):
        gmm = self.make()
        rng = np.random.default_rng(0)
        draws = gmm.sample(10000, rng)
        near_zero = (np.abs(draws) < 5).mean()
        assert near_zero == pytest.approx(0.5, abs=0.03)
