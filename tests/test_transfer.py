"""repro.transfer: device variants, calibration, derived registry entries.

The load-bearing assertions of the train-once/deploy-many design
(DESIGN.md D23):

- calibration recovers a pure clock scale exactly and kills the false
  alarms a drifted variant induces, from one short *unlabeled* capture;
- the warp preserves the per-dim invariants the exact-integer K-S
  kernel depends on (monotone order, NaN masks, observed target values);
- derived models publish as ``name@N+cal:LABEL`` registry entries whose
  lineage is verified on load -- tampered or orphaned derivations are
  refused with typed errors;
- a derivation served over TCP is bit-identical to running it locally.
"""

import dataclasses
import json

import numpy as np
import pytest
from conftest import shared_tiny_detector as detector_for
from conftest import tiny_scale

from repro.cache import fingerprint as cache_fingerprint
from repro.core.detector import TrainedDetector
from repro.core.model import CalibrationInfo
from repro.errors import ConfigurationError, RegistryError, TrainingError
from repro.serve import ModelRegistry, ServerConfig, serve_in_thread
from repro.serve.client import EddieClient, replay
from repro.serve.registry import model_fingerprint
from repro.stream import StreamingMonitor
from repro.transfer import DeviceVariant, calibrate_model

TINY = tiny_scale()

VARIANT = DeviceVariant(name="bench", clock_scale=1.02, l1_kib=16)


@pytest.fixture(scope="module")
def base():
    return detector_for("sha")


@pytest.fixture(scope="module")
def variant_scenario(base):
    return VARIANT.apply(base.source)


@pytest.fixture(scope="module")
def calibration_capture(variant_scenario):
    """One short unlabeled capture of the target device."""
    return variant_scenario.capture(seed=9100)


@pytest.fixture(scope="module")
def calibrated(base, calibration_capture):
    return calibrate_model(
        base.model, calibration_capture, variant=VARIANT.describe()
    )


# -- the perturbation model ---------------------------------------------------


class TestDeviceVariant:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="clock_scale"):
            DeviceVariant(clock_scale=0.0)
        with pytest.raises(ConfigurationError, match="gain"):
            DeviceVariant(gain=-1.0)
        with pytest.raises(ConfigurationError, match="l1_kib"):
            DeviceVariant(l1_kib=0)

    def test_identity_changes_nothing(self, base):
        identity = DeviceVariant(name="same")
        assert identity.is_identity and not identity.is_drifted
        scenario = identity.apply(base.source)
        assert scenario.simulator.core == base.source.simulator.core
        assert scenario.receiver == base.source.receiver
        assert scenario.channel == base.source.channel

    def test_drift_semantics(self):
        assert DeviceVariant(clock_scale=1.01).is_drifted
        assert DeviceVariant(lo_drift_hz_per_s=5.0).is_drifted
        assert not DeviceVariant(gain=0.5, l1_kib=16).is_drifted

    def test_apply_perturbs_the_physics(self, base, variant_scenario):
        base_core = base.source.simulator.core
        core = variant_scenario.simulator.core
        assert core.clock_hz == pytest.approx(base_core.clock_hz * 1.02)
        assert core.sample_rate == pytest.approx(
            base_core.sample_rate * 1.02
        )
        assert core.mem.l1.size == 16 * 1024
        assert core.name == f"{base_core.name}+bench"
        # Knobs left at their defaults stay untouched.
        assert variant_scenario.receiver == base.source.receiver
        assert variant_scenario.channel == base.source.channel

    def test_apply_does_not_carry_injections(self, base):
        from repro.programs.mibench import INJECTION_LOOPS
        from repro.programs.workloads import injection_mix

        base.source.simulator.set_loop_injection(
            INJECTION_LOOPS["sha"], injection_mix(4, 4), 1.0
        )
        try:
            scenario = VARIANT.apply(base.source)
            assert not scenario.simulator.engine.loop_injections
        finally:
            base.source.simulator.clear_injections()

    def test_describe_names_every_knob(self):
        text = DeviceVariant(
            name="site7", clock_scale=1.05, gain=0.5, l1_kib=16,
            snr_db_delta=-3.0,
        ).describe()
        assert "site7" in text
        assert "clock x1.05" in text
        assert "gain x0.5" in text
        assert "L1 16 KiB" in text
        assert "SNR -3 dB" in text
        assert DeviceVariant(name="x").describe() == "x: identity"


# -- the calibration pipeline -------------------------------------------------


class TestCalibration:
    def test_recovers_exact_clock_scale(self, calibrated):
        # Peak frequencies are bin-quantized off the sample rate, so a
        # pure clock scale is recoverable to float precision.
        assert calibrated.report.freq_scale == pytest.approx(
            1.02, rel=1e-9
        )
        assert calibrated.report.windows > 0
        assert calibrated.report.snapped_fraction > 0.9

    def test_derivation_provenance(self, base, calibrated):
        model = calibrated.model
        assert model.is_derived
        assert base.model.calibration is None  # original untouched
        cal = model.calibration
        assert cal.base_fingerprint == cache_fingerprint(
            "eddie-model", base.model
        )
        assert cal.variant == VARIANT.describe()
        assert cal.windows == calibrated.report.windows

    def test_sample_rate_follows_target_exactly(
        self, calibrated, calibration_capture
    ):
        # The streaming engine refuses rate mismatches with *strict*
        # equality, so the derived model must carry the target capture's
        # exact rate, not base_rate * scale (an ulp off).
        assert (
            calibrated.model.sample_rate
            == calibration_capture.iq.sample_rate
        )

    def test_warp_is_monotone_and_mask_preserving(self, base, calibrated):
        for name, profile in base.model.profiles.items():
            warped = calibrated.model.profiles[name].reference
            assert warped.shape == profile.reference.shape
            assert np.array_equal(
                np.isnan(warped), np.isnan(profile.reference)
            )
            for dim in profile.test_dims:
                col = profile.reference[:, dim]
                mask = ~np.isnan(col)
                order = np.argsort(col[mask], kind="stable")
                mapped = warped[:, dim][mask][order]
                assert np.all(np.diff(mapped) >= 0)

    def test_calibration_kills_drift_false_alarms(
        self, base, calibrated, variant_scenario
    ):
        seed = TINY.monitor_seed(0) + 9
        uncal = TrainedDetector(base.model, variant_scenario).monitor(
            seed=seed
        )
        cal = TrainedDetector(calibrated.model, variant_scenario).monitor(
            seed=seed
        )
        assert uncal.metrics.n_reports > 0  # drift floods the base model
        assert cal.metrics.n_reports == 0

    def test_refuses_second_order_calibration(
        self, calibrated, calibration_capture
    ):
        with pytest.raises(TrainingError, match="already a derivation"):
            calibrate_model(calibrated.model, calibration_capture)

    def test_refuses_empty_capture(self, base, calibration_capture):
        silence = dataclasses.replace(
            calibration_capture.iq,
            samples=np.zeros(4096, dtype=np.complex128),
        )
        with pytest.raises(TrainingError, match="no spectral lines"):
            calibrate_model(base.model, silence)


class TestCalibrationInfo:
    def test_dict_round_trip(self):
        info = CalibrationInfo(
            base_fingerprint="ab" * 32, method="scale-snap-qmap",
            variant="site7", freq_scale=1.02, windows=128,
            snapped_fraction=0.97,
        )
        assert CalibrationInfo.from_dict(info.to_dict()) == info

    def test_rejects_unknown_fields_and_bad_values(self):
        info = CalibrationInfo(base_fingerprint="ab" * 32)
        raw = dict(info.to_dict(), smuggled=1)
        with pytest.raises(ConfigurationError, match="unknown fields"):
            CalibrationInfo.from_dict(raw)
        with pytest.raises(ConfigurationError):
            CalibrationInfo(base_fingerprint="")
        with pytest.raises(ConfigurationError):
            CalibrationInfo(base_fingerprint="ab" * 32, freq_scale=0.0)
        with pytest.raises(ConfigurationError):
            CalibrationInfo(
                base_fingerprint="ab" * 32, snapped_fraction=1.5
            )


# -- registry-native derivations ----------------------------------------------


@pytest.fixture()
def registry(tmp_path, base, calibrated):
    """A fresh registry holding the base model and its derivation."""
    reg = ModelRegistry(tmp_path / "registry", cache_size=0)
    base_entry = reg.publish(base.model)
    derived_entry = reg.publish_derived(calibrated.model, base_entry)
    return reg, base_entry, derived_entry


class TestDerivedRegistry:
    def test_publish_derived_round_trip(self, registry, calibrated):
        reg, base_entry, derived = registry
        label = model_fingerprint(calibrated.model)[:12]
        assert derived.spec == f"sha@1+cal:{label}"
        assert derived.is_derived
        assert derived.base_fingerprint == base_entry.fingerprint
        for spec in (
            derived.spec,
            f"sha@1+cal:{label[:6]}",  # prefix resolution
            f"sha+cal:{label}",  # latest base version
            f"fp:{derived.fingerprint[:12]}",
        ):
            model, entry = reg.load(spec)
            assert entry.spec == derived.spec
            assert model.is_derived

    def test_latest_never_resolves_to_a_derivation(self, registry):
        reg, base_entry, _ = registry
        assert not reg.resolve("sha@latest").is_derived
        assert not reg.resolve("sha").is_derived
        specs = [e.spec for e in reg.list_entries()]
        assert specs[0] == base_entry.spec  # base sorts first

    def test_publish_refuses_calibrated_model(self, registry, calibrated):
        reg, _, _ = registry
        with pytest.raises(RegistryError, match="publish_derived"):
            reg.publish(calibrated.model)

    def test_publish_derived_refuses_bad_lineage(
        self, registry, base, calibrated
    ):
        reg, base_entry, derived = registry
        with pytest.raises(RegistryError, match="needs a calibrated"):
            reg.publish_derived(base.model, base_entry)
        with pytest.raises(RegistryError, match="immutable"):
            reg.publish_derived(calibrated.model, base_entry)
        with pytest.raises(RegistryError, match="cannot derive"):
            reg.publish_derived(calibrated.model, derived)
        other = reg.publish(detector_for("bitcount").model)
        with pytest.raises(RegistryError, match="calibrated from"):
            reg.publish_derived(calibrated.model, other)

    def test_tampered_sidecar_refused(self, registry):
        reg, _, derived = registry
        sidecar = derived.path.with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        meta["base_fingerprint"] = "0" * 64
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(RegistryError, match="tampered") as excinfo:
            reg.load(derived.spec)
        assert excinfo.value.code == "model_corrupt"

    def test_swapped_artifact_refused(self, registry, base):
        # Replace the derivation's artifact with the (uncalibrated)
        # base artifact: the content fingerprint no longer matches.
        reg, base_entry, derived = registry
        derived.path.write_bytes(base_entry.path.read_bytes())
        with pytest.raises(RegistryError, match="fingerprint") as excinfo:
            reg.load(derived.spec)
        assert excinfo.value.code == "model_corrupt"

    def test_orphaned_derivation_refused(self, registry):
        reg, base_entry, derived = registry
        base_entry.path.unlink()
        base_entry.path.with_suffix(".json").unlink()
        with pytest.raises(RegistryError, match="orphaned"):
            reg.load(derived.spec)


# -- serving derivations ------------------------------------------------------


class TestServedDerivation:
    def test_served_replay_is_bit_identical_and_stats_show_spec(
        self, tmp_path, base, calibrated, variant_scenario
    ):
        reg = ModelRegistry(tmp_path / "registry")
        base_entry = reg.publish(base.model)
        derived = reg.publish_derived(calibrated.model, base_entry)
        trace = variant_scenario.capture(seed=TINY.monitor_seed(3))
        monitor = StreamingMonitor(calibrated.model, t0=trace.iq.t0)
        local_reports = []
        for chunk in trace.iq.iter_chunks(4096):
            for result in monitor.feed(chunk):
                local_reports.extend(result.reports)
        local_summary = monitor.finish()
        with serve_in_thread(reg, ServerConfig(max_sessions=4)) as handle:
            host, port = handle.address
            with EddieClient(host, port) as client:
                ack = client.open(derived.spec)
                assert ack["model"]["spec"] == derived.spec
                stats = client.stats()
                specs = [s["model"] for s in stats["sessions"]]
                assert derived.spec in specs
                client.close()
            reports, summary = replay(
                host, port, derived.spec, trace, chunk_samples=4096
            )
        assert reports == local_reports
        assert dataclasses.replace(
            summary, session_id=local_summary.session_id
        ) == local_summary
