"""Unit tests for spectral peak extraction (repro.core.peaks)."""

import numpy as np
import pytest

from repro.core.peaks import extract_peaks, peak_matrix
from repro.core.stft import stft
from repro.errors import SignalError
from repro.types import Signal


class TestExtractPeaks:
    def test_single_dominant_peak(self):
        power = np.ones(100)
        power[40] = 1000.0
        freqs = np.arange(100.0)
        peak_freqs, peak_powers = extract_peaks(power, freqs, 0.01)
        assert peak_freqs[0] == 40.0
        assert peak_powers[0] == 1000.0

    def test_strongest_first_ordering(self):
        power = np.ones(100)
        power[10] = 500.0
        power[50] = 900.0
        power[80] = 300.0
        freqs = np.arange(100.0)
        peak_freqs, _ = extract_peaks(power, freqs, 0.01)
        assert list(peak_freqs) == [50.0, 10.0, 80.0]

    def test_energy_threshold_excludes_weak_peaks(self):
        # Total energy 1000; 1% threshold = 10.
        power = np.zeros(100)
        power[10] = 985.0
        power[50] = 11.0
        power[80] = 4.0  # below threshold
        freqs = np.arange(100.0)
        peak_freqs, _ = extract_peaks(power, freqs, 0.01)
        assert set(peak_freqs) == {10.0, 50.0}

    def test_non_local_maxima_excluded(self):
        # A shoulder bin adjacent to a bigger bin is not a peak.
        power = np.zeros(100)
        power[40] = 500.0
        power[41] = 400.0
        freqs = np.arange(100.0)
        peak_freqs, _ = extract_peaks(power, freqs, 0.01)
        assert list(peak_freqs) == [40.0]

    def test_max_peaks_cap(self):
        power = np.zeros(100)
        for i in range(0, 100, 10):
            power[i + 5] = 100.0
        freqs = np.arange(100.0)
        peak_freqs, _ = extract_peaks(power, freqs, 0.01, max_peaks=3)
        assert len(peak_freqs) == 3

    def test_edge_bins_can_be_peaks(self):
        power = np.zeros(10)
        power[0] = 100.0
        power[9] = 50.0
        freqs = np.arange(10.0)
        peak_freqs, _ = extract_peaks(power, freqs, 0.01)
        assert 0.0 in peak_freqs and 9.0 in peak_freqs

    def test_empty_for_zero_power(self):
        peak_freqs, peak_powers = extract_peaks(np.zeros(10), np.arange(10.0))
        assert len(peak_freqs) == 0
        assert len(peak_powers) == 0

    def test_flat_spectrum_no_peaks(self):
        peak_freqs, _ = extract_peaks(np.ones(100), np.arange(100.0), 0.02)
        assert len(peak_freqs) == 0

    def test_mismatched_lengths(self):
        with pytest.raises(SignalError):
            extract_peaks(np.ones(10), np.arange(5.0))

    def test_bad_fraction(self):
        with pytest.raises(SignalError):
            extract_peaks(np.ones(10), np.arange(10.0), energy_fraction=0.0)


class TestPeakMatrix:
    def test_shape_and_padding(self):
        fs = 1e5
        t = np.arange(8192) / fs
        sig = Signal(np.sin(2 * np.pi * 1e4 * t), fs)
        seq = stft(sig, window_samples=1024)
        matrix = peak_matrix(seq, max_peaks=6)
        assert matrix.shape == (len(seq), 6)
        # Single tone: first column the tone frequency, rest NaN.
        assert np.allclose(matrix[:, 0], 1e4, atol=fs / 1024)
        assert np.isnan(matrix[:, 3]).all()

    def test_two_tone(self):
        fs = 1e5
        t = np.arange(8192) / fs
        sig = Signal(
            np.sin(2 * np.pi * 1e4 * t) + 0.5 * np.sin(2 * np.pi * 2.5e4 * t), fs
        )
        seq = stft(sig, window_samples=1024)
        matrix = peak_matrix(seq, max_peaks=4)
        assert np.allclose(matrix[:, 0], 1e4, atol=fs / 1024)
        assert np.allclose(matrix[:, 1], 2.5e4, atol=fs / 1024)
