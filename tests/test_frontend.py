"""Front-end chains through the full detector stack (DESIGN.md D22).

The contract under test: an ``EddieConfig(frontend=...)`` chain behaves
identically everywhere it can run -- the batch monitor, the streaming
engine under any chunking, a snapshot/resume cycle, the fleet batch
kernel (mixed with frontend-less sessions), a model save/load round
trip, and a served session killed and resumed mid-stream. "Identically"
means bit-identical results with zero windows lost, including the
windows produced by flushing the chain's buffered tail at finish().
"""

import dataclasses
import json

import numpy as np
import pytest
from conftest import shared_tiny_detector, tiny_scale

from repro.core.model import EddieConfig
from repro.core.monitor import Monitor, MonitorResult
from repro.dsp import FirGateStage, SvdDenoiser
from repro.errors import ConfigurationError
from repro.experiments.runner import build_detector
from repro.programs.mibench import BENCHMARKS
from repro.serialize import (
    config_fingerprint,
    load_model,
    save_model,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.serve import (
    ChaosProxy,
    EddieClient,
    ModelRegistry,
    ServerConfig,
    serve_in_thread,
)
from repro.stream import FleetScheduler, StreamingMonitor

TINY = tiny_scale()

#: The chain every test here attaches: a band gate feeding the SVD
#: subspace projection (the bench_denoise "denoised" tier, with a
#: smaller Hankel window to keep the tiny-scale suite fast).
FRONTEND = (
    FirGateStage(cutoff=0.5),
    SvdDenoiser(block_samples=2048, hankel_window=32, rank=8),
)

_FE_DETECTORS = {}


def frontend_detector(name="bitcount"):
    """One tiny-scale detector per program trained *with* the chain."""
    if name not in _FE_DETECTORS:
        _FE_DETECTORS[name] = build_detector(
            BENCHMARKS[name](), TINY, source="em",
            config=EddieConfig(frontend=FRONTEND),
        )
    return _FE_DETECTORS[name]


def assert_results_equal(streamed: MonitorResult, batch: MonitorResult):
    np.testing.assert_array_equal(streamed.times, batch.times)
    assert streamed.tracked == batch.tracked
    assert streamed.reports == batch.reports
    assert streamed.report_indices == batch.report_indices
    np.testing.assert_array_equal(
        streamed.rejection_flags, batch.rejection_flags
    )
    np.testing.assert_array_equal(streamed.group_sizes, batch.group_sizes)
    np.testing.assert_array_equal(
        streamed.unscorable_flags, batch.unscorable_flags
    )
    assert streamed.status == batch.status


def stream_in_chunks(model, signal, chunk_samples):
    monitor = StreamingMonitor(model, keep_history=True)
    for start in range(0, len(signal.samples), chunk_samples):
        monitor.feed(signal.samples[start : start + chunk_samples])
    monitor.finish()
    return monitor


class TestBatchStreamingParity:
    @pytest.mark.parametrize("chunk_samples", [997, 2048, 4099, 10**9])
    def test_any_chunking_matches_batch(self, chunk_samples):
        detector = frontend_detector()
        signal = detector.source.capture(seed=TINY.monitor_seed(0)).iq
        batch = Monitor(detector.model).run_signal(signal)
        monitor = stream_in_chunks(detector.model, signal, chunk_samples)
        assert_results_equal(monitor.result(), batch)
        # The chain buffers samples, so finish() must flush the tail
        # through the STFT: no window the batch path scores may be lost.
        assert monitor.windows_seen == len(batch.times)

    def test_frontend_actually_changes_the_stream(self):
        # Guard against the chain silently not running: the same capture
        # scored by a frontend-less model must see different windows.
        detector = frontend_detector()
        plain = shared_tiny_detector("bitcount")
        # Training saw the processed stream: the reference profiles must
        # diverge from the frontend-less model's, and the fingerprint
        # the serving/fleet layers group by must differ too.
        assert detector.model.profiles != plain.model.profiles
        assert config_fingerprint(detector.model.config) != (
            config_fingerprint(plain.model.config)
        )


class TestSnapshotResume:
    def test_mid_stream_resume_is_bit_identical(self):
        detector = frontend_detector()
        signal = detector.source.capture(seed=TINY.monitor_seed(1)).iq
        samples = signal.samples
        chunk = 3001  # never block-aligned: the chain always has a tail

        straight = StreamingMonitor(detector.model)
        reports = []
        for start in range(0, len(samples), chunk):
            for r in straight.feed(samples[start : start + chunk]):
                reports.extend(r.reports)
        expected_summary = straight.finish()

        interrupted = StreamingMonitor(detector.model)
        resumed_reports = []
        cut = (len(samples) // chunk // 2) * chunk
        for start in range(0, cut, chunk):
            for r in interrupted.feed(samples[start : start + chunk]):
                resumed_reports.extend(r.reports)
        snap = snapshot_from_bytes(snapshot_to_bytes(interrupted.snapshot()))
        resumed = StreamingMonitor.restore(detector.model, snap)
        for start in range(cut, len(samples), chunk):
            for r in resumed.feed(samples[start : start + chunk]):
                resumed_reports.extend(r.reports)
        summary = resumed.finish()

        assert resumed_reports == reports
        assert summary == dataclasses.replace(
            expected_summary, session_id=summary.session_id
        )
        assert summary.windows == expected_summary.windows


class TestFleetMixedFrontends:
    def test_mixed_sessions_identical_to_isolated(self):
        """Frontend and frontend-less sessions sharing one fleet must
        each match their isolated runs -- the kernel may only pool
        streams whose model fingerprints (chain included) agree."""
        fe = frontend_detector()
        plain = shared_tiny_detector("bitcount")
        models = [fe.model, plain.model, fe.model, plain.model]
        signals = [
            det.source.capture(seed=TINY.monitor_seed(10 + s)).iq
            for s, det in enumerate((fe, plain, fe, plain))
        ]
        chunkings = (997, 2048, 4099, 2048)

        fleet = FleetScheduler(max_sessions=4, keep_history=True)
        for s, model in enumerate(models):
            fleet.add_session(f"dev-{s}", model)
        steps = [
            list(sig.iter_chunks(chunk))
            for sig, chunk in zip(signals, chunkings)
        ]
        for r in range(max(len(s) for s in steps)):
            fleet.feed_many([
                (f"dev-{s}", steps[s][r])
                for s in range(len(steps))
                if r < len(steps[s])
            ])
        for s in range(len(steps)):
            fleet.session(f"dev-{s}").monitor.finish()

        for s, (model, sig, chunk) in enumerate(
            zip(models, signals, chunkings)
        ):
            isolated = StreamingMonitor(model, keep_history=True)
            for c in sig.iter_chunks(chunk):
                isolated.feed(c)
            isolated.finish()
            assert_results_equal(
                fleet.session(f"dev-{s}").monitor.result(),
                isolated.result(),
            )


class TestModelRoundTrip:
    def test_save_load_preserves_the_chain(self, tmp_path):
        detector = frontend_detector()
        path = tmp_path / "fe_model.npz"
        save_model(detector.model, path)
        loaded = load_model(path)
        assert loaded.config.frontend == FRONTEND
        assert config_fingerprint(loaded.config) == config_fingerprint(
            detector.model.config
        )

    def test_tampered_stage_is_rejected(self, tmp_path):
        detector = frontend_detector()
        path = tmp_path / "fe_model.npz"
        save_model(detector.model, path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {k: data[k] for k in data.files if k != "meta"}
        # Quietly weaken the gate: the recorded fingerprint no longer
        # matches the rebuilt config, so the load must refuse.
        meta["config"]["frontend"][0]["cutoff"] = 0.9
        tampered = tmp_path / "tampered.npz"
        with open(tampered, "wb") as handle:
            np.savez_compressed(handle, meta=json.dumps(meta), **arrays)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            load_model(tampered)

    def test_unknown_stage_type_is_rejected(self, tmp_path):
        detector = frontend_detector()
        path = tmp_path / "fe_model.npz"
        save_model(detector.model, path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {k: data[k] for k in data.files if k != "meta"}
        meta["config"]["frontend"][0] = {"type": "not_a_stage"}
        tampered = tmp_path / "unknown.npz"
        with open(tampered, "wb") as handle:
            np.savez_compressed(handle, meta=json.dumps(meta), **arrays)
        with pytest.raises(ConfigurationError):
            load_model(tampered)


class TestServeResumeWithFrontend:
    def test_kill_and_resume_loses_zero_windows(self, tmp_path):
        detector = frontend_detector()
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(detector.model)
        trace = detector.source.capture(seed=TINY.monitor_seed(2))
        chunks = list(trace.iq.iter_chunks(4096))
        assert len(chunks) >= 4

        local = StreamingMonitor(detector.model, t0=trace.iq.t0)
        local_reports = []
        for chunk in chunks:
            for result in local.feed(chunk):
                local_reports.extend(result.reports)
        local_summary = local.finish()

        config = ServerConfig(
            max_sessions=4, worker_threads=2, checkpoint_interval=2
        )
        with serve_in_thread(registry, config) as handle:
            with ChaosProxy(handle.address, seed=11) as proxy:
                host, port = proxy.address
                with EddieClient(
                    host, port, window=4, connect_timeout=5.0,
                    io_timeout=10.0, max_retries=8,
                    backoff_base=0.02, backoff_max=0.25,
                ) as client:
                    client.open(detector.model.program_name, t0=trace.iq.t0)
                    reports = []
                    for i, chunk in enumerate(chunks):
                        reports.extend(client.send(chunk))
                        if i == len(chunks) // 2:
                            reports.extend(client.drain())
                            assert proxy.kill_connections() == 1
                    reports.extend(client.drain())
                    summary = client.close()
                    assert client.reconnects >= 1
                    assert reports == local_reports
                    assert summary == dataclasses.replace(
                        local_summary, session_id=summary.session_id
                    )
                    # Zero windows lost across the kill: the resumed
                    # session scored exactly what the local run did,
                    # drained chain tail included.
                    assert client.windows_seen == local_summary.windows
            assert handle.stats.sessions_resumed >= 1
