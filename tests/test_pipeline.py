"""Unit tests for the path schedulers (repro.arch.pipeline)."""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.pipeline import schedule_path, unit_pipes
from repro.arch.isa import Unit, base_latency
from repro.programs.ir import Instr, MemRef, OpClass


def iadds(n, dep_chain=False):
    """n integer adds; optionally a serial dependency chain."""
    if not dep_chain:
        return [Instr(OpClass.IADD, dst=f"r{i}") for i in range(n)]
    return [Instr(OpClass.IADD, dst="r0", srcs=("r0",)) for _ in range(n)]


class TestScheduleBasics:
    def test_empty_path(self):
        sched = schedule_path([], CoreConfig())
        assert sched.cycles == 0
        assert sched.ipc == 0.0

    def test_single_instruction(self):
        sched = schedule_path(iadds(1), CoreConfig(issue_width=1))
        assert sched.cycles == 1
        assert sched.issue[0] == 0
        assert sched.complete[0] == 1

    def test_issue_width_limits_throughput(self):
        narrow = schedule_path(iadds(8), CoreConfig(issue_width=1))
        wide = schedule_path(iadds(8), CoreConfig(issue_width=4))
        assert narrow.cycles > wide.cycles
        assert narrow.cycles >= 8

    def test_dependency_chain_serializes(self):
        core = CoreConfig(issue_width=4)
        chain = schedule_path(iadds(8, dep_chain=True), core)
        parallel = schedule_path(iadds(8), core)
        assert chain.cycles >= 8  # one per cycle at best
        assert parallel.cycles < chain.cycles

    def test_latency_respected(self):
        core = CoreConfig(issue_width=2)
        instrs = [
            Instr(OpClass.IMUL, dst="a"),
            Instr(OpClass.IADD, dst="b", srcs=("a",)),
        ]
        sched = schedule_path(instrs, core)
        mul_latency = base_latency(instrs[0], core.mem.l1.hit_latency)
        assert sched.issue[1] >= sched.issue[0] + mul_latency

    def test_load_uses_l1_hit_latency(self):
        core = CoreConfig()
        instrs = [
            Instr(OpClass.LOAD, dst="v", mem=MemRef("a")),
            Instr(OpClass.IADD, dst="w", srcs=("v",)),
        ]
        sched = schedule_path(instrs, core)
        assert sched.issue[1] - sched.issue[0] >= core.mem.l1.hit_latency

    def test_divider_unpipelined(self):
        core = CoreConfig(issue_width=4)
        divs = [Instr(OpClass.IDIV, dst=f"d{i}") for i in range(3)]
        sched = schedule_path(divs, core)
        # Each division must wait for the previous one to finish.
        div_latency = base_latency(divs[0], core.mem.l1.hit_latency)
        assert sched.issue[1] >= sched.complete[0] - 1
        assert sched.cycles >= 3 * div_latency

    def test_alus_pipelined(self):
        core = CoreConfig(issue_width=2)
        sched = schedule_path(iadds(6), core)
        # Two independent adds per cycle.
        assert sched.cycles <= 4


class TestInOrderVsOutOfOrder:
    def make(self, kind):
        return CoreConfig(kind=kind, issue_width=2, rob_size=32)

    def test_ooo_reorders_around_long_latency(self):
        # A dependent pair blocks an in-order core; an OOO core slides the
        # independent adds under the multiply.
        instrs = [
            Instr(OpClass.IMUL, dst="a"),
            Instr(OpClass.IADD, dst="b", srcs=("a",)),
        ] + iadds(6)
        inorder = schedule_path(instrs, self.make("inorder"))
        ooo = schedule_path(instrs, self.make("ooo"))
        assert ooo.cycles <= inorder.cycles

    def test_inorder_never_issues_out_of_order(self):
        instrs = [Instr(OpClass.IMUL, dst="a"), Instr(OpClass.IADD, dst="b", srcs=("a",))] + iadds(4)
        sched = schedule_path(instrs, self.make("inorder"))
        assert all(sched.issue[i] <= sched.issue[i + 1] for i in range(len(instrs) - 1))

    def test_ooo_rob_limits_lookahead(self):
        core_small = CoreConfig(kind="ooo", issue_width=4, rob_size=4)
        core_big = CoreConfig(kind="ooo", issue_width=4, rob_size=256)
        # A long stall at the front: a divide everything else is independent of.
        instrs = [Instr(OpClass.IDIV, dst="d", srcs=("d",))] * 4 + iadds(64)
        small = schedule_path(instrs, core_small)
        big = schedule_path(instrs, core_big)
        assert big.cycles <= small.cycles

    def test_inorder_deterministic_even_with_rng(self):
        core = self.make("inorder")
        rng = np.random.default_rng(0)
        a = schedule_path(iadds(10), core, rng)
        b = schedule_path(iadds(10), core)
        assert np.array_equal(a.issue, b.issue)

    def test_ooo_variants_differ(self):
        core = CoreConfig(kind="ooo", issue_width=4, rob_size=64)
        instrs = iadds(120) + [Instr(OpClass.IMUL, dst="m", srcs=("r0",))] * 8
        base = schedule_path(instrs, core)
        # Jitter-event counts are Poisson with a small mean; at least one
        # of several seeds must produce a perturbed schedule.
        perturbed = [
            schedule_path(instrs, core, np.random.default_rng(seed),
                          expected_cycles=base.cycles)
            for seed in range(8)
        ]
        assert any(
            not np.array_equal(base.issue, variant.issue) for variant in perturbed
        )
        # Perturbation only delays, never accelerates below dataflow bound.
        assert all(variant.cycles >= base.cycles for variant in perturbed)

    def test_ipc_bounded_by_width(self):
        for width in (1, 2, 4):
            core = CoreConfig(kind="ooo", issue_width=width, rob_size=64)
            sched = schedule_path(iadds(100), core)
            assert sched.ipc <= width + 1e-9


class TestUnitPipes:
    def test_all_units_present(self):
        pipes = unit_pipes(CoreConfig(issue_width=4))
        assert set(pipes) == set(Unit)
        assert all(v >= 1 for v in pipes.values())

    def test_alu_scales_with_width(self):
        assert unit_pipes(CoreConfig(issue_width=4))[Unit.ALU] == 4
        assert unit_pipes(CoreConfig(issue_width=1))[Unit.ALU] == 1
