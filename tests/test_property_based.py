"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.branch import TwoBitPredictor, two_bit_mispredict_rate
from repro.arch.config import CoreConfig
from repro.arch.engine import TraceBuilder, _sticky_stream
from repro.arch.pipeline import schedule_path
from repro.core.peaks import extract_peaks
from repro.core.stats.empirical import ecdf
from repro.core.stats.ks import kolmogorov_sf, ks_2samp, ks_critical_value, ks_statistic
from repro.core.stats.utest import mann_whitney_u
from repro.core.stft import stft
from repro.programs.ir import Instr, OpClass
from repro.types import RegionInterval, RegionTimeline, Signal

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestKsProperties:
    @given(
        x=st.lists(finite_floats, min_size=2, max_size=60),
        y=st.lists(finite_floats, min_size=2, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_statistic_bounds_and_symmetry(self, x, y):
        a, b = np.array(x), np.array(y)
        result = ks_2samp(a, b)
        assert 0.0 <= result.statistic <= 1.0
        assert 0.0 <= result.pvalue <= 1.0
        flipped = ks_2samp(b, a)
        assert result.statistic == pytest.approx(flipped.statistic, abs=1e-12)

    @given(x=st.lists(finite_floats, min_size=2, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_identical_samples_never_reject(self, x):
        a = np.array(x)
        result = ks_2samp(a, a)
        assert result.statistic == 0.0
        assert not result.reject(0.01)

    @given(
        x=st.lists(finite_floats, min_size=2, max_size=40),
        shift=st.floats(min_value=1e10, max_value=1e12),
    )
    @settings(max_examples=50, deadline=None)
    def test_disjoint_shift_maximizes_statistic(self, x, shift):
        a = np.array(x)
        result = ks_2samp(a, a + shift)
        assert result.statistic == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_kolmogorov_sf_monotone_and_bounded(self, x):
        value = kolmogorov_sf(x)
        assert 0.0 <= value <= 1.0
        assert kolmogorov_sf(x + 0.1) <= value + 1e-12

    @given(
        m=st.integers(min_value=2, max_value=2000),
        n=st.integers(min_value=2, max_value=2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_critical_value_shrinks_with_samples(self, m, n):
        crit = ks_critical_value(m, n, 0.01)
        assert crit > 0
        assert ks_critical_value(m * 2, n * 2, 0.01) < crit
        # Stricter significance => larger critical value.
        assert ks_critical_value(m, n, 0.001) > ks_critical_value(m, n, 0.05)


class TestUTestProperties:
    @given(
        x=st.lists(finite_floats, min_size=3, max_size=40),
        y=st.lists(finite_floats, min_size=3, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_pvalue_bounds_and_u_range(self, x, y):
        result = mann_whitney_u(np.array(x), np.array(y))
        assert 0.0 <= result.pvalue <= 1.0
        assert 0.0 <= result.statistic <= len(x) * len(y)


class TestEcdfProperties:
    @given(x=st.lists(finite_floats, min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_ecdf_is_a_cdf(self, x):
        data = np.array(x)
        F = ecdf(data)
        grid = np.linspace(data.min() - 1, data.max() + 1, 30)
        values = F(grid)
        assert np.all(np.diff(values) >= -1e-12)  # monotone
        assert values[0] == 0.0 or data.min() >= grid[0]
        assert F(np.array([data.max()]))[0] == pytest.approx(1.0)


class TestPredictorProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_two_bit_state_always_valid(self, outcomes):
        pred = TwoBitPredictor()
        for taken in outcomes:
            pred.update(taken)
            assert 0 <= pred.state <= 3

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_mispredict_rate_bounded(self, p):
        rate = two_bit_mispredict_rate(p)
        assert 0.0 <= rate <= 0.5 + 1e-9


class TestTraceBuilderProperties:
    @given(
        chunks=st.lists(
            st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                     min_size=0, max_size=50),
            min_size=1, max_size=10,
        ),
        cps=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunking_invariant(self, chunks, cps):
        """Samples must not depend on how cycles were chunked."""
        whole = np.concatenate([np.array(c) for c in chunks]) if chunks else np.empty(0)
        tb_chunks = TraceBuilder(cps)
        for chunk in chunks:
            tb_chunks.add_cycles(np.array(chunk))
        tb_whole = TraceBuilder(cps)
        tb_whole.add_cycles(whole)
        np.testing.assert_allclose(tb_chunks.samples(), tb_whole.samples())
        assert tb_chunks.total_cycles == len(whole)

    @given(
        values=st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                        min_size=4, max_size=200),
        cps=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_conservation(self, values, cps):
        """Mean of samples equals mean of the cycles they cover."""
        tb = TraceBuilder(cps)
        tb.add_cycles(np.array(values))
        samples = tb.samples()
        covered = len(samples) * cps
        if covered:
            assert samples.mean() * covered == pytest.approx(
                np.sum(values[:covered]), rel=1e-9
            )


class TestStickyStreamProperties:
    @given(
        n=st.integers(min_value=1, max_value=500),
        n_states=st.integers(min_value=2, max_value=6),
        initial=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_states_valid(self, n, n_states, initial, seed):
        assume(initial < n_states)
        rng = np.random.default_rng(seed)
        stream, final = _sticky_stream(n, n_states, initial, 0.1, rng)
        assert len(stream) == n
        assert np.all((stream >= 0) & (stream < n_states))
        assert final == stream[-1]

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_zero_switch_prob_keeps_state(self, seed):
        rng = np.random.default_rng(seed)
        stream, _ = _sticky_stream(50, 4, 2, 0.0, rng)
        assert np.all(stream == 2)


class TestScheduleProperties:
    @given(
        n=st.integers(min_value=1, max_value=60),
        width=st.sampled_from([1, 2, 4]),
        kind=st.sampled_from(["inorder", "ooo"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_schedule_sanity(self, n, width, kind):
        core = CoreConfig(kind=kind, issue_width=width, rob_size=64)
        instrs = [Instr(OpClass.IADD, dst=f"r{i % 4}") for i in range(n)]
        sched = schedule_path(instrs, core)
        # Completion after issue, cycles cover all completions, width bound.
        assert np.all(sched.complete > sched.issue - 1)
        assert sched.cycles == sched.complete.max()
        _, counts = np.unique(sched.issue, return_counts=True)
        assert counts.max() <= width


class TestPeakProperties:
    @given(
        powers=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                        min_size=8, max_size=120),
        fraction=st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_peaks_respect_threshold_and_order(self, powers, fraction):
        power = np.array(powers)
        freqs = np.arange(len(power), dtype=float)
        peak_freqs, peak_powers = extract_peaks(power, freqs, fraction,
                                                min_prominence=0.0)
        total = power.sum()
        assert np.all(peak_powers >= fraction * total - 1e-9)
        assert np.all(np.diff(peak_powers) <= 1e-12)  # descending
        # All reported frequencies exist in the grid.
        assert set(peak_freqs) <= set(freqs)


class TestTimelineProperties:
    @given(
        durations=st.lists(st.floats(min_value=0.01, max_value=5.0,
                                     allow_nan=False), min_size=1, max_size=20),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_region_at_matches_intervals(self, durations, seed):
        rng = np.random.default_rng(seed)
        timeline = RegionTimeline()
        t = 0.0
        for i, d in enumerate(durations):
            timeline.append(RegionInterval(f"r{i % 3}", t, t + d))
            t += d
        for interval in timeline:
            mid = (interval.t_start + interval.t_end) / 2
            assert timeline.region_at(mid) == interval.region
        assert timeline.region_at(t + 1.0) is None
        assert timeline.region_at(-1.0) is None


class TestStftProperties:
    @given(
        freq_bin=st.integers(min_value=3, max_value=60),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_tone_lands_in_its_bin(self, freq_bin, seed):
        fs, n_window = 1e5, 128
        f0 = freq_bin * fs / n_window
        assume(f0 < fs / 2 - fs / n_window)
        t = np.arange(1024) / fs
        rng = np.random.default_rng(seed)
        sig = Signal(np.sin(2 * np.pi * f0 * t) + 0.01 * rng.normal(size=1024), fs)
        seq = stft(sig, window_samples=n_window)
        for row in seq.power:
            assert abs(seq.freqs[np.argmax(row)] - f0) <= fs / n_window
