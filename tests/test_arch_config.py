"""Unit tests for repro.arch.config."""

import pytest

from repro.arch.config import (
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    architecture_sweep,
)
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig(size=32 * 1024, assoc=4, line_size=64)
        assert cache.num_sets == 128

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=1000, assoc=3, line_size=64)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=0, assoc=1)

    def test_rejects_zero_hit_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=1024, assoc=1, line_size=64, hit_latency=0)


class TestMemoryConfig:
    def test_defaults_valid(self):
        mem = MemoryConfig()
        assert mem.l1.size < mem.l2.size

    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(
                l1=CacheConfig(64 * 1024, 4),
                l2=CacheConfig(32 * 1024, 4),
            )

    def test_dram_latency_must_exceed_l2(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(dram_latency=5)


class TestCoreConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(kind="vliw")

    def test_sample_rate(self):
        core = CoreConfig(clock_hz=2e9, cycles_per_sample=20)
        assert core.sample_rate == 1e8

    def test_mispredict_penalty_is_depth(self):
        core = CoreConfig(pipeline_depth=14)
        assert core.mispredict_penalty == 14

    def test_rob_must_fit_issue_group(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(kind="ooo", issue_width=8, rob_size=4)

    def test_scaled_changes_only_clock(self):
        core = CoreConfig.sim_ooo()
        slow = core.scaled(1e8)
        assert slow.clock_hz == 1e8
        assert slow.issue_width == core.issue_width
        assert slow.mem == core.mem

    def test_iot_preset_matches_paper(self):
        core = CoreConfig.iot_inorder()
        assert core.kind == "inorder"
        assert core.issue_width == 2
        assert core.mem.l1.size == 32 * 1024
        assert core.mem.l2.size == 256 * 1024

    def test_sim_preset_matches_paper(self):
        core = CoreConfig.sim_ooo()
        assert core.kind == "ooo"
        assert core.issue_width == 4
        assert core.cycles_per_sample == 20
        assert core.clock_hz == 1.8e9


class TestArchitectureSweep:
    def test_exactly_51_configs(self):
        assert len(architecture_sweep()) == 51

    def test_breakdown(self):
        configs = architecture_sweep()
        inorder = [c for c in configs if c.kind == "inorder"]
        ooo = [c for c in configs if c.kind == "ooo"]
        assert len(inorder) == 6  # 3 widths x 2 depths
        assert len(ooo) == 45  # 3 widths x 3 depths x 5 ROBs

    def test_names_unique(self):
        names = [c.name for c in architecture_sweep()]
        assert len(names) == len(set(names))

    def test_issue_widths_as_paper(self):
        widths = {c.issue_width for c in architecture_sweep()}
        assert widths == {1, 2, 4}
