"""Fleet batch kernel: pooled dispatch is bit-identical to isolation.

DESIGN.md D20's load-bearing claim: routing a fleet round through
:class:`FleetKernel` -- one pooled STFT, peak-extraction, planning, and
K-S pass over every isomorphic session -- changes *nothing* about any
session's results. The sweeps below pin that:

- kernel fleets vs isolated scalar streams across every MiBench program,
  with mixed chunk sizes and seeds sharing one fleet,
- quality-gated (faulted) streams grouped with clean ones,
- snapshot/restore and idle eviction in the middle of a live group,
- the pooled chunk planner vs the per-session planner, job by job,
- hypothesis fuzz of the vectorized exact-integer K-S row kernel and
  the vectorized peak extractor against their scalar counterparts
  (tie-heavy integer grids, since K-S run-end handling is where
  vectorization could plausibly diverge).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import (
    Monitor,
    MonitorResult,
    plan_chunks_pooled,
    score_ks_jobs,
)
from repro.core.peaks import extract_peaks, peak_matrix, peak_rows
from repro.core.stats.ks import _ks_d_int, ks_d_int_rows
from repro.em.faults import FaultInjector, SampleDropFault, SaturationFault
from repro.em.scenario import EmScenario
from repro.experiments.runner import Scale, build_detector
from repro.programs.mibench import BENCHMARKS
from repro.stream import FleetScheduler, StreamingMonitor

TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16))

_DETECTORS = {}

# Mixed per-session chunkings: primes straddling the hop, a power of
# two, and an odd giant -- sessions of one fleet need not agree.
_CHUNKINGS = (997, 2048, 4099)


def detector_for(name):
    """One tiny-scale detector per program, built lazily and cached."""
    if name not in _DETECTORS:
        _DETECTORS[name] = build_detector(BENCHMARKS[name](), TINY, source="em")
    return _DETECTORS[name]


def assert_results_equal(a: MonitorResult, b: MonitorResult):
    np.testing.assert_array_equal(a.times, b.times)
    assert a.tracked == b.tracked
    assert a.reports == b.reports
    assert a.report_indices == b.report_indices
    np.testing.assert_array_equal(a.rejection_flags, b.rejection_flags)
    np.testing.assert_array_equal(a.group_sizes, b.group_sizes)
    np.testing.assert_array_equal(a.unscorable_flags, b.unscorable_flags)
    assert a.status == b.status


def isolated_result(model, samples, chunk_samples) -> MonitorResult:
    """The scalar truth: one stream fed alone, no kernel anywhere."""
    monitor = StreamingMonitor(model, keep_history=True)
    for start in range(0, len(samples), chunk_samples):
        monitor.feed(samples[start : start + chunk_samples])
    monitor.finish()
    return monitor.result()


def drive_fleet(fleet, signals, chunkings):
    """Feed each signal through its fleet session in kernel rounds.

    Sessions stay open afterwards (unlike source-driven
    :meth:`step_round`, which closes exhausted streams), so their
    monitors can be finished and compared in place.
    """
    steps = [
        list(sig.iter_chunks(chunk))
        for sig, chunk in zip(signals, chunkings)
    ]
    for r in range(max(len(s) for s in steps)):
        fleet.feed_many([
            (f"dev-{s}", steps[s][r])
            for s in range(len(steps))
            if r < len(steps[s])
        ])
    for s in range(len(steps)):
        fleet.session(f"dev-{s}").monitor.finish()


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_program_mixed_chunkings(self, name):
        """A kernel fleet of mixed seeds and chunk sizes == isolation."""
        detector = detector_for(name)
        model = detector.model
        signals = [
            detector.source.capture(seed=TINY.monitor_seed(50 + s)).iq
            for s in range(len(_CHUNKINGS))
        ]
        fleet = FleetScheduler(max_sessions=8, keep_history=True)
        for s in range(len(_CHUNKINGS)):
            fleet.add_session(f"dev-{s}", model)
        drive_fleet(fleet, signals, _CHUNKINGS)
        for s, (signal, chunk) in enumerate(zip(signals, _CHUNKINGS)):
            assert_results_equal(
                fleet.session(f"dev-{s}").monitor.result(),
                isolated_result(model, signal.samples, chunk),
            )

    def test_faulted_streams_grouped_with_clean(self):
        """Quality-gated sessions pool with clean ones, results intact.

        Gap/dead windows force mid-chunk resyncs -- the divergent state
        the kernel must hand back to the scalar path -- while the clean
        session keeps riding the pooled fast path in the same group.
        """
        detector = detector_for("bitcount")
        model = detector.model
        scenario = EmScenario.build(
            BENCHMARKS["bitcount"](),
            core=detector.source.simulator.core,
            faults=FaultInjector(
                faults=(
                    SampleDropFault(rate_per_s=400.0),
                    SaturationFault(rate_per_s=400.0),
                )
            ),
        )
        faulted = [scenario.capture(seed=7).iq, scenario.capture(seed=9).iq]
        clean = detector.source.capture(seed=TINY.monitor_seed(51)).iq
        signals = faulted + [clean]
        chunks = (1021, 4096, 997)
        fleet = FleetScheduler(max_sessions=4, keep_history=True)
        for s in range(len(chunks)):
            fleet.add_session(f"dev-{s}", model)
        drive_fleet(fleet, signals, chunks)
        for s, (signal, chunk) in enumerate(zip(signals, chunks)):
            assert_results_equal(
                fleet.session(f"dev-{s}").monitor.result(),
                isolated_result(model, signal.samples, chunk),
            )

    def test_kernel_off_matches_kernel_on(self):
        """kernel=False routes feed_many per session; same results."""
        detector = detector_for("sha")
        model = detector.model
        signals = [
            detector.source.capture(seed=TINY.monitor_seed(60 + s)).iq
            for s in range(2)
        ]
        results = {}
        for kernel in (True, False):
            fleet = FleetScheduler(
                max_sessions=4, keep_history=True, kernel=kernel
            )
            for s in range(len(signals)):
                fleet.add_session(f"dev-{s}", model)
            drive_fleet(fleet, signals, [2048] * len(signals))
            results[kernel] = [
                fleet.session(f"dev-{s}").monitor.result()
                for s in range(len(signals))
            ]
        for with_kernel, without in zip(results[True], results[False]):
            assert_results_equal(with_kernel, without)


class TestKernelMidGroupChanges:
    def test_snapshot_restore_mid_group(self):
        """A session checkpointed out of one kernel group and restored
        into another (already-running) fleet loses nothing: the kernel
        keeps no per-session state to pack or unpack."""
        detector = detector_for("bitcount")
        model = detector.model
        signals = [
            detector.source.capture(seed=TINY.monitor_seed(70 + s)).iq
            for s in range(3)
        ]
        chunk = 4096
        steps = [
            list(sig.iter_chunks(chunk)) for sig in signals
        ]
        rounds = max(len(s) for s in steps)
        half = rounds // 2
        # keep_history=False: snapshot() refuses history-keeping streams,
        # so per-round results are collected from the feed_many slots.
        fleet_a = FleetScheduler(max_sessions=4)
        for s in range(3):
            fleet_a.add_session(f"dev-{s}", model)
        results = {s: [] for s in range(3)}
        for r in range(half):
            batch = [
                (f"dev-{s}", steps[s][r])
                for s in range(3)
                if r < len(steps[s])
            ]
            for (sid, _), slot in zip(batch, fleet_a.feed_many(batch)):
                results[int(sid[-1])].extend(slot)
        # Suspend dev-1 over a snapshot; the other two keep their
        # monitors (detached so fleet_b can adopt them unchanged).
        snap = fleet_a.session("dev-1").monitor.snapshot()
        restored = StreamingMonitor.restore(model, snap)
        fleet_b = FleetScheduler(max_sessions=4)
        fleet_b.attach_session("dev-0", fleet_a.detach_session("dev-0").monitor)
        fleet_b.attach_session("dev-1", restored)
        fleet_b.attach_session("dev-2", fleet_a.detach_session("dev-2").monitor)
        for r in range(half, rounds):
            batch = [
                (f"dev-{s}", steps[s][r])
                for s in range(3)
                if r < len(steps[s])
            ]
            for (sid, _), slot in zip(batch, fleet_b.feed_many(batch)):
                results[int(sid[-1])].extend(slot)
        for s in range(3):
            fleet_b.session(f"dev-{s}").monitor.finish()
            streamed = MonitorResult.concat(
                results[s],
                max_unscorable_fraction=model.config.max_unscorable_fraction,
            )
            isolated = isolated_result(model, signals[s].samples, chunk)
            assert_results_equal(streamed, isolated)

    def test_idle_eviction_mid_group(self):
        """Evicting the stalest session from a live group neither
        corrupts the evicted summary nor perturbs the survivors."""
        detector = detector_for("bitcount")
        model = detector.model
        signals = [
            detector.source.capture(seed=TINY.monitor_seed(80 + s)).iq
            for s in range(3)
        ]
        chunk = 4096
        evicted = {}
        fleet = FleetScheduler(
            max_sessions=2,
            evict_idle=True,
            keep_history=True,
            on_evict=lambda sid, summary: evicted.setdefault(sid, summary),
        )
        fleet.add_session("dev-0", model)
        fleet.add_session("dev-1", model)
        prefix = list(signals[0].iter_chunks(chunk))[:3]
        for r in range(3):
            fleet.feed_many([
                ("dev-0", prefix[r]),
                ("dev-1", list(signals[1].iter_chunks(chunk))[r]),
            ])
        # dev-0 goes idle; feeding only dev-1 makes dev-0 the stalest,
        # so admitting dev-2 evicts it mid-group.
        fleet.feed_many([("dev-1", list(signals[1].iter_chunks(chunk))[3])])
        fleet.add_session("dev-2", model)
        assert list(evicted) == ["dev-0"]
        # The evicted summary equals a scalar run over the same prefix.
        scalar = StreamingMonitor(model)
        for part in prefix:
            scalar.feed(part)
        summary = scalar.finish()
        assert evicted["dev-0"].windows == summary.windows
        assert evicted["dev-0"].reports == summary.reports
        # Survivors and the newcomer continue unperturbed, pooled into
        # the same kernel groups.
        rest1 = list(signals[1].iter_chunks(chunk))[4:]
        rest2 = list(signals[2].iter_chunks(chunk))
        for r in range(max(len(rest1), len(rest2))):
            batch = []
            if r < len(rest1):
                batch.append(("dev-1", rest1[r]))
            if r < len(rest2):
                batch.append(("dev-2", rest2[r]))
            fleet.feed_many(batch)
        for sid in ("dev-1", "dev-2"):
            fleet.session(sid).monitor.finish()
        for sid, signal in (("dev-1", signals[1]), ("dev-2", signals[2])):
            assert_results_equal(
                fleet.session(sid).monitor.result(),
                isolated_result(model, signal.samples, chunk),
            )


class TestPooledPlanner:
    def test_pooled_plans_match_scalar_plans(self):
        """plan_chunks_pooled == plan_chunk, job by job, on live state.

        Plans are read-only, so the same monitor can be planned both
        ways and compared directly -- including sessions at different
        stream depths sharing one pooled call, which exercises both the
        stacked steady-state path and the per-session fallback.
        """
        detector = detector_for("fft")
        model = detector.model
        streams = []
        for s in range(4):
            signal = detector.source.capture(seed=TINY.monitor_seed(90 + s)).iq
            mon = StreamingMonitor(model)
            # Different prefixes put each monitor at a different depth
            # (including one fresh monitor with an unfilled history).
            for start in range(0, 4096 * s, 4096):
                mon.feed(signal.samples[start : start + 4096])
            staged = mon._stage_chunk(
                signal.samples[4096 * s : 4096 * (s + 1)]
            )
            power = freqs = None
            if staged.n:
                power, freqs = mon._stft.transform(staged)
            seq = mon._emit_windows(staged, power, freqs)
            cfg = mon._cfg
            peaks = peak_matrix(
                seq, cfg.energy_fraction, cfg.max_peaks,
                cfg.peak_prominence, cfg.diffuse_features,
            )
            streams.append((mon, peaks, seq.quality))
        pooled = plan_chunks_pooled(
            [(mon._monitor, peaks, quality) for mon, peaks, quality in streams]
        )
        for (mon, peaks, quality), plan in zip(streams, pooled):
            scalar = mon._monitor.plan_chunk(peaks, quality)
            if scalar is None:
                assert plan is None
                continue
            assert plan is not None
            assert plan.k == scalar.k
            assert plan.static_stop == scalar.static_stop
            assert len(plan.jobs) == len(scalar.jobs)
            score_ks_jobs(plan.jobs, mon._cfg.alpha)
            score_ks_jobs(scalar.jobs, mon._cfg.alpha)
            for a, b in zip(plan.jobs, scalar.jobs):
                assert (a.dim, a.count, a.m) == (b.dim, b.count, b.m)
                assert a.ref is b.ref
                np.testing.assert_array_equal(a.windows, b.windows)
                np.testing.assert_array_equal(a.rows, b.rows)
                np.testing.assert_array_equal(a.d, b.d)
                np.testing.assert_array_equal(a.rejected, b.rejected)


class TestVectorizedKernels:
    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_ks_rows_fuzz_matches_scalar(self, data):
        """ks_d_int_rows == _ks_d_int on tie-heavy integer grids.

        Small integer grids maximize equal-value runs within and across
        the reference and monitored sides -- exactly where the row
        kernel's run-end shortcut could diverge from the scalar scan.
        """
        m = data.draw(st.integers(1, 32), label="m")
        c = data.draw(st.integers(1, 10), label="c")
        b = data.draw(st.integers(1, 6), label="rows")
        grid = data.draw(st.integers(2, 9), label="grid")
        vals = st.integers(-grid, grid)
        ref = np.sort(np.asarray(
            data.draw(st.lists(vals, min_size=m, max_size=m)), dtype=float
        ))
        rows = np.sort(np.asarray(
            data.draw(st.lists(
                st.lists(vals, min_size=c, max_size=c),
                min_size=b, max_size=b,
            )), dtype=float
        ), axis=1)
        expected = np.asarray(
            [_ks_d_int(ref, row, m, c) for row in rows], dtype=np.int64
        )
        np.testing.assert_array_equal(ks_d_int_rows(ref, rows), expected)

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_peak_rows_fuzz_matches_scalar(self, data):
        """peak_rows == extract_peaks per window, NaN padding included."""
        n_windows = data.draw(st.integers(1, 5), label="windows")
        n_bins = data.draw(st.integers(4, 24), label="bins")
        max_peaks = data.draw(st.integers(1, 5), label="max_peaks")
        power = np.asarray(data.draw(st.lists(
            st.lists(
                st.floats(1e-3, 1e3, allow_nan=False, allow_infinity=False),
                min_size=n_bins, max_size=n_bins,
            ),
            min_size=n_windows, max_size=n_windows,
        )), dtype=float)
        freqs = np.arange(n_bins, dtype=float) * 13.5
        rows = peak_rows(power, freqs, 0.01, max_peaks, 2.0)
        for i in range(n_windows):
            freqs_i, _ = extract_peaks(power[i], freqs, 0.01, max_peaks, 2.0)
            expected = np.full(max_peaks, np.nan)
            expected[: len(freqs_i)] = freqs_i
            np.testing.assert_array_equal(rows[i], expected)
