"""Unit tests for repro.core.model."""

import numpy as np
import pytest

from repro.core.model import EddieConfig, EddieModel, RegionProfile
from repro.errors import ConfigurationError, TrainingError


def ref(values, width=4):
    """Build a reference matrix with one meaningful dim."""
    out = np.full((len(values), width), np.nan)
    out[:, 0] = values
    return out


def make_model(**kwargs):
    cfg = EddieConfig()
    profiles = {
        "loop:A": RegionProfile("loop:A", ref([1.0] * 50), 1, 8),
        "inter:loop:A->loop:B": RegionProfile(
            "inter:loop:A->loop:B", ref([2.0] * 50), 1, 8
        ),
        "loop:B": RegionProfile("loop:B", ref([3.0] * 50), 1, 16),
    }
    successors = {
        "loop:A": ["inter:loop:A->loop:B"],
        "inter:loop:A->loop:B": ["loop:B"],
        "loop:B": [],
    }
    defaults = dict(
        program_name="p",
        config=cfg,
        profiles=profiles,
        successors=successors,
        initial_regions=["loop:A"],
        sample_rate=1e6,
    )
    defaults.update(kwargs)
    return EddieModel(**defaults)


class TestEddieConfig:
    def test_defaults_match_paper(self):
        cfg = EddieConfig()
        assert cfg.alpha == 0.01  # 99% confidence
        assert cfg.report_threshold == 3
        assert cfg.energy_fraction == 0.01
        assert cfg.overlap == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"report_threshold": -1},
            {"change_fraction": 0.0},
            {"group_sizes": ()},
            {"group_sizes": (1, 8)},
            {"max_peaks": 0},
            {"window_samples": 4},
            {"overlap": 1.0},
            {"overlap": -0.1},
            {"energy_fraction": 0.0},
            {"energy_fraction": 1.0},
            {"peak_prominence": -1.0},
            {"statistic": "chi2"},
            {"reference_cap": 0},
            {"min_mon_values": 1},
            {"clip_fraction": 0.0},
            {"gap_samples": 0},
            {"dead_fraction": 1.5},
            {"energy_outlier_mads": 0.0},
            {"resync_timeout": 0},
            {"max_unscorable_fraction": 0.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            EddieConfig(**kwargs)

    def test_construction_is_keyword_only(self):
        with pytest.raises(TypeError):
            EddieConfig(512)  # noqa -- positional rejected by design

    def test_validate_chains_and_returns_self(self):
        cfg = EddieConfig()
        assert cfg.validate() is cfg


class TestRegionProfile:
    def test_reference_dim_sorted_nan_free(self):
        matrix = np.array([[3.0, np.nan], [1.0, 5.0], [2.0, np.nan]])
        profile = RegionProfile("r", matrix, 2, 8)
        np.testing.assert_array_equal(profile.reference_dim(0), [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(profile.reference_dim(1), [5.0])

    def test_reference_dim_cached(self):
        profile = RegionProfile("r", ref([1.0, 2.0]), 1, 8)
        assert profile.reference_dim(0) is profile.reference_dim(0)

    def test_testable(self):
        assert RegionProfile("r", ref([1.0] * 10), 1, 8).testable()
        assert not RegionProfile("r", ref([1.0] * 10), 0, 8).testable()
        all_nan = np.full((10, 4), np.nan)
        assert not RegionProfile("r", all_nan, 1, 8).testable()

    def test_validation(self):
        with pytest.raises(TrainingError):
            RegionProfile("r", np.ones(5), 1, 8)  # 1-D
        with pytest.raises(TrainingError):
            RegionProfile("r", np.ones((5, 2)), 3, 8)  # num_peaks too big
        with pytest.raises(TrainingError):
            RegionProfile("r", np.ones((5, 2)), 1, 1)  # group too small


class TestEddieModel:
    def test_candidate_regions_two_steps(self):
        model = make_model()
        # From loop:A, candidates include the inter region AND loop:B.
        assert set(model.candidate_regions("loop:A")) == {
            "inter:loop:A->loop:B",
            "loop:B",
        }
        assert model.candidate_regions("loop:B") == []

    def test_candidates_exclude_unprofiled(self):
        model = make_model(
            successors={
                "loop:A": ["inter:ghost"],
                "inter:loop:A->loop:B": [],
                "loop:B": [],
            }
        )
        assert model.candidate_regions("loop:A") == []

    def test_initial_region_fallback(self):
        model = make_model(initial_regions=["not-a-region"])
        assert model.initial_regions == ["loop:A"]

    def test_max_group_size(self):
        assert make_model().max_group_size == 16

    def test_hop_duration(self):
        model = make_model()
        cfg = model.config
        expected = (cfg.window_samples * (1 - cfg.overlap)) / 1e6
        assert model.hop_duration == pytest.approx(expected)

    def test_with_group_size(self):
        forced = make_model().with_group_size(64)
        assert all(p.group_size == 64 for p in forced.profiles.values())

    def test_with_alpha(self):
        relaxed = make_model().with_alpha(0.05)
        assert relaxed.config.alpha == 0.05
        # Profiles are shared, not copied.
        assert relaxed.profiles is not None

    def test_profile_lookup_error(self):
        with pytest.raises(ConfigurationError):
            make_model().profile("loop:nope")

    def test_empty_model_rejected(self):
        with pytest.raises(TrainingError):
            EddieModel("p", EddieConfig(), {}, {}, [], 1e6)
