"""Tests for the parallel experiment harness (runner.parallel_map).

The determinism contract: fanning an experiment's independent runs over a
process pool -- with or without a shared artifact cache -- produces output
identical to the serial loop, because every task is a pure function of
its (benchmark, scale, config) argument and all randomness flows from
Scale's explicit seed namespaces.
"""

import pytest

from repro import cache as cache_mod
from repro import obs
from repro.errors import ConfigurationError
from repro.experiments.runner import Scale, parallel_map, resolve_jobs
from repro.experiments.tables_common import run_table

TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16))


@pytest.fixture(autouse=True)
def no_ambient_cache():
    cache_mod.configure(None)
    yield
    cache_mod.configure(None)


def _square(x):  # top-level so the pool can pickle it
    return x * x


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_auto(self):
        assert resolve_jobs("auto") >= 1

    def test_explicit(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("4") == 4
        assert resolve_jobs(-2) == 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs("many")


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_pool_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [
            _square(x) for x in items
        ]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []


class TestParallelEqualsSerial:
    BENCHES = ["bitcount", "basicmath"]

    def test_run_table(self):
        serial = run_table(TINY, "power", benchmarks=self.BENCHES, jobs=1)
        parallel = run_table(TINY, "power", benchmarks=self.BENCHES, jobs=2)
        assert parallel.rows == serial.rows

    def test_run_table_with_shared_cache(self, tmp_path):
        serial = run_table(TINY, "power", benchmarks=self.BENCHES, jobs=1)
        cache_mod.configure(tmp_path)
        cold = run_table(TINY, "power", benchmarks=self.BENCHES, jobs=2)
        warm = run_table(TINY, "power", benchmarks=self.BENCHES, jobs=2)
        assert cold.rows == serial.rows
        assert warm.rows == serial.rows
        # The pool workers populated the shared directory: the follow-up
        # serial run hits in-process.
        stats_before = cache_mod.get_cache().stats.hits
        again = run_table(TINY, "power", benchmarks=self.BENCHES, jobs=1)
        assert again.rows == serial.rows
        assert cache_mod.get_cache().stats.hits > stats_before


class TestMergedCacheStats:
    """Cache hit/miss accounting under the pool (the per-process stats fix).

    Each worker process has its own ``CacheStats`` object, so the parent's
    local stats see none of the pool's activity. The observability layer
    fixes this: workers export their metric snapshot with each result and
    the parent folds them in, so ``repro.cache/*`` counters carry the true
    totals across every process.
    """

    BENCHES = ["bitcount", "basicmath"]

    @pytest.fixture(autouse=True)
    def clean_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_totals_fold_into_merged_snapshot(self, tmp_path):
        obs.enable()
        cache_mod.configure(tmp_path)

        run_table(TINY, "power", benchmarks=self.BENCHES, jobs=2)
        cold = obs.snapshot()["counters"]
        # Cold cache: every lookup missed and was then stored -- and the
        # parent's own stats object saw none of it (the workers did the
        # work), which is exactly why the merged counters exist.
        assert cold["repro.cache/misses"] > 0
        assert cold["repro.cache/puts"] == cold["repro.cache/misses"]
        assert cold.get("repro.cache/hits", 0) == 0
        local = cache_mod.get_cache().stats
        assert local.misses + local.hits < cold["repro.cache/misses"]

        run_table(TINY, "power", benchmarks=self.BENCHES, jobs=2)
        warm = obs.snapshot()["counters"]
        # Warm cache: no new misses or puts, and every artifact that
        # missed cold is now served from the cache (some more than once).
        assert warm["repro.cache/misses"] == cold["repro.cache/misses"]
        assert warm["repro.cache/puts"] == cold["repro.cache/puts"]
        assert warm["repro.cache/hits"] >= cold["repro.cache/misses"]
        cache_mod.disable()
