"""Unit tests for natural-loop detection (repro.cfg.loops)."""

import pytest

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import find_loops
from repro.errors import AnalysisError
from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, OpClass


def simple_loop_cfg() -> ControlFlowGraph:
    return ControlFlowGraph(
        ["entry", "head", "body", "out"],
        [("entry", "head"), ("head", "body"), ("body", "head"), ("head", "out")],
        entry="entry",
    )


def nested_loop_cfg() -> ControlFlowGraph:
    """outer: oh -> inner(ih<->ib) -> olatch -> oh."""
    return ControlFlowGraph(
        ["entry", "oh", "ih", "ib", "olatch", "out"],
        [
            ("entry", "oh"),
            ("oh", "ih"),
            ("ih", "ib"),
            ("ib", "ih"),
            ("ih", "olatch"),
            ("olatch", "oh"),
            ("oh", "out"),
        ],
        entry="entry",
    )


class TestFindLoops:
    def test_single_loop(self):
        forest = find_loops(simple_loop_cfg())
        assert len(forest) == 1
        loop = forest.by_header("head")
        assert loop.blocks == frozenset({"head", "body"})
        assert loop.back_edges == (("body", "head"),)
        assert loop.is_top_level
        assert loop.depth == 1

    def test_self_loop(self):
        cfg = ControlFlowGraph(
            ["entry", "l", "out"],
            [("entry", "l"), ("l", "l"), ("l", "out")],
            entry="entry",
        )
        forest = find_loops(cfg)
        loop = forest.by_header("l")
        assert loop.blocks == frozenset({"l"})
        assert loop.back_edges == (("l", "l"),)

    def test_nested_loops(self):
        forest = find_loops(nested_loop_cfg())
        assert len(forest) == 2
        outer = forest.by_header("oh")
        inner = forest.by_header("ih")
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.depth == 1
        assert inner.depth == 2
        assert inner.blocks < outer.blocks
        assert forest.top_level() == [outer]

    def test_innermost_containing(self):
        forest = find_loops(nested_loop_cfg())
        assert forest.innermost_containing("ib").header == "ih"
        assert forest.innermost_containing("olatch").header == "oh"
        assert forest.innermost_containing("entry") is None

    def test_top_level_containing(self):
        forest = find_loops(nested_loop_cfg())
        assert forest.top_level_containing("ib").header == "oh"
        assert forest.top_level_containing("out") is None

    def test_two_sibling_loops(self):
        cfg = ControlFlowGraph(
            ["e", "l1", "mid", "l2", "out"],
            [
                ("e", "l1"),
                ("l1", "l1"),
                ("l1", "mid"),
                ("mid", "l2"),
                ("l2", "l2"),
                ("l2", "out"),
            ],
            entry="e",
        )
        forest = find_loops(cfg)
        assert len(forest.top_level()) == 2
        assert {lp.header for lp in forest.top_level()} == {"l1", "l2"}

    def test_loops_sharing_header_merged(self):
        # Two back edges into the same header form one loop.
        cfg = ControlFlowGraph(
            ["e", "h", "a", "b", "out"],
            [
                ("e", "h"),
                ("h", "a"),
                ("h", "b"),
                ("a", "h"),
                ("b", "h"),
                ("h", "out"),
            ],
            entry="e",
        )
        forest = find_loops(cfg)
        assert len(forest) == 1
        loop = forest.by_header("h")
        assert loop.blocks == frozenset({"h", "a", "b"})
        assert len(loop.back_edges) == 2

    def test_irreducible_rejected(self):
        # Classic irreducible shape: two entries into a cycle.
        cfg = ControlFlowGraph(
            ["e", "a", "b"],
            [("e", "a"), ("e", "b"), ("a", "b"), ("b", "a")],
            entry="e",
        )
        with pytest.raises(AnalysisError, match="irreducible"):
            find_loops(cfg)

    def test_exits(self):
        cfg = simple_loop_cfg()
        forest = find_loops(cfg)
        loop = forest.by_header("head")
        assert loop.exits(cfg) == [("head", "out")]

    def test_accepts_precomputed_domtree(self):
        cfg = simple_loop_cfg()
        dom = compute_dominators(cfg)
        forest = find_loops(cfg, dom)
        assert len(forest) == 1

    def test_by_header_missing(self):
        forest = find_loops(simple_loop_cfg())
        with pytest.raises(AnalysisError):
            forest.by_header("nope")


class TestBuilderShapesProduceExpectedLoops:
    def test_counted_loop_is_self_loop(self):
        b = ProgramBuilder("p")
        b.block("init", [], next_block="L")
        b.counted_loop("L", [Instr(OpClass.IADD, dst="r1")], trips=10, exit="done")
        b.halt("done")
        program = b.build(entry="init")
        cfg = ControlFlowGraph.from_program(program)
        forest = find_loops(cfg)
        assert len(forest) == 1
        assert forest.by_header("L").blocks == frozenset({"L"})

    def test_branchy_loop_blocks(self):
        b = ProgramBuilder("p")
        b.block("init", [], next_block="L")
        b.branchy_loop(
            "L",
            paths=[(0.5, [Instr(OpClass.IADD, dst="r1")]), (0.5, [Instr(OpClass.IMUL, dst="r2")])],
            trips=10,
            exit="done",
        )
        b.halt("done")
        program = b.build(entry="init")
        forest = find_loops(ControlFlowGraph.from_program(program))
        loop = forest.by_header("L")
        assert loop.blocks == frozenset({"L", "L.p0", "L.p1", "L.latch"})

    def test_branchy_loop_three_paths(self):
        b = ProgramBuilder("p")
        b.block("init", [], next_block="L")
        b.branchy_loop(
            "L",
            paths=[
                (0.5, [Instr(OpClass.IADD, dst="r1")]),
                (0.3, [Instr(OpClass.IMUL, dst="r2")]),
                (0.2, [Instr(OpClass.IDIV, dst="r3")]),
            ],
            trips=10,
            exit="done",
        )
        b.halt("done")
        program = b.build(entry="init")
        forest = find_loops(ControlFlowGraph.from_program(program))
        loop = forest.by_header("L")
        assert {"L", "L.sel1", "L.p0", "L.p1", "L.p2", "L.latch"} == set(loop.blocks)

    def test_nested_loop_builder(self):
        b = ProgramBuilder("p")
        b.block("init", [], next_block="N")
        b.nested_loop(
            "N",
            inner_body=[Instr(OpClass.IADD, dst="r1")],
            inner_trips=50,
            outer_trips=10,
            exit="done",
        )
        b.halt("done")
        program = b.build(entry="init")
        forest = find_loops(ControlFlowGraph.from_program(program))
        assert len(forest) == 2
        outer = forest.by_header("N")
        inner = forest.by_header("N.inner")
        assert inner.parent is outer
        assert forest.top_level() == [outer]
