"""Tests for the experiment layer: Scale, report formatting, runner helpers,
and a smoke run of each fast experiment at a tiny scale."""

import numpy as np
import pytest

from repro.experiments.report import fmt, format_series, format_table
from repro.experiments.runner import (
    Scale,
    build_detector,
    capture_traces,
    monitor_traces,
    sweep_group_sizes,
)
from repro.experiments.tables_common import shellcode_burst
from repro.programs.workloads import sharp_loop_program


class TestScale:
    def test_presets_ordering(self):
        quick, default, paper = Scale.quick(), Scale.default(), Scale.paper()
        assert quick.train_runs < default.train_runs < paper.train_runs
        assert paper.clock_hz == 1.008e9

    def test_seed_namespaces_disjoint(self):
        scale = Scale.default()
        train = {scale.train_seed(k) for k in range(100)}
        monitor = {scale.monitor_seed(k) for k in range(100)}
        injected = {scale.injected_seed(k) for k in range(100)}
        assert not (train & monitor)
        assert not (train & injected)
        assert not (monitor & injected)


class TestReportFormatting:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(3) == "3"
        assert fmt(3.14159, 2) == "3.14"

    def test_format_table_alignment(self):
        text = format_table(
            "T", ["name", "value"], [["a", 1.5], ["longer", None]]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "-" in lines[-1]  # the None cell
        # Column alignment: all data rows equal width or less.
        assert "longer" in text

    def test_format_table_empty_rows(self):
        text = format_table("Empty", ["a", "b"], [])
        assert "Empty" in text

    def test_format_series_merges_x(self):
        text = format_series(
            "S", "x",
            {"one": [(1.0, 10.0), (2.0, 20.0)], "two": [(2.0, 99.0)]},
        )
        lines = text.splitlines()
        assert "one" in lines[2] and "two" in lines[2]
        # x=1 row: series 'two' missing -> "-"
        row1 = next(line for line in lines if line.startswith("1.00"))
        assert "-" in row1


class TestRunnerHelpers:
    @pytest.fixture(scope="class")
    def detector(self):
        scale = Scale(train_runs=3, clean_runs=1, injected_runs=1)
        return build_detector(sharp_loop_program(trips=6000), scale, source="em")

    def test_capture_and_monitor(self, detector):
        traces = capture_traces(detector, [1000, 1001])
        assert len(traces) == 2
        metrics = monitor_traces(detector, traces)
        assert metrics.n_groups > 0
        assert metrics.false_positive_rate < 20.0

    def test_sweep_group_sizes(self, detector):
        traces = capture_traces(detector, [1002])
        by_n = sweep_group_sizes(detector, traces, (8, 16))
        assert set(by_n) == {8, 16}
        for metrics in by_n.values():
            assert metrics.n_groups > 0


class TestShellcodeBurst:
    def test_instruction_budget(self):
        burst = shellcode_burst("loop:X")
        # The paper's empty shellcode executes ~476k instructions.
        assert burst.instr_count == pytest.approx(476_000, rel=0.02)
        assert burst.after_region == "loop:X"

    def test_contains_syscall(self):
        from repro.programs.ir import OpClass

        burst = shellcode_burst("loop:X")
        assert any(i.op is OpClass.SYSCALL for i in burst.body)


class TestExperimentSmoke:
    """Each fast experiment runs end to end at a tiny scale."""

    TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1,
                 group_sizes=(8, 16))

    def test_fig1(self):
        from repro.experiments import fig1_spectrum

        result = fig1_spectrum.run(self.TINY)
        assert result.left_offset == pytest.approx(
            result.iteration_freq_hz, rel=0.1
        )
        assert "Fclock" in fig1_spectrum.format(result)

    def test_fig3(self):
        from repro.experiments import fig3_buffer_size

        result = fig3_buffer_size.run(self.TINY)
        assert set(result.curves) == {
            "sharp peak", "several peaks", "diffuse peaks"
        }
        assert "Figure 3" in fig3_buffer_size.format(result)

    def test_fig9(self):
        from repro.experiments import fig9_confidence

        result = fig9_confidence.run(self.TINY)
        assert set(result.curves) == {0.95, 0.97, 0.99}
        assert "confidence" in fig9_confidence.format(result)

    def test_fig10(self):
        from repro.experiments import fig10_instruction_type

        result = fig10_instruction_type.run(self.TINY)
        assert len(result.curves) == 2
        assert "Figure 10" in fig10_instruction_type.format(result)

    def test_table_row(self):
        from repro.experiments.tables_common import evaluate_benchmark

        row = evaluate_benchmark("stringsearch", self.TINY, "em")
        assert row.name == "stringsearch"
        assert 0 <= row.coverage <= 100
        assert 0 <= row.accuracy <= 100
