"""Stream checkpointing: snapshot/restore bit-identity (DESIGN.md D19).

The load-bearing contract: feed N chunks, snapshot, restore into a
fresh monitor, feed M more -- every report, window count, status, and
the final summary are bit-identical to feeding N+M chunks straight
through. The hypothesis sweep drives that across random chunk sizes,
cut points, quality-gated configs, and several MiBench programs; the
serialization tests pin the self-verifying spill codec the serving
layer trusts its checkpoints to.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MonitoringError
from repro.experiments.runner import Scale, build_detector
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix
from repro.serialize import (
    load_snapshot,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.stream import StreamingMonitor, StreamSnapshot

TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16))

#: The snapshot sweep covers these programs end to end.
PROGRAMS = ("bitcount", "sha", "dijkstra")

_DETECTORS = {}
_SIGNALS = {}


def detector_for(name):
    if name not in _DETECTORS:
        _DETECTORS[name] = build_detector(BENCHMARKS[name](), TINY, source="em")
    return _DETECTORS[name]


def signal_for(name):
    if name not in _SIGNALS:
        detector = detector_for(name)
        _SIGNALS[name] = detector.source.capture(
            seed=TINY.monitor_seed(0)
        ).iq
    return _SIGNALS[name]


def model_for(name, gated):
    model = detector_for(name).model
    return model.with_quality_gating(True) if gated else model


def feed_all(monitor, chunks):
    """Feed chunks, collecting (reports, windows, status) per chunk."""
    seen = []
    for chunk in chunks:
        results = monitor.feed(chunk)
        seen.append((
            [r for res in results for r in res.reports],
            sum(len(res.times) for res in results),
            results[-1].status if results else None,
        ))
    return seen


def snapshot_roundtrip(monitor):
    """Snapshot -> bytes -> snapshot, as the serving spill path does."""
    return snapshot_from_bytes(snapshot_to_bytes(monitor.snapshot()))


class TestBitIdentity:
    """snapshot(); restore(); continue == never interrupted at all."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        program=st.sampled_from(PROGRAMS),
        chunk_samples=st.sampled_from((511, 997, 2048, 4099)),
        cut_fraction=st.floats(0.05, 0.95),
        gated=st.booleans(),
    )
    def test_resumed_stream_is_bit_identical(
        self, program, chunk_samples, cut_fraction, gated
    ):
        model = model_for(program, gated)
        signal = signal_for(program)
        chunks = list(signal.iter_chunks(chunk_samples))
        cut = max(1, min(len(chunks) - 1, int(len(chunks) * cut_fraction)))

        straight = StreamingMonitor(model, t0=signal.t0)
        interrupted = StreamingMonitor(model, t0=signal.t0)
        straight_seen = feed_all(straight, chunks)
        before = feed_all(interrupted, chunks[:cut])

        resumed = StreamingMonitor.restore(
            model, snapshot_roundtrip(interrupted)
        )
        after = feed_all(resumed, chunks[cut:])

        assert before + after == straight_seen
        resumed_summary = resumed.finish()
        straight_summary = straight.finish()
        assert resumed_summary == dataclasses.replace(
            straight_summary, session_id=resumed_summary.session_id
        )

    def test_snapshot_mid_anomaly_preserves_detection(self):
        # A snapshot taken while region state machines are mid-streak
        # must not reset counters: the resumed stream still detects, at
        # the same windows, with the same reports.
        detector = detector_for("bitcount")
        detector.source.simulator.set_loop_injection(
            INJECTION_LOOPS["bitcount"], injection_mix(4, 4), 1.0
        )
        try:
            signal = detector.source.capture(seed=TINY.injected_seed(0)).iq
        finally:
            detector.source.simulator.clear_injections()
        chunks = list(signal.iter_chunks(1009))
        straight = StreamingMonitor(detector.model, t0=signal.t0)
        straight_seen = feed_all(straight, chunks)
        assert any(reports for reports, _, _ in straight_seen), (
            "injection must be detectable for this test"
        )
        for cut in (len(chunks) // 3, 2 * len(chunks) // 3):
            interrupted = StreamingMonitor(detector.model, t0=signal.t0)
            before = feed_all(interrupted, chunks[:cut])
            resumed = StreamingMonitor.restore(
                detector.model, snapshot_roundtrip(interrupted)
            )
            after = feed_all(resumed, chunks[cut:])
            assert before + after == straight_seen

    def test_repeated_snapshots_compose(self):
        # Checkpoint cadence must not matter: snapshot/restore after
        # every chunk equals one uninterrupted run.
        model = detector_for("bitcount").model
        signal = signal_for("bitcount")
        chunks = list(signal.iter_chunks(4096))
        straight = StreamingMonitor(model, t0=signal.t0)
        straight_seen = feed_all(straight, chunks)
        monitor = StreamingMonitor(model, t0=signal.t0)
        seen = []
        for chunk in chunks:
            seen.extend(feed_all(monitor, [chunk]))
            monitor = StreamingMonitor.restore(
                model, snapshot_roundtrip(monitor)
            )
        assert seen == straight_seen
        final = monitor.finish()
        reference = straight.finish()
        assert final == dataclasses.replace(
            reference, session_id=final.session_id
        )


class TestRefusals:
    def test_finished_stream_refuses_snapshot(self):
        model = detector_for("bitcount").model
        monitor = StreamingMonitor(model)
        monitor.finish()
        with pytest.raises(MonitoringError, match="finished"):
            monitor.snapshot()

    def test_keep_history_refuses_snapshot(self):
        model = detector_for("bitcount").model
        monitor = StreamingMonitor(model, keep_history=True)
        with pytest.raises(MonitoringError, match="keep_history"):
            monitor.snapshot()

    def test_restore_refuses_wrong_model(self):
        signal = signal_for("bitcount")
        monitor = StreamingMonitor(detector_for("bitcount").model)
        feed_all(monitor, list(signal.iter_chunks(4096))[:2])
        snap = monitor.snapshot()
        with pytest.raises(MonitoringError):
            StreamingMonitor.restore(detector_for("sha").model, snap)

    def test_restore_refuses_gating_mismatch(self):
        # Same program, different pipeline config: the fingerprint check
        # refuses rather than scoring against the wrong thresholds.
        model = detector_for("bitcount").model
        monitor = StreamingMonitor(model)
        feed_all(monitor, list(signal_for("bitcount").iter_chunks(4096))[:2])
        snap = monitor.snapshot()
        with pytest.raises(MonitoringError, match="config fingerprint"):
            StreamingMonitor.restore(model.with_quality_gating(True), snap)

    def test_restore_refuses_non_snapshot_meta(self):
        model = detector_for("bitcount").model
        with pytest.raises(MonitoringError, match="not a stream snapshot"):
            StreamingMonitor.restore(
                model, StreamSnapshot(meta={"kind": "nope"}, arrays={})
            )


class TestSpillCodec:
    """The self-verifying blob the serving layer spills to disk."""

    def _snapshot(self):
        monitor = StreamingMonitor(detector_for("bitcount").model)
        feed_all(monitor, list(signal_for("bitcount").iter_chunks(4096))[:3])
        return monitor.snapshot()

    def test_file_roundtrip(self, tmp_path):
        snap = self._snapshot()
        path = tmp_path / "session.npz"
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.meta == snap.meta
        assert set(loaded.arrays) == set(snap.arrays)
        for name, arr in snap.arrays.items():
            assert np.array_equal(loaded.arrays[name], arr, equal_nan=True)

    def test_truncated_blob_is_refused(self):
        blob = snapshot_to_bytes(self._snapshot())
        for cut in (1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ConfigurationError):
                snapshot_from_bytes(blob[:cut])

    def test_flipped_bit_is_refused(self):
        snap = self._snapshot()
        blob = bytearray(snapshot_to_bytes(snap))
        # Flip a byte provably inside an array member's payload (locate
        # its raw bytes in the uncompressed zip) -- a flip in zip/npy
        # header padding would not corrupt content, and without the
        # digest a payload flip would load "fine".
        needle = snap.arrays["mon.history"].tobytes()
        pos = bytes(blob).find(needle)
        assert pos > 0
        blob[pos + len(needle) // 2] ^= 0x40
        with pytest.raises(ConfigurationError):
            snapshot_from_bytes(bytes(blob))

    def test_garbage_is_refused(self):
        with pytest.raises(ConfigurationError):
            snapshot_from_bytes(b"not a zip file at all")

    def test_missing_file_is_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_snapshot(tmp_path / "absent.npz")

    def test_digest_mismatch_is_refused(self):
        # A structurally valid npz whose recorded digest does not match
        # its content: exactly what a torn spill rewrite would produce.
        import io
        import json

        snap = self._snapshot()
        wrapper = {
            "format_version": 1,
            "kind": "stream-snapshot",
            "digest": "0" * 64,
            "state": snap.meta,
        }
        buffer = io.BytesIO()
        np.savez(buffer, meta=json.dumps(wrapper), **snap.arrays)
        with pytest.raises(ConfigurationError, match="integrity"):
            snapshot_from_bytes(buffer.getvalue())
