"""Tests for training, the monitor (Algorithm 1), and metrics, using
synthetic peak streams (no simulator needed, so these are fast and
directly probe the statistics)."""

import numpy as np
import pytest

from repro.core.metrics import aggregate_metrics, evaluate_run
from repro.core.model import EddieConfig, EddieModel, RegionProfile
from repro.core.monitor import Monitor
from repro.core.training import (
    Trainer,
    label_windows,
    select_group_size,
)
from repro.errors import TrainingError
from repro.types import RegionInterval, RegionTimeline, Signal

MAXP = 4


def peak_rows(freq_options, n, rng, width=MAXP, jitter=0.0):
    """n rows whose dim-0 peak is drawn from freq_options (+- jitter)."""
    rows = np.full((n, width), np.nan)
    choices = rng.choice(freq_options, size=n)
    rows[:, 0] = choices + rng.normal(0, jitter, n) if jitter else choices
    return rows


def small_config(**kw):
    defaults = dict(
        window_samples=64,
        overlap=0.5,
        max_peaks=MAXP,
        group_sizes=(8, 16, 32),
        min_mon_values=5,
    )
    defaults.update(kw)
    return EddieConfig(**defaults)


def model_two_regions(rng, freq_a=1000.0, freq_b=2000.0, n_ref=200):
    cfg = small_config()
    prof_a = RegionProfile("loop:A", peak_rows([freq_a], n_ref, rng), 1, 8)
    prof_b = RegionProfile("loop:B", peak_rows([freq_b], n_ref, rng), 1, 8)
    return EddieModel(
        "p",
        cfg,
        {"loop:A": prof_a, "loop:B": prof_b},
        {"loop:A": ["loop:B"], "loop:B": []},
        ["loop:A"],
        sample_rate=64e3,  # hop = 32 samples = 0.5 ms
    )


class TestMonitorSynthetic:
    def test_clean_stream_no_reports(self):
        rng = np.random.default_rng(0)
        model = model_two_regions(rng)
        stream = peak_rows([1000.0], 100, rng)
        times = np.arange(100) * model.hop_duration
        result = Monitor(model).run_peaks(stream, times)
        assert result.reports == []
        assert all(r == "loop:A" for r in result.tracked)

    def test_shifted_stream_reports_anomaly(self):
        rng = np.random.default_rng(1)
        model = model_two_regions(rng)
        clean = peak_rows([1000.0], 30, rng)
        bad = peak_rows([1500.0], 70, rng)  # matches neither region
        stream = np.vstack([clean, bad])
        times = np.arange(100) * model.hop_duration
        result = Monitor(model).run_peaks(stream, times)
        assert len(result.reports) >= 1
        first = result.reports[0]
        # Report should come shortly after the shift at t = 30 hops.
        assert first.time >= 30 * model.hop_duration
        assert first.time <= 60 * model.hop_duration

    def test_transition_to_successor_not_reported(self):
        rng = np.random.default_rng(2)
        model = model_two_regions(rng)
        stream = np.vstack(
            [peak_rows([1000.0], 40, rng), peak_rows([2000.0], 60, rng)]
        )
        times = np.arange(100) * model.hop_duration
        result = Monitor(model).run_peaks(stream, times)
        assert result.reports == []
        assert result.tracked[-1] == "loop:B"

    def test_no_transition_to_non_successor(self):
        rng = np.random.default_rng(3)
        model = model_two_regions(rng)
        # Start in A, then emit B-like peaks, then A again: B is a legal
        # successor but A is NOT a successor of B, so the monitor reports.
        stream = np.vstack(
            [
                peak_rows([1000.0], 40, rng),
                peak_rows([2000.0], 40, rng),
                peak_rows([1000.0], 40, rng),
            ]
        )
        times = np.arange(120) * model.hop_duration
        result = Monitor(model).run_peaks(stream, times)
        assert result.tracked[50] == "loop:B"
        assert len(result.reports) >= 1

    def test_isolated_deviant_sts_tolerated(self):
        """report_threshold=3 tolerates brief deviations (interrupts)."""
        rng = np.random.default_rng(4)
        model = model_two_regions(rng)
        stream = peak_rows([1000.0], 100, rng)
        stream[50, 0] = 1500.0  # single deviant STS
        times = np.arange(100) * model.hop_duration
        result = Monitor(model).run_peaks(stream, times)
        assert result.reports == []

    def test_untestable_region_switches_out(self):
        rng = np.random.default_rng(5)
        cfg = small_config()
        prof_a = RegionProfile(
            "loop:A", np.full((50, MAXP), np.nan), 0, 8
        )  # peak-less region
        prof_b = RegionProfile("loop:B", peak_rows([2000.0], 100, rng), 1, 8)
        model = EddieModel(
            "p", cfg,
            {"loop:A": prof_a, "loop:B": prof_b},
            {"loop:A": ["loop:B"], "loop:B": []},
            ["loop:A"], 64e3,
        )
        stream = np.vstack(
            [np.full((30, MAXP), np.nan), peak_rows([2000.0], 40, rng)]
        )
        times = np.arange(70) * model.hop_duration
        result = Monitor(model).run_peaks(stream, times)
        assert result.tracked[-1] == "loop:B"

    def test_history_reset_after_transition(self):
        rng = np.random.default_rng(6)
        model = model_two_regions(rng)
        monitor = Monitor(model)
        stream = np.vstack(
            [peak_rows([1000.0], 40, rng), peak_rows([2000.0], 15, rng)]
        )
        times = np.arange(55) * model.hop_duration
        monitor.run_peaks(stream, times)
        if monitor.current_region == "loop:B":
            # Right after the switch the stale history must not be used.
            assert monitor._filled < 40


class TestMetrics:
    def make_result(self, model, stream, times):
        return Monitor(model).run_peaks(stream, times)

    def test_clean_run_metrics(self):
        rng = np.random.default_rng(0)
        model = model_two_regions(rng)
        stream = peak_rows([1000.0], 100, rng)
        times = np.arange(100) * model.hop_duration
        result = self.make_result(model, stream, times)
        timeline = RegionTimeline(
            [RegionInterval("loop:A", 0.0, float(times[-1]) + 1.0)]
        )
        metrics = evaluate_run(
            result, timeline, [], window_duration=1e-3,
            hop_duration=model.hop_duration,
        )
        assert metrics.false_positive_rate == 0.0
        assert metrics.accuracy == 100.0
        assert metrics.coverage == 100.0
        assert metrics.detection_latency is None
        assert metrics.true_positive_rate is None

    def test_injected_run_metrics(self):
        rng = np.random.default_rng(1)
        model = model_two_regions(rng)
        hop = model.hop_duration
        stream = np.vstack(
            [peak_rows([1000.0], 30, rng), peak_rows([1500.0], 70, rng)]
        )
        times = np.arange(100) * hop
        result = self.make_result(model, stream, times)
        timeline = RegionTimeline([RegionInterval("loop:A", 0.0, 100 * hop)])
        inj_start = 30 * hop
        metrics = evaluate_run(
            result, timeline, [(inj_start, 100 * hop)],
            window_duration=1e-3, hop_duration=hop,
        )
        assert metrics.detected
        assert metrics.detection_latency is not None
        assert metrics.detection_latency < 40 * hop
        assert metrics.true_positive_rate == 100.0
        assert metrics.false_negative_rate == 0.0

    def test_missed_injection(self):
        rng = np.random.default_rng(2)
        model = model_two_regions(rng)
        hop = model.hop_duration
        stream = peak_rows([1000.0], 100, rng)  # looks perfectly clean
        times = np.arange(100) * hop
        result = self.make_result(model, stream, times)
        timeline = RegionTimeline([RegionInterval("loop:A", 0.0, 100 * hop)])
        metrics = evaluate_run(
            result, timeline, [(0.01, 0.02)],
            window_duration=1e-3, hop_duration=hop,
        )
        assert not metrics.detected
        assert metrics.false_negative_rate == 100.0

    def test_aggregate(self):
        rng = np.random.default_rng(3)
        model = model_two_regions(rng)
        hop = model.hop_duration
        stream = peak_rows([1000.0], 50, rng)
        times = np.arange(50) * hop
        result = self.make_result(model, stream, times)
        timeline = RegionTimeline([RegionInterval("loop:A", 0.0, 50 * hop)])
        m1 = evaluate_run(result, timeline, [], 1e-3, hop)
        agg = aggregate_metrics([m1, m1])
        assert agg.false_positive_rate == m1.false_positive_rate
        assert agg.n_groups == 2 * m1.n_groups

    def test_aggregate_empty(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])


class TestGroupSizeSelection:
    def test_larger_n_for_noisier_region(self):
        """Matches Figure 3: diffuse distributions need bigger groups."""
        rng = np.random.default_rng(0)
        cfg = small_config()
        sharp_ref = peak_rows([1000.0], 400, rng)
        sharp_val = peak_rows([1000.0], 400, rng)
        # Diffuse region: peak wanders among many values.
        options = [1000.0 + 50 * k for k in range(12)]
        diffuse_ref = peak_rows(options, 400, rng)
        diffuse_val = peak_rows(options, 400, rng)
        n_sharp = select_group_size(sharp_ref, sharp_val, 1, cfg)
        n_diffuse = select_group_size(diffuse_ref, diffuse_val, 1, cfg)
        assert n_sharp <= n_diffuse

    def test_zero_peaks_returns_min(self):
        cfg = small_config()
        ref = np.full((100, MAXP), np.nan)
        assert select_group_size(ref, ref, 0, cfg) == min(cfg.group_sizes)

    def test_short_validation_returns_min(self):
        rng = np.random.default_rng(1)
        cfg = small_config()
        ref = peak_rows([1000.0], 100, rng)
        val = peak_rows([1000.0], 4, rng)
        assert select_group_size(ref, val, 1, cfg) == min(cfg.group_sizes)


class TestTrainerValidation:
    def test_no_runs(self):
        trainer = Trainer("p", {}, [], small_config())
        with pytest.raises(TrainingError):
            trainer.build()

    def test_sample_rate_mismatch(self):
        trainer = Trainer("p", {}, [], small_config())
        rng = np.random.default_rng(0)
        sig1 = Signal(rng.normal(0, 1, 1000), 1e4)
        sig2 = Signal(rng.normal(0, 1, 1000), 2e4)
        timeline = RegionTimeline([RegionInterval("loop:A", 0.0, 0.1)])
        trainer.add_run(sig1, timeline)
        with pytest.raises(TrainingError):
            trainer.add_run(sig2, timeline)

    def test_label_windows(self):
        rng = np.random.default_rng(0)
        sig = Signal(rng.normal(0, 1, 64 * 20), 64e3)
        from repro.core.stft import stft

        seq = stft(sig, window_samples=64, overlap=0.5)
        timeline = RegionTimeline(
            [
                RegionInterval("a", 0.0, 0.005),
                RegionInterval("b", 0.005, 1.0),
            ]
        )
        labels = label_windows(seq, timeline)
        assert labels[0] == "a"
        assert labels[-1] == "b"
