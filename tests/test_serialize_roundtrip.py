"""Serialize round-trips across every MiBench program (satellite of D18).

The serving registry trusts :mod:`repro.serialize` to be lossless: a
published model must deserialize to the *same* content fingerprint the
publisher recorded, for every real trained model shape -- all ten
MiBench programs, with and without quality gating. The fingerprint is
the same canonical SHA-256 :mod:`repro.cache` uses, so "round-trips
losslessly" and "content addressing works" are one assertion.

Also pins the integrity check itself: saved metadata carries a config
fingerprint that :func:`load_model` verifies, refusing tampered
artifacts while still loading legacy files that predate the field.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import Scale, build_detector
from repro.programs.mibench import BENCHMARKS
from repro.serialize import (
    config_fingerprint,
    load_model,
    load_trace,
    save_model,
    save_trace,
)
from repro.serve.registry import model_fingerprint

TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16))

_DETECTORS = {}


def detector_for(name):
    if name not in _DETECTORS:
        _DETECTORS[name] = build_detector(BENCHMARKS[name](), TINY, source="em")
    return _DETECTORS[name]


def _rewrite_meta(path, mutate):
    """Round-trip the npz with its JSON metadata block mutated."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files}
    meta = json.loads(str(arrays.pop("meta")))
    mutate(meta)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, meta=json.dumps(meta), **arrays)


class TestModelRoundTrip:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_program_round_trips_to_same_fingerprint(
        self, tmp_path, name
    ):
        model = detector_for(name).model
        path = tmp_path / f"{name}.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert model_fingerprint(loaded) == model_fingerprint(model)
        assert loaded.config == model.config
        assert set(loaded.profiles) == set(model.profiles)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_quality_gated_config_round_trips(self, tmp_path, name):
        model = detector_for(name).model.with_quality_gating(True)
        path = tmp_path / f"{name}-gated.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.config.quality_gating is True
        assert loaded.config == model.config
        assert model_fingerprint(loaded) == model_fingerprint(model)
        # Gating flips the config fingerprint: the registry cannot
        # confuse a gated and an ungated publish of the same training.
        assert config_fingerprint(loaded.config) != config_fingerprint(
            detector_for(name).model.config
        )

    def test_tampered_config_fingerprint_is_refused(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(detector_for("bitcount").model, path)

        def tamper(meta):
            meta["config_fingerprint"] = "0" * 64

        _rewrite_meta(path, tamper)
        with pytest.raises(ConfigurationError, match="fingerprint mismatch"):
            load_model(path)

    def test_tampered_config_field_is_refused(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(detector_for("bitcount").model, path)

        def tamper(meta):
            # The stored fingerprint no longer matches the edited config.
            meta["config"]["alpha"] = meta["config"]["alpha"] / 2

        _rewrite_meta(path, tamper)
        with pytest.raises(ConfigurationError, match="fingerprint mismatch"):
            load_model(path)

    def test_legacy_file_without_fingerprint_still_loads(self, tmp_path):
        model = detector_for("bitcount").model
        path = tmp_path / "legacy.npz"
        save_model(model, path)

        def strip(meta):
            assert "config_fingerprint" in meta
            del meta["config_fingerprint"]

        _rewrite_meta(path, strip)
        loaded = load_model(path)
        assert model_fingerprint(loaded) == model_fingerprint(model)

    def test_saved_metadata_records_the_config_fingerprint(self, tmp_path):
        model = detector_for("bitcount").model
        path = tmp_path / "model.npz"
        save_model(model, path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
        assert meta["config_fingerprint"] == config_fingerprint(model.config)


class TestTraceRoundTrip:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_program_capture_round_trips_bit_exact(
        self, tmp_path, name
    ):
        detector = detector_for(name)
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        path = tmp_path / f"{name}.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.iq.samples, trace.iq.samples)
        assert loaded.iq.sample_rate == trace.iq.sample_rate
        assert loaded.iq.t0 == trace.iq.t0
        assert loaded.timeline == trace.timeline
        assert loaded.injected_spans == trace.injected_spans
        assert loaded.fault_spans == trace.fault_spans
