"""Tests for the content-addressed artifact cache (repro.cache).

Covers fingerprint stability (within and across processes), invalidation
when any input changes, lossless round-trips, LRU eviction under a size
bound, corrupted-entry recovery, and end-to-end equality of cached vs
uncached experiment results.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.arch.config import CoreConfig
from repro.arch.simulator import Simulator
from repro.cache import ArtifactCache, describe, fingerprint
from repro.core.model import EddieConfig
from repro.experiments.runner import Scale, build_detector, capture_traces
from repro.programs.workloads import injection_mix, sharp_loop_program

TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16))


@pytest.fixture(autouse=True)
def isolated_cache():
    """Each test starts with caching off and leaves it off."""
    cache_mod.configure(None)
    yield
    cache_mod.configure(None)


def _core(clock_hz=1e8):
    return CoreConfig.iot_inorder(clock_hz=clock_hz)


class TestFingerprint:
    def test_stable_within_process(self):
        # Two independent constructions of "the same" inputs -- including
        # the lambdas inside the program IR -- fingerprint identically.
        a = fingerprint("model", sharp_loop_program(trips=6000), _core())
        b = fingerprint("model", sharp_loop_program(trips=6000), _core())
        assert a == b

    def test_stable_across_processes(self):
        # repr() of a lambda contains a memory address; the fingerprint
        # must not. A fresh interpreter must reproduce the parent's key.
        script = (
            "from repro.cache import fingerprint\n"
            "from repro.programs.workloads import sharp_loop_program\n"
            "from repro.arch.config import CoreConfig\n"
            "print(fingerprint('model', sharp_loop_program(trips=6000),"
            " CoreConfig.iot_inorder(clock_hz=1e8)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert out == fingerprint(
            "model", sharp_loop_program(trips=6000), _core()
        )

    def test_program_change_invalidates(self):
        a = fingerprint(sharp_loop_program(trips=6000))
        b = fingerprint(sharp_loop_program(trips=7000))
        assert a != b

    def test_core_change_invalidates(self):
        a = fingerprint(_core(1e8))
        b = fingerprint(_core(2e8))
        assert a != b

    def test_config_change_invalidates(self):
        a = fingerprint(EddieConfig())
        b = fingerprint(EddieConfig(alpha=0.03))
        assert a != b

    def test_seed_change_invalidates(self):
        simulator = Simulator(sharp_loop_program(trips=6000), _core())
        assert fingerprint("trace", simulator, 0) != fingerprint(
            "trace", simulator, 1
        )

    def test_injection_state_invalidates(self):
        simulator = Simulator(sharp_loop_program(trips=6000), _core())
        clean = fingerprint("trace", simulator, 0)
        simulator.set_loop_injection("L", injection_mix(4, 4), 1.0)
        injected = fingerprint("trace", simulator, 0)
        simulator.clear_injections()
        cleared = fingerprint("trace", simulator, 0)
        assert clean != injected
        assert cleared == clean

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            describe(object())


class TestArtifactCache:
    @pytest.fixture(scope="class")
    def trained(self):
        return build_detector(
            sharp_loop_program(trips=6000), TINY, source="power"
        )

    def test_model_round_trip(self, tmp_path, trained):
        cache = ArtifactCache(tmp_path)
        cache.put_model("k", trained.model)
        loaded = cache.get_model("k")
        assert loaded is not None
        # The serialized form is lossless: the reloaded model is
        # indistinguishable from the original at the fingerprint level.
        assert fingerprint(loaded) == fingerprint(trained.model)
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_trace_round_trip(self, tmp_path):
        simulator = Simulator(sharp_loop_program(trips=6000), _core())
        result = simulator.run(seed=3)
        cache = ArtifactCache(tmp_path)
        cache.put_trace("t", result)
        loaded = cache.get_trace("t")
        np.testing.assert_array_equal(loaded.power.samples, result.power.samples)
        assert loaded.power.sample_rate == result.power.sample_rate
        assert loaded.injected_spans == result.injected_spans
        assert loaded.cycles == result.cycles
        assert [
            (iv.region, iv.t_start, iv.t_end) for iv in loaded.timeline
        ] == [(iv.region, iv.t_start, iv.t_end) for iv in result.timeline]

    def test_miss_then_hit(self, tmp_path, trained):
        cache = ArtifactCache(tmp_path)
        assert cache.get_model("absent") is None
        assert cache.stats.misses == 1
        cache.put_model("absent", trained.model)
        assert cache.get_model("absent") is not None
        assert cache.stats.hits == 1

    def test_corrupted_entry_recovers(self, tmp_path, trained):
        cache = ArtifactCache(tmp_path)
        cache.put_model("k", trained.model)
        path = cache._path("model", "k")
        path.write_bytes(b"this is not an npz file")
        assert cache.get_model("k") is None  # corrupted -> miss
        assert not path.exists()  # ... and dropped
        cache.put_model("k", trained.model)  # recompute path re-caches
        assert cache.get_model("k") is not None

    def test_lru_eviction_under_bound(self, tmp_path, trained):
        unbounded = ArtifactCache(tmp_path / "probe")
        unbounded.put_model("probe", trained.model)
        entry_size = unbounded.total_bytes()
        # Room for roughly two entries: the third put must evict the
        # least recently used one.
        cache = ArtifactCache(tmp_path / "lru", max_bytes=int(entry_size * 2.5))
        cache.put_model("a", trained.model)
        cache.put_model("b", trained.model)
        # Pin mtimes so LRU order does not depend on filesystem timestamp
        # resolution; the hit below re-touches "a" to the present.
        os.utime(cache._path("model", "a"), (1.0, 1.0))
        os.utime(cache._path("model", "b"), (2.0, 2.0))
        assert cache.get_model("a") is not None  # touch: b is now LRU
        cache.put_model("c", trained.model)
        assert cache.stats.evictions >= 1
        assert cache.total_bytes() <= cache.max_bytes
        assert cache.get_model("b") is None  # the untouched entry went

    def test_cached_results_identical_end_to_end(self, tmp_path):
        program_factory = lambda: sharp_loop_program(trips=6000)

        def run_once():
            detector = build_detector(program_factory(), TINY, source="power")
            simulator = detector.source
            simulator.set_loop_injection("L", injection_mix(4, 4), 1.0)
            traces = capture_traces(detector, [TINY.injected_seed(0)])
            simulator.clear_injections()
            report = detector.monitor(traces[0])
            return report.metrics

        uncached = run_once()
        cache_mod.configure(tmp_path / "cache")
        cold = run_once()
        stats = cache_mod.get_cache().stats
        assert stats.puts == 3  # one model + one trace + one STS stream
        warm = run_once()
        stats = cache_mod.get_cache().stats
        assert stats.hits == 3
        assert cold == uncached
        assert warm == uncached


class TestProcessWideConfiguration:
    def test_configure_and_disable(self, tmp_path):
        cache = cache_mod.configure(tmp_path)
        assert cache_mod.get_cache() is cache
        cache_mod.disable()
        assert cache_mod.get_cache() is None

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache_mod._configured = False  # force a re-read of the env
        cache = cache_mod.get_cache()
        assert cache is not None
        assert cache.dir == tmp_path
