"""Golden-trace regression suite: frozen run manifests.

Each test runs one experiment recipe at a tiny fixed-seed scale, builds
its run manifest (identity + results: config fingerprint, seeds, metric
snapshot, result structure), and diffs it against the frozen manifest in
``tests/golden/``. Timings and environment are ignored (they legitimately
vary); everything else must match exactly, so any change to the pipeline's
numerical behaviour -- simulator scheduling, STFT, peak extraction, K-S
decisions, metric aggregation -- shows up as a named, pinpointed diff
instead of a silent drift.

Regenerating the goldens is legitimate ONLY after an intentional
behaviour change, and the diff should be reviewed first::

    PYTHONPATH=src python -m pytest tests/test_golden_manifests.py \
        --update-golden

The recipes run serially with no artifact cache: golden runs must not
depend on ambient state.
"""

from pathlib import Path

import pytest

from repro import cache as cache_mod
from repro import obs
from repro.arch.config import CoreConfig
from repro.experiments import fig4_inorder_ooo, fig10_instruction_type
from repro.experiments.runner import Scale
from repro.experiments.tables_common import run_table

GOLDEN_DIR = Path(__file__).parent / "golden"

# Small enough for CI, big enough that training/monitoring/injection all
# execute. Seeds are Scale's defaults (base 0) -- never change them here
# without regenerating the goldens.
GOLDEN_SCALE = Scale(
    train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16)
)

_TABLE2_BENCHES = ["bitcount"]


def _run_table2():
    result = run_table(
        GOLDEN_SCALE,
        source="power",
        core_factory=lambda: CoreConfig.sim_ooo(clock_hz=GOLDEN_SCALE.clock_hz),
        benchmarks=_TABLE2_BENCHES,
        jobs=1,
    )
    return result, {"benchmarks": _TABLE2_BENCHES}


def _run_fig4():
    return fig4_inorder_ooo.run(GOLDEN_SCALE, jobs=1), None


def _run_fig10():
    return fig10_instruction_type.run(GOLDEN_SCALE, jobs=1), None


RECIPES = {
    "table2": _run_table2,
    "fig4": _run_fig4,
    "fig10": _run_fig10,
}


@pytest.fixture(autouse=True)
def isolated_observability():
    """Fresh, enabled observability per test; no ambient artifact cache."""
    cache_mod.configure(None)
    obs.enable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    cache_mod.configure(None)


@pytest.mark.golden
@pytest.mark.parametrize("name", sorted(RECIPES))
def test_golden_manifest(name, request):
    result, extra_identity = RECIPES[name]()
    manifest = obs.build_manifest(
        name,
        scale=GOLDEN_SCALE,
        result=result,
        jobs=1,
        scale_name="golden",
        extra_identity=extra_identity,
    )
    path = obs.manifest_path(GOLDEN_DIR, name, "golden")
    if request.config.getoption("--update-golden"):
        obs.write_manifest(manifest, path)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden manifest {path}; generate it with "
        f"pytest {__file__} --update-golden"
    )
    golden = obs.load_manifest(path)
    diffs = obs.diff_manifests(golden, manifest)
    assert not diffs, (
        f"{name} drifted from its golden manifest "
        f"({len(diffs)} difference(s)):\n" + obs.format_diff(diffs)
    )
