"""Unit/integration tests for the whole-program simulator."""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.simulator import BurstSpec, SimulationResult, Simulator, simulate
from repro.errors import SimulationError
from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, OpClass


def adds(n):
    return [Instr(OpClass.IADD, dst=f"r{i % 8}") for i in range(n)]


def two_loop_program(trips1=2000, trips2=1500):
    b = ProgramBuilder("two")
    b.block("init", adds(10), next_block="L1")
    b.counted_loop("L1", adds(40), trips=trips1, exit="mid")
    b.block("mid", adds(20), next_block="L2")
    b.counted_loop("L2", adds(80), trips=trips2, exit="done")
    b.halt("done", adds(5))
    return b.build(entry="init")


CORE = CoreConfig(clock_hz=1e8)


class TestSimulatorBasics:
    def test_runs_and_reports(self):
        result = simulate(two_loop_program(), CORE, seed=0)
        assert isinstance(result, SimulationResult)
        assert result.cycles > 0
        assert result.instr_count > 2000 * 41 + 1500 * 81
        assert len(result.power) == result.cycles // CORE.cycles_per_sample
        assert result.power.sample_rate == CORE.sample_rate

    def test_timeline_structure(self):
        result = simulate(two_loop_program(), CORE, seed=0)
        regions = [iv.region for iv in result.timeline]
        assert regions == [
            "inter:ENTRY->loop:L1",
            "loop:L1",
            "inter:loop:L1->loop:L2",
            "loop:L2",
            "inter:loop:L2->EXIT",
        ]

    def test_timeline_contiguous(self):
        result = simulate(two_loop_program(), CORE, seed=0)
        for prev, cur in zip(result.timeline.intervals, result.timeline.intervals[1:]):
            assert cur.t_start == pytest.approx(prev.t_end)
        assert result.timeline.t_end == pytest.approx(result.power.duration, rel=0.01)

    def test_deterministic_per_seed(self):
        sim = Simulator(two_loop_program(), CORE)
        a = sim.run(seed=3)
        b = sim.run(seed=3)
        assert np.array_equal(a.power.samples, b.power.samples)
        assert a.cycles == b.cycles

    def test_different_seeds_differ(self):
        b = ProgramBuilder("p")
        b.param("n", "int", 1000, 4000)
        b.block("init", [], next_block="L")
        b.counted_loop("L", adds(30), trips="n", exit="done")
        b.halt("done")
        program = b.build(entry="init")
        sim = Simulator(program, CORE)
        assert sim.run(seed=0).cycles != sim.run(seed=1).cycles

    def test_explicit_inputs_override_sampling(self):
        b = ProgramBuilder("p")
        b.param("n", "int", 1000, 4000)
        b.block("init", [], next_block="L")
        b.counted_loop("L", adds(30), trips="n", exit="done")
        b.halt("done")
        program = b.build(entry="init")
        sim = Simulator(program, CORE)
        r1 = sim.run(seed=0, inputs={"n": 2000})
        r2 = sim.run(seed=1, inputs={"n": 2000})
        assert r1.inputs == r2.inputs == {"n": 2000}

    def test_loopless_program(self):
        b = ProgramBuilder("flat")
        b.block("a", adds(30), next_block="b")
        b.halt("b", adds(10))
        result = simulate(b.build(entry="a"), CORE, seed=0)
        assert [iv.region for iv in result.timeline] == ["inter:ENTRY->EXIT"]
        assert result.instr_count == 41  # 30 + jump + 10

    def test_branch_outside_loops(self):
        b = ProgramBuilder("br")
        b.branch_block("choose", adds(5), taken="a", not_taken="b", taken_prob=0.5)
        b.block("a", adds(10), next_block="end")
        b.block("b", adds(20), next_block="end")
        b.halt("end")
        program = b.build(entry="choose")
        counts = {simulate(program, CORE, seed=s).instr_count for s in range(20)}
        assert len(counts) == 2  # both arms observed


class TestInjections:
    def test_loop_injection_marks_span(self):
        sim = Simulator(two_loop_program(), CORE)
        sim.set_loop_injection("L1", adds(8), contamination=1.0)
        result = sim.run(seed=0)
        assert result.injected_instr_count == 2000 * 8
        assert len(result.injected_spans) == 1
        span = result.injected_spans[0]
        l1 = next(iv for iv in result.timeline if iv.region == "loop:L1")
        assert span == pytest.approx((l1.t_start, l1.t_end))

    def test_loop_injection_rejects_non_header(self):
        sim = Simulator(two_loop_program(), CORE)
        with pytest.raises(SimulationError):
            sim.set_loop_injection("mid", adds(8))

    def test_loop_injection_rejects_bad_contamination(self):
        sim = Simulator(two_loop_program(), CORE)
        with pytest.raises(SimulationError):
            sim.set_loop_injection("L1", adds(8), contamination=1.5)

    def test_burst_injection(self):
        sim = Simulator(two_loop_program(), CORE)
        burst = BurstSpec(
            after_region="loop:L1", body=tuple(adds(50)), iterations=200
        )
        sim.add_burst(burst)
        result = sim.run(seed=0)
        assert result.injected_instr_count == 50 * 200
        assert len(result.injected_spans) == 1
        # The burst lies inside the inter-loop stretch between L1 and L2.
        inter = next(
            iv for iv in result.timeline if iv.region == "inter:loop:L1->loop:L2"
        )
        start, end = result.injected_spans[0]
        assert inter.t_start <= start < end <= inter.t_end + 1e-9

    def test_burst_lengthens_run(self):
        clean = simulate(two_loop_program(), CORE, seed=0)
        sim = Simulator(two_loop_program(), CORE)
        sim.add_burst(
            BurstSpec(after_region="loop:L1", body=tuple(adds(50)), iterations=2000)
        )
        injected = sim.run(seed=0)
        assert injected.cycles > clean.cycles

    def test_burst_unknown_region_rejected(self):
        sim = Simulator(two_loop_program(), CORE)
        with pytest.raises(SimulationError):
            sim.add_burst(BurstSpec(after_region="loop:nope", body=tuple(adds(5))))

    def test_clear_injections(self):
        sim = Simulator(two_loop_program(), CORE)
        sim.set_loop_injection("L1", adds(8))
        sim.add_burst(
            BurstSpec(after_region="loop:L1", body=tuple(adds(5)), iterations=10)
        )
        sim.clear_injections()
        result = sim.run(seed=0)
        assert result.injected_instr_count == 0
        assert result.injected_spans == []

    def test_contains_injection_query(self):
        sim = Simulator(two_loop_program(), CORE)
        sim.set_loop_injection("L2", adds(8), contamination=1.0)
        result = sim.run(seed=0)
        l2 = next(iv for iv in result.timeline if iv.region == "loop:L2")
        mid = (l2.t_start + l2.t_end) / 2
        assert result.contains_injection(mid, mid + 1e-6)
        assert not result.contains_injection(0.0, l2.t_start - 1e-9)

    def test_burst_occurrence_selects_dynamic_instance(self):
        # L1 runs twice (program loops back); inject only after the 2nd exit.
        b = ProgramBuilder("twice")
        b.block("init", [], next_block="L1")
        b.counted_loop("L1", adds(30), trips=500, exit="sel")
        b.branch_block("sel", adds(2), taken="L1", not_taken="done", taken_prob=0.5)
        b.halt("done")
        program = b.build(entry="init")
        # NOTE: sel branching back to L1 makes L1's header a shared header;
        # this forms an outer loop, so use a simpler construction: run the
        # occurrence check on a program where L1 appears once but executes
        # once -- occurrence 1 never fires.
        sim = Simulator(two_loop_program(), CORE)
        sim.add_burst(
            BurstSpec(after_region="loop:L1", body=tuple(adds(5)), iterations=10,
                      occurrence=1)
        )
        result = sim.run(seed=0)
        assert result.injected_instr_count == 0


class TestMergeSpans:
    def test_merge(self):
        from repro.arch.simulator import _merge_spans

        spans = [(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)]
        assert _merge_spans(spans) == [(0.0, 2.0), (3.0, 4.0)]

    def test_empty(self):
        from repro.arch.simulator import _merge_spans

        assert _merge_spans([]) == []
