"""Unit tests for repro.cfg.graph and repro.cfg.dominators."""

import pytest

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ControlFlowGraph
from repro.errors import AnalysisError
from repro.programs.builder import ProgramBuilder


def diamond() -> ControlFlowGraph:
    """entry -> a|b -> join."""
    return ControlFlowGraph(
        nodes=["entry", "a", "b", "join"],
        edges=[("entry", "a"), ("entry", "b"), ("a", "join"), ("b", "join")],
        entry="entry",
    )


class TestControlFlowGraph:
    def test_unknown_entry_rejected(self):
        with pytest.raises(AnalysisError):
            ControlFlowGraph(["a"], [], entry="b")

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(AnalysisError):
            ControlFlowGraph(["a"], [("a", "ghost")], entry="a")

    def test_duplicate_edges_collapsed(self):
        cfg = ControlFlowGraph(["a", "b"], [("a", "b"), ("a", "b")], entry="a")
        assert cfg.succs["a"] == ["b"]
        assert cfg.preds["b"] == ["a"]

    def test_preds_and_succs(self):
        cfg = diamond()
        assert set(cfg.succs["entry"]) == {"a", "b"}
        assert set(cfg.preds["join"]) == {"a", "b"}

    def test_reachable_from_entry(self):
        cfg = ControlFlowGraph(
            ["a", "b", "island"], [("a", "b")], entry="a"
        )
        assert cfg.reachable_from_entry() == {"a", "b"}

    def test_from_program_drops_unreachable(self):
        b = ProgramBuilder("p")
        b.block("main", [], next_block="done")
        b.halt("done")
        b.halt("dead")  # never referenced
        cfg = ControlFlowGraph.from_program(b.build(entry="main"))
        assert set(cfg.nodes) == {"main", "done"}

    def test_reverse_postorder_entry_first(self):
        order = diamond().reverse_postorder()
        assert order[0] == "entry"
        assert order[-1] == "join"
        assert set(order) == {"entry", "a", "b", "join"}

    def test_rpo_respects_topology_on_dag(self):
        cfg = ControlFlowGraph(
            ["a", "b", "c", "d"],
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")],
            entry="a",
        )
        order = cfg.reverse_postorder()
        pos = {n: i for i, n in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["c"] < pos["d"]

    def test_rpo_on_deep_chain_no_recursion_error(self):
        n = 5000
        names = [f"n{i}" for i in range(n)]
        edges = [(names[i], names[i + 1]) for i in range(n - 1)]
        cfg = ControlFlowGraph(names, edges, entry=names[0])
        order = cfg.reverse_postorder()
        assert order == names


class TestDominators:
    def test_diamond(self):
        cfg = diamond()
        dom = compute_dominators(cfg)
        assert dom.idom("entry") is None
        assert dom.idom("a") == "entry"
        assert dom.idom("b") == "entry"
        assert dom.idom("join") == "entry"

    def test_chain(self):
        cfg = ControlFlowGraph(
            ["a", "b", "c"], [("a", "b"), ("b", "c")], entry="a"
        )
        dom = compute_dominators(cfg)
        assert dom.idom("c") == "b"
        assert dom.dominates("a", "c")
        assert dom.strictly_dominates("a", "c")
        assert not dom.strictly_dominates("c", "c")

    def test_loop_header_dominates_latch(self):
        cfg = ControlFlowGraph(
            ["entry", "head", "body", "out"],
            [("entry", "head"), ("head", "body"), ("body", "head"), ("head", "out")],
            entry="entry",
        )
        dom = compute_dominators(cfg)
        assert dom.dominates("head", "body")
        assert dom.idom("body") == "head"
        assert dom.idom("out") == "head"

    def test_dominators_of_lists_chain_to_entry(self):
        cfg = diamond()
        dom = compute_dominators(cfg)
        assert dom.dominators_of("join") == ["join", "entry"]

    def test_children(self):
        cfg = diamond()
        dom = compute_dominators(cfg)
        assert dom.children("entry") == {"a", "b", "join"}

    def test_branch_does_not_dominate_join(self):
        cfg = diamond()
        dom = compute_dominators(cfg)
        assert not dom.dominates("a", "join")
        assert not dom.dominates("b", "join")
