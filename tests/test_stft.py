"""Unit tests for repro.core.stft."""

import numpy as np
import pytest
import scipy.signal

from repro.core.stft import (
    QF_CLIPPED,
    QF_DEAD,
    QF_ENERGY_OUTLIER,
    QF_GAPPED,
    SpectrumSequence,
    stft,
    stft_seconds,
    window_quality,
)
from repro.errors import SignalError
from repro.types import Signal


def tone(freq, fs, n, complex_=False):
    t = np.arange(n) / fs
    if complex_:
        return Signal(np.exp(2j * np.pi * freq * t), fs)
    return Signal(np.sin(2 * np.pi * freq * t), fs)


class TestStftBasics:
    def test_window_count(self):
        sig = tone(1e3, 1e5, 4096)
        seq = stft(sig, window_samples=1024, overlap=0.5)
        assert len(seq) == 1 + (4096 - 1024) // 512
        assert seq.power.shape == (len(seq), seq.n_bins)

    def test_real_input_one_sided(self):
        sig = tone(1e3, 1e5, 2048)
        seq = stft(sig, window_samples=512)
        assert seq.freqs[0] == 0.0
        assert seq.freqs[-1] == pytest.approx(5e4)
        assert np.all(np.diff(seq.freqs) > 0)

    def test_complex_input_folded_one_sided(self):
        sig = tone(1e3, 1e5, 2048, complex_=True)
        seq = stft(sig, window_samples=512)
        assert seq.freqs[0] == 0.0
        assert np.all(seq.freqs >= 0)

    def test_complex_unfolded_two_sided(self):
        sig = tone(1e3, 1e5, 2048, complex_=True)
        seq = stft(sig, window_samples=512, fold=False)
        assert seq.freqs[0] < 0
        assert np.all(np.diff(seq.freqs) > 0)

    def test_tone_peak_location_real(self):
        fs, f0 = 1e5, 12.5e3
        seq = stft(tone(f0, fs, 8192), window_samples=1024, detrend=True)
        for row in seq.power:
            assert seq.freqs[np.argmax(row)] == pytest.approx(f0, abs=fs / 1024)

    def test_tone_peak_location_complex_negative_freq_folds(self):
        fs, f0 = 1e5, -12.5e3
        seq = stft(tone(f0, fs, 8192, complex_=True), window_samples=1024)
        for row in seq.power:
            assert seq.freqs[np.argmax(row)] == pytest.approx(abs(f0), abs=fs / 1024)

    def test_detrend_removes_dc(self):
        fs = 1e5
        sig = Signal(5.0 + np.sin(2 * np.pi * 1e3 * np.arange(4096) / fs), fs)
        seq = stft(sig, window_samples=1024, detrend=True)
        dc = seq.power[:, 0]
        peak = seq.power.max(axis=1)
        assert np.all(dc < 0.01 * peak)

    def test_times_are_window_centers(self):
        fs = 1e5
        sig = tone(1e3, fs, 4096)
        seq = stft(sig, window_samples=1024, overlap=0.5)
        assert seq.times[0] == pytest.approx(512 / fs)
        assert seq.times[1] - seq.times[0] == pytest.approx(512 / fs)
        assert seq.hop_duration == pytest.approx(512 / fs)
        assert seq.window_duration == pytest.approx(1024 / fs)

    def test_window_span(self):
        seq = stft(tone(1e3, 1e5, 4096), window_samples=1024)
        start, end = seq.window_span(0)
        assert end - start == pytest.approx(seq.window_duration)

    def test_t0_offsets_times(self):
        fs = 1e5
        sig = Signal(np.sin(np.arange(2048)), fs, t0=1.5)
        seq = stft(sig, window_samples=512)
        assert seq.times[0] == pytest.approx(1.5 + 256 / fs)

    def test_slice(self):
        seq = stft(tone(1e3, 1e5, 8192), window_samples=512)
        part = seq.slice(2, 5)
        assert len(part) == 3
        assert part.times[0] == seq.times[2]
        assert np.array_equal(part.power, seq.power[2:5])

    def test_stft_seconds(self):
        fs = 1e6
        sig = tone(1e4, fs, 200_000)
        seq = stft_seconds(sig, window_seconds=1e-3)
        assert seq.window_duration == pytest.approx(1e-3)

    def test_energy_agrees_with_scipy(self):
        """Spectral content must match scipy's STFT on the same params."""
        fs, f0 = 1e5, 7.8e3
        sig = tone(f0, fs, 8192)
        ours = stft(sig, window_samples=1024, overlap=0.5, detrend=False)
        _, _, theirs = scipy.signal.stft(
            sig.samples, fs, window="hann", nperseg=1024, noverlap=512,
            boundary=None, padded=False, detrend=False,
        )
        theirs_power = np.abs(theirs.T) ** 2
        # Same number of windows and the same argmax bin everywhere.
        assert theirs_power.shape[0] == len(ours)
        for ours_row, theirs_row in zip(ours.power, theirs_power):
            assert np.argmax(ours_row) == np.argmax(theirs_row)


class TestStftValidation:
    def test_too_short_signal(self):
        with pytest.raises(SignalError):
            stft(tone(1e3, 1e5, 100), window_samples=1024)

    def test_bad_window_size(self):
        with pytest.raises(SignalError):
            stft(tone(1e3, 1e5, 2048), window_samples=4)

    def test_bad_overlap(self):
        with pytest.raises(SignalError):
            stft(tone(1e3, 1e5, 2048), window_samples=512, overlap=1.0)

    def test_unknown_taper(self):
        with pytest.raises(SignalError):
            stft(tone(1e3, 1e5, 2048), window_samples=512, window="kaiser")

    def test_rect_and_hamming_windows(self):
        sig = tone(1e3, 1e5, 2048)
        for name in ("rect", "hamming"):
            seq = stft(sig, window_samples=512, window=name)
            assert len(seq) > 0


def noisy_tone(n=8192, fs=1e6, seed=0, amp=0.5):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / fs
    samples = amp * np.exp(2j * np.pi * 5e4 * t)
    samples = samples + 0.01 * (
        rng.standard_normal(n) + 1j * rng.standard_normal(n)
    )
    return Signal(samples, fs)


class TestWindowQuality:
    WIN = 256

    def quality(self, sig, **kwargs):
        return window_quality(sig, self.WIN, overlap=0.5, **kwargs)

    def window_of(self, index):
        """Window index containing sample ``index`` (hop = WIN/2)."""
        return int(index // (self.WIN // 2))

    def test_clean_capture_unflagged(self):
        q = self.quality(noisy_tone())
        assert q.dtype == np.uint8
        assert np.all(q == 0)

    def test_alignment_with_stft(self):
        sig = noisy_tone()
        assert len(self.quality(sig)) == len(stft(sig, self.WIN, 0.5))

    def test_zero_gap_flags_gapped_and_dead(self):
        sig = noisy_tone()
        sig.samples[3000:3600] = 0
        q = self.quality(sig)
        hit = self.window_of(3100)
        assert q[hit] & QF_GAPPED
        # Windows fully inside the gap are dead as well.
        assert q[self.window_of(3200)] & QF_DEAD
        assert not q[0]
        assert not q[-1]

    def test_short_gap_below_threshold_ignored(self):
        sig = noisy_tone()
        sig.samples[3000:3008] = 0  # 8 < gap_samples=16
        assert np.all(self.quality(sig) == 0)

    def test_clipping_flags_clipped(self):
        sig = noisy_tone()
        seg = slice(4000, 4200)
        sig.samples[seg] = 2.0 * np.sign(sig.samples[seg].real) + 2.0j * (
            np.sign(sig.samples[seg].imag)
        )
        q = self.quality(sig)
        assert q[self.window_of(4100)] & QF_CLIPPED
        assert not q[0]

    def test_impulse_flags_energy_outlier(self):
        rng = np.random.default_rng(3)
        sig = noisy_tone()
        seg = slice(5000, 5256)
        sig.samples[seg] += 0.9 * (
            rng.standard_normal(256) + 1j * rng.standard_normal(256)
        )
        q = self.quality(sig, energy_outlier_mads=6.0)
        assert q[self.window_of(5100)] & QF_ENERGY_OUTLIER
        assert not q[0]

    def test_too_short_signal_raises(self):
        with pytest.raises(SignalError):
            window_quality(noisy_tone(n=100), 256)

    def test_bad_overlap_raises(self):
        with pytest.raises(SignalError):
            window_quality(noisy_tone(), 256, overlap=1.5)
