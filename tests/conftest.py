"""Shared pytest configuration.

``--update-golden`` regenerates the frozen run manifests under
``tests/golden/`` instead of comparing against them (see
``tests/test_golden_manifests.py`` for when that is legitimate).

:func:`shared_tiny_detector` is the session-wide trained-model cache
the serving suites draw from: training even a TINY-scale detector costs
seconds, and the serve / resilience / sharded modules all need the same
few MiBench programs, so each is trained exactly once per test session
instead of once per module.
"""

_TINY_DETECTORS = {}


def tiny_scale():
    """The shared TINY training scale of the serving test suites."""
    from repro.experiments.runner import Scale

    return Scale(
        train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16)
    )


def shared_tiny_detector(name):
    """One TINY-scale trained detector per program per test session."""
    if name not in _TINY_DETECTORS:
        from repro.experiments.runner import build_detector
        from repro.programs.mibench import BENCHMARKS

        _TINY_DETECTORS[name] = build_detector(
            BENCHMARKS[name](), tiny_scale(), source="em"
        )
    return _TINY_DETECTORS[name]


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json from the current pipeline "
             "instead of asserting against the frozen manifests",
    )
