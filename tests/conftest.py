"""Shared pytest configuration.

``--update-golden`` regenerates the frozen run manifests under
``tests/golden/`` instead of comparing against them (see
``tests/test_golden_manifests.py`` for when that is legitimate).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json from the current pipeline "
             "instead of asserting against the frozen manifests",
    )
