"""Unit tests for the EM emanation substrate (repro.em)."""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.em.channel import ChannelModel, Interferer
from repro.em.modulation import am_modulate, normalize_activity
from repro.em.receiver import OverflowCounter, Receiver, saturate
from repro.em.scenario import EmScenario
from repro.errors import SignalError
from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, OpClass
from repro.types import Signal


def tone_power(freq, fs, n, amp=1.0, offset=2.0):
    """A real power waveform oscillating at `freq`."""
    t = np.arange(n) / fs
    return Signal(offset + amp * np.sin(2 * np.pi * freq * t), fs)


def spectrum(sig: Signal):
    win = np.hanning(len(sig.samples))
    spec = np.fft.fftshift(np.fft.fft(sig.samples * win))
    freqs = np.fft.fftshift(np.fft.fftfreq(len(sig.samples), 1 / sig.sample_rate))
    return freqs, np.abs(spec) ** 2


class TestNormalizeActivity:
    def test_zero_mean_bounded(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        norm = normalize_activity(x)
        assert abs(norm.mean()) < 0.2  # clipping can shift the mean slightly
        assert np.abs(norm).max() <= 1.0
        assert np.abs(norm).max() > 0.3

    def test_constant_input(self):
        norm = normalize_activity(np.full(10, 5.0))
        assert np.all(norm == 0)

    def test_outlier_robustness(self):
        """A single huge spike must not squash ordinary modulation."""
        x = np.concatenate([np.sin(np.linspace(0, 60, 3000)), [500.0]])
        norm = normalize_activity(x)
        # Ordinary samples retain near-full modulation depth.
        assert np.abs(norm[:3000]).max() > 0.1
        # The spike saturates at the clip limit instead of dominating.
        assert norm[-1] == 1.0


class TestAmModulate:
    def test_sidebands_at_activity_frequency(self):
        """Reproduces the geometry of the paper's Figure 1: carrier plus
        sidebands at +/- the loop frequency."""
        fs, f_loop = 1e6, 50e3
        power = tone_power(f_loop, fs, 4096)
        iq = am_modulate(power, mod_depth=0.5)
        freqs, spec = spectrum(iq)
        # Carrier at 0, sidebands at +/- f_loop.
        for target in (0.0, f_loop, -f_loop):
            bin_idx = np.argmin(np.abs(freqs - target))
            local = spec[max(0, bin_idx - 2): bin_idx + 3].max()
            assert local > 1e3 * np.median(spec)

    def test_carrier_offset_moves_carrier(self):
        fs = 1e6
        power = tone_power(50e3, fs, 4096)
        iq = am_modulate(power, carrier_offset_hz=100e3)
        freqs, spec = spectrum(iq)
        peak = freqs[np.argmax(spec)]
        assert peak == pytest.approx(100e3, abs=fs / 4096 * 2)

    def test_rejects_bad_depth(self):
        power = tone_power(1e3, 1e5, 128)
        with pytest.raises(SignalError):
            am_modulate(power, mod_depth=0.0)
        with pytest.raises(SignalError):
            am_modulate(power, mod_depth=1.5)

    def test_rejects_complex_power(self):
        sig = Signal(np.ones(16, dtype=complex), 1e5)
        with pytest.raises(SignalError):
            am_modulate(sig)

    def test_output_is_complex_same_rate(self):
        power = tone_power(1e3, 1e5, 256)
        iq = am_modulate(power)
        assert np.iscomplexobj(iq.samples)
        assert iq.sample_rate == power.sample_rate
        assert len(iq) == len(power)


class TestChannelModel:
    def test_noiseless_preserves_signal(self):
        sig = Signal(np.ones(128, dtype=complex), 1e6)
        out = ChannelModel.noiseless().apply(sig, np.random.default_rng(0))
        assert np.allclose(out.samples, sig.samples)

    def test_snr_is_respected(self):
        rng = np.random.default_rng(0)
        n = 200_000
        sig = Signal(np.ones(n, dtype=complex), 1e6)
        channel = ChannelModel(snr_db=10.0)
        out = channel.apply(sig, rng)
        noise = out.samples - sig.samples
        measured_snr = 10 * np.log10(1.0 / np.mean(np.abs(noise) ** 2))
        assert measured_snr == pytest.approx(10.0, abs=0.2)

    def test_coupling_gain(self):
        sig = Signal(np.ones(64, dtype=complex), 1e6)
        out = ChannelModel(coupling_gain=0.5, snr_db=None).apply(
            sig, np.random.default_rng(0)
        )
        assert np.allclose(np.abs(out.samples), 0.5)

    def test_interferer_adds_tone(self):
        rng = np.random.default_rng(1)
        sig = Signal(np.zeros(4096, dtype=complex), 1e6)
        channel = ChannelModel(
            snr_db=None, interferers=(Interferer(freq_hz=200e3, amplitude=1.0),)
        )
        out = channel.apply(sig, rng)
        freqs, spec = spectrum(out)
        assert freqs[np.argmax(spec)] == pytest.approx(200e3, abs=500)

    def test_invalid_gain(self):
        with pytest.raises(SignalError):
            ChannelModel(coupling_gain=0.0)


class TestReceiver:
    def test_identity_by_default(self):
        sig = Signal(np.arange(16, dtype=complex), 1e6)
        out = Receiver().capture(sig)
        assert np.allclose(out.samples, sig.samples)

    def test_decimation_reduces_rate(self):
        sig = Signal(np.ones(1000, dtype=complex), 1e6)
        out = Receiver(decimation=4).capture(sig)
        assert out.sample_rate == 2.5e5
        assert len(out) == 250

    def test_decimation_suppresses_out_of_band(self):
        fs = 1e6
        t = np.arange(8192) / fs
        # Tone just below the post-decimation Nyquist survives; one far
        # above it is attenuated by the anti-alias filter.
        inband = np.exp(2j * np.pi * 20e3 * t)
        outband = np.exp(2j * np.pi * 400e3 * t)
        rx = Receiver(decimation=8)
        kept = rx.capture(Signal(inband, fs))
        removed = rx.capture(Signal(outband, fs))
        assert np.mean(np.abs(kept.samples[100:]) ** 2) > 50 * np.mean(
            np.abs(removed.samples[100:]) ** 2
        )

    def test_quantization_steps(self):
        sig = Signal(np.linspace(-1, 1, 100), 1e6)
        out = Receiver(adc_bits=4, adc_full_scale=1.0).capture(sig)
        unique = np.unique(out.samples)
        assert len(unique) <= 17  # 2^4 + 1 levels

    def test_invalid_config(self):
        with pytest.raises(SignalError):
            Receiver(gain=0)
        with pytest.raises(SignalError):
            Receiver(decimation=0)
        with pytest.raises(SignalError):
            Receiver(adc_bits=1)
        with pytest.raises(SignalError):
            Receiver(iq_imbalance_db=-1.0)

    def test_dc_offset_adds_carrier_spike(self):
        fs = 1e6
        sig = Signal(np.zeros(4096, dtype=complex), fs)
        out = Receiver(dc_offset=0.5 + 0.0j).capture(sig)
        assert np.allclose(out.samples, 0.5)

    def test_iq_imbalance_creates_image(self):
        fs, f0 = 1e6, 100e3
        t = np.arange(8192) / fs
        sig = Signal(np.exp(2j * np.pi * f0 * t), fs)
        out = Receiver(iq_imbalance_db=1.0).capture(sig)
        freqs, spec = spectrum(out)
        tone = spec[np.argmin(np.abs(freqs - f0))]
        image = spec[np.argmin(np.abs(freqs + f0))]
        clean_image = spectrum(Receiver().capture(sig))[1][
            np.argmin(np.abs(freqs + f0))
        ]
        # The imbalance puts energy at -f0 that an ideal capture lacks.
        assert image > 100 * clean_image
        assert tone > 10 * image  # but the image stays far below the tone

    def test_lo_drift_smears_tone(self):
        fs, f0 = 1e6, 100e3
        t = np.arange(65536) / fs
        sig = Signal(np.exp(2j * np.pi * f0 * t), fs)
        steady = Receiver().capture(sig)
        drifting = Receiver(lo_drift_hz_per_s=2e6).capture(sig)

        def peak_sharpness(s):
            _, spec = spectrum(s)
            return spec.max() / spec.sum()

        assert peak_sharpness(drifting) < 0.5 * peak_sharpness(steady)

    def test_impairments_ignored_for_real_signals(self):
        sig = Signal(np.ones(128), 1e6)
        out = Receiver(iq_imbalance_db=1.0, lo_drift_hz_per_s=1e6).capture(sig)
        assert np.allclose(out.samples, 1.0)


class TestEmScenario:
    def make_program(self):
        b = ProgramBuilder("em-demo")
        body = [Instr(OpClass.IADD, dst=f"r{i % 8}") for i in range(60)]
        b.block("init", [], next_block="L")
        b.counted_loop("L", body, trips=3000, exit="done")
        b.halt("done")
        return b.build(entry="init")

    def test_capture_pipeline(self):
        scenario = EmScenario.build(
            self.make_program(), core=CoreConfig.iot_inorder(clock_hz=1e8)
        )
        trace = scenario.capture(seed=0)
        assert np.iscomplexobj(trace.iq.samples)
        assert trace.timeline.t_end > 0
        assert trace.injected_spans == []
        assert trace.instr_count > 3000 * 60

    def test_loop_peak_visible_in_em_spectrum(self):
        scenario = EmScenario.build(
            self.make_program(),
            core=CoreConfig.iot_inorder(clock_hz=1e8),
            channel=ChannelModel(snr_db=30.0),
        )
        trace = scenario.capture(seed=0)
        loop_iv = next(iv for iv in trace.timeline if iv.region == "loop:L")
        seg = trace.iq.slice_time(loop_iv.t_start, loop_iv.t_end)
        freqs, spec = spectrum(seg)
        # Ignore the carrier region; look for a sideband peak.
        mask = np.abs(freqs) > 1e4
        peak = np.abs(freqs[mask][np.argmax(spec[mask])])
        # Sideband should sit at a harmonic of the iteration rate; simply
        # require a strong non-carrier line far above the noise floor.
        assert spec[mask].max() > 100 * np.median(spec[mask])
        assert peak > 1e4

    def test_injection_ground_truth_propagates(self):
        scenario = EmScenario.build(
            self.make_program(), core=CoreConfig.iot_inorder(clock_hz=1e8)
        )
        scenario.simulator.set_loop_injection(
            "L", [Instr(OpClass.IADD, dst="x")] * 8, contamination=1.0
        )
        trace = scenario.capture(seed=0)
        assert trace.injected_instr_count == 3000 * 8
        assert len(trace.injected_spans) == 1
        mid = sum(trace.injected_spans[0]) / 2
        assert trace.contains_injection(mid, mid + 1e-9)


class TestSaturate:
    def test_counts_railed_samples(self):
        values = np.array([0.5, 3.0, -3.0, 1.0])
        clipped, n = saturate(values, 2.0)
        assert n == 2
        np.testing.assert_allclose(clipped, [0.5, 2.0, -2.0, 1.0])

    def test_complex_clips_iq_independently(self):
        values = np.array([3.0 + 0.5j, 0.5 - 3.0j, 0.5 + 0.5j])
        clipped, n = saturate(values, 2.0)
        assert n == 2
        np.testing.assert_allclose(
            clipped, [2.0 + 0.5j, 0.5 - 2.0j, 0.5 + 0.5j]
        )

    def test_invalid_full_scale(self):
        with pytest.raises(SignalError):
            saturate(np.zeros(4), 0.0)


class TestReceiverQuality:
    def test_decimation_preserves_alignment(self):
        """The anti-alias FIR's group delay must be compensated.

        An uncompensated 65-tap FIR shifts every feature 32 input samples
        late; after decimation by 4 an envelope edge would land 8 output
        samples off the ground-truth timeline.
        """
        fs = 1e6
        n = 4096
        edge = 2048
        envelope = np.zeros(n)
        envelope[edge:] = 1.0  # envelope step at a known instant
        sig = Signal(envelope, fs)
        out = Receiver(decimation=4).capture(sig)
        # The step, in output samples, must sit at edge/4 (transition
        # width of the FIR aside -- use the 50% crossing).
        crossing = int(np.argmax(np.abs(out.samples) >= 0.5))
        assert abs(crossing - edge // 4) <= 2

    def test_decimation_impulse_alignment(self):
        fs = 1e6
        n = 4096
        at = 1024
        impulse = np.zeros(n)
        impulse[at] = 1.0
        out = Receiver(decimation=4).capture(Signal(impulse, fs))
        assert abs(int(np.argmax(np.abs(out.samples))) - at // 4) <= 1

    def test_overflow_counter_hook(self):
        counter = OverflowCounter()
        rx = Receiver(adc_bits=8, adc_full_scale=0.5,
                      overflow_counter=counter)
        hot = Signal(np.linspace(-2.0, 2.0, 1000), 1e6)
        rx.capture(hot)
        assert counter.count > 0
        first = counter.count
        rx.capture(hot)
        assert counter.count == 2 * first  # accumulates across captures
        counter.reset()
        assert counter.count == 0

    def test_no_overflow_within_range(self):
        counter = OverflowCounter()
        rx = Receiver(adc_bits=8, adc_full_scale=4.0,
                      overflow_counter=counter)
        rx.capture(Signal(np.linspace(-1.0, 1.0, 1000), 1e6))
        assert counter.count == 0

    def test_agc_levels_block_rms(self):
        rng = np.random.default_rng(0)
        with pytest.warns(DeprecationWarning, match="AgcStage"):
            rx = Receiver(agc=True, agc_block=512, adc_full_scale=4.0)
        quiet = Signal(0.01 * rng.standard_normal(2048), 1e6)
        out = rx.capture(quiet)
        rms = float(np.sqrt(np.mean(np.abs(out.samples) ** 2)))
        assert rms == pytest.approx(2.0, rel=1e-6)  # half full scale

    def test_agc_hook_matches_agc_stage(self):
        # The deprecated hook and its stage replacement are the same
        # computation.
        from repro.dsp import AgcStage

        rng = np.random.default_rng(1)
        samples = 0.3 * rng.standard_normal(5000)
        with pytest.warns(DeprecationWarning):
            rx = Receiver(agc=True, agc_block=512, adc_full_scale=4.0)
        hook = rx.capture(Signal(samples, 1e6)).samples
        stage = AgcStage(block_samples=512, target=2.0).process(samples)
        np.testing.assert_array_equal(hook, stage)

    def test_agc_reduces_saturation(self):
        counter_plain = OverflowCounter()
        counter_agc = OverflowCounter()
        hot = Signal(np.linspace(-20.0, 20.0, 4096), 1e6)
        Receiver(adc_bits=8, overflow_counter=counter_plain).capture(hot)
        with pytest.warns(DeprecationWarning):
            rx_agc = Receiver(adc_bits=8, agc=True, agc_block=1024,
                              overflow_counter=counter_agc)
        rx_agc.capture(hot)
        assert counter_agc.count < counter_plain.count

    def test_invalid_full_scale_and_agc_block(self):
        with pytest.raises(SignalError):
            Receiver(adc_full_scale=0.0)
        with pytest.raises(SignalError):
            Receiver(adc_full_scale=-1.0)
        with pytest.raises(SignalError):
            Receiver(agc_block=1)
