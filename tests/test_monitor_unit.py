"""Step-level unit tests for the monitor's Algorithm-1 mechanics.

These pin the behaviours DESIGN.md D11 documents: the anomaly streak and
report threshold, bounded candidate probes, missing-peak rejections, and
step-counted region changes.
"""

import numpy as np
import pytest

from repro.core.model import EddieConfig, EddieModel, RegionProfile
from repro.core.monitor import Monitor
from repro.errors import MonitoringError

MAXP = 4


def rows(freq, n, width=MAXP):
    out = np.full((n, width), np.nan)
    out[:, 0] = freq
    return out


def build_model(report_threshold=3, change_steps=3, successors=None,
                profiles=None):
    cfg = EddieConfig(
        window_samples=64, max_peaks=MAXP, group_sizes=(8,),
        report_threshold=report_threshold, change_steps=change_steps,
    )
    if profiles is None:
        profiles = {
            "loop:A": RegionProfile("loop:A", rows(1000.0, 100), 1, 8),
            "loop:B": RegionProfile("loop:B", rows(2000.0, 100), 1, 8),
        }
    return EddieModel(
        "p", cfg, profiles,
        successors or {"loop:A": ["loop:B"], "loop:B": []},
        ["loop:A"], 64e3,
    )


def drive(monitor, freqs):
    """Feed a sequence of dim-0 peak values; return (reports, rejections)."""
    reports, rejections = [], 0
    for i, freq in enumerate(freqs):
        row = np.full(MAXP, np.nan)
        if freq is not None:
            row[0] = freq
        report, rejected = monitor.step(row, float(i))
        if report:
            reports.append((i, report))
        rejections += rejected
    return reports, rejections


class TestReportThreshold:
    def test_report_fires_after_streak(self):
        model = build_model(report_threshold=3)
        monitor = Monitor(model)
        # Warm up with clean values, then an anomalous plateau that matches
        # neither region.
        reports, _ = drive(monitor, [1000.0] * 20 + [1500.0] * 20)
        assert reports
        first_index = reports[0][0]
        # Needs > threshold accumulated rejections: not instantaneous.
        assert first_index >= 20 + 3

    def test_higher_threshold_fires_later(self):
        late_reports = []
        for threshold in (1, 6):
            monitor = Monitor(build_model(report_threshold=threshold))
            reports, _ = drive(monitor, [1000.0] * 20 + [1500.0] * 30)
            late_reports.append(reports[0][0] if reports else None)
        assert late_reports[0] is not None and late_reports[1] is not None
        assert late_reports[0] < late_reports[1]

    def test_clean_acceptance_resets_streak(self):
        monitor = Monitor(build_model(report_threshold=3))
        # Alternate one anomalous STS into long clean stretches: the group
        # median stays clean, so no rejection streak can build.
        pattern = ([1000.0] * 10 + [1500.0]) * 6
        reports, _ = drive(monitor, pattern)
        assert reports == []


class TestRegionChange:
    def test_change_needs_multiple_steps(self):
        model = build_model(change_steps=3)
        monitor = Monitor(model)
        drive(monitor, [1000.0] * 20)
        assert monitor.current_region == "loop:A"
        # Two B-consistent steps: not yet enough once rejections begin.
        drive(monitor, [2000.0] * 9)
        # After enough steps the monitor lands in B without reporting.
        reports, _ = drive(monitor, [2000.0] * 10)
        assert monitor.current_region == "loop:B"

    def test_no_change_to_non_successor(self):
        profiles = {
            "loop:A": RegionProfile("loop:A", rows(1000.0, 100), 1, 8),
            "loop:B": RegionProfile("loop:B", rows(2000.0, 100), 1, 8),
            "loop:C": RegionProfile("loop:C", rows(3000.0, 100), 1, 8),
        }
        model = build_model(
            successors={"loop:A": ["loop:B"], "loop:B": [], "loop:C": []},
            profiles=profiles,
        )
        monitor = Monitor(model)
        drive(monitor, [1000.0] * 20)
        reports, _ = drive(monitor, [3000.0] * 30)  # looks like C
        assert monitor.current_region != "loop:C"
        assert reports  # unexplained -> anomaly

    def test_transition_resets_counters(self):
        monitor = Monitor(build_model())
        drive(monitor, [1000.0] * 20 + [2000.0] * 20)
        assert monitor.current_region == "loop:B"
        assert monitor._anomaly_count == 0
        assert monitor._change_counts == {}


class TestMissingPeaks:
    def test_vanished_peaks_are_anomalous(self):
        monitor = Monitor(build_model(report_threshold=2))
        reports, _ = drive(monitor, [1000.0] * 20 + [None] * 20)
        assert reports

    def test_vanished_peaks_explained_by_peakless_successor(self):
        peakless_ref = np.full((50, MAXP), np.nan)
        profiles = {
            "loop:A": RegionProfile("loop:A", rows(1000.0, 100), 1, 8),
            "loop:Q": RegionProfile("loop:Q", peakless_ref, 0, 8),
        }
        model = build_model(
            successors={"loop:A": ["loop:Q"], "loop:Q": []},
            profiles=profiles,
        )
        monitor = Monitor(model)
        reports, _ = drive(monitor, [1000.0] * 20 + [None] * 25)
        assert reports == []
        assert monitor.current_region == "loop:Q"


class TestInputValidation:
    def test_row_count_mismatch(self):
        monitor = Monitor(build_model())
        with pytest.raises(MonitoringError):
            monitor.run_peaks(np.zeros((5, MAXP)), np.arange(4.0))

    def test_width_too_small(self):
        monitor = Monitor(build_model())
        with pytest.raises(MonitoringError):
            monitor.run_peaks(np.zeros((5, MAXP - 1)), np.arange(5.0))
