"""Tests for model persistence (repro.serialize) and the CLI (repro.cli)."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.model import EddieConfig, EddieModel, RegionProfile
from repro.errors import ConfigurationError
from repro.serialize import load_model, save_model


def tiny_model() -> EddieModel:
    ref_a = np.full((30, 4), np.nan)
    ref_a[:, 0] = 1000.0
    ref_b = np.full((25, 4), np.nan)
    ref_b[:, 0] = 2000.0
    ref_b[:10, 1] = 4000.0
    cfg = EddieConfig(max_peaks=4, group_sizes=(8, 16))
    return EddieModel(
        program_name="tiny",
        config=cfg,
        profiles={
            "loop:A": RegionProfile("loop:A", ref_a, 1, 8),
            "loop:B": RegionProfile("loop:B", ref_b, 2, 16),
        },
        successors={"loop:A": ["loop:B"], "loop:B": []},
        initial_regions=["loop:A"],
        sample_rate=5e6,
    )


class TestSerialize:
    def test_round_trip(self, tmp_path):
        model = tiny_model()
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.program_name == "tiny"
        assert loaded.sample_rate == 5e6
        assert loaded.config == model.config
        assert set(loaded.profiles) == {"loop:A", "loop:B"}
        for name in model.profiles:
            original = model.profiles[name]
            restored = loaded.profiles[name]
            assert restored.num_peaks == original.num_peaks
            assert restored.group_size == original.group_size
            np.testing.assert_array_equal(
                restored.reference, original.reference
            )
        assert loaded.successors == model.successors
        assert loaded.initial_regions == model.initial_regions

    def test_round_trip_monitoring_equivalence(self, tmp_path):
        """A loaded model must monitor identically to the original."""
        from repro.core.monitor import Monitor

        model = tiny_model()
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)

        rng = np.random.default_rng(0)
        peaks = np.full((60, 4), np.nan)
        peaks[:30, 0] = 1000.0
        peaks[30:, 0] = 1500.0  # anomalous half
        times = np.arange(60) * model.hop_duration
        a = Monitor(model).run_peaks(peaks, times)
        b = Monitor(loaded).run_peaks(peaks, times)
        assert [r.time for r in a.reports] == [r.time for r in b.reports]
        assert a.tracked == b.tracked

    def test_rejects_non_model_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_model(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "model.npz"
        save_model(tiny_model(), path)
        assert path.exists()


class TestTraceSerialize:
    def make_trace(self):
        from repro.arch.config import CoreConfig
        from repro.em.scenario import EmScenario
        from repro.programs.workloads import injection_mix, sharp_loop_program

        scenario = EmScenario.build(
            sharp_loop_program(trips=2000),
            core=CoreConfig.iot_inorder(clock_hz=1e8),
        )
        scenario.simulator.set_loop_injection("L", injection_mix(2, 0), 1.0)
        return scenario.capture(seed=0)

    def test_round_trip(self, tmp_path):
        from repro.serialize import load_trace, save_trace

        trace = self.make_trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.iq.samples, trace.iq.samples)
        assert loaded.iq.sample_rate == trace.iq.sample_rate
        assert loaded.injected_spans == [tuple(s) for s in trace.injected_spans]
        assert loaded.instr_count == trace.instr_count
        assert loaded.injected_instr_count == trace.injected_instr_count
        assert loaded.inputs == trace.inputs
        assert [iv.region for iv in loaded.timeline] == [
            iv.region for iv in trace.timeline
        ]

    def test_rejects_model_file_as_trace(self, tmp_path):
        from repro.serialize import load_trace, save_model

        path = tmp_path / "model.npz"
        save_model(tiny_model(), path)
        with pytest.raises(ConfigurationError):
            load_trace(path)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bitcount" in out
        assert "table1" in out

    def test_train_and_monitor(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        assert cli_main(
            ["train", "sha", "-o", model_path, "--runs", "3", "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "trained sha" in out

        assert cli_main(
            ["monitor", "sha", model_path, "--runs", "1", "--seed", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "run 0:" in out

    def test_train_with_frontend_json(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha_fe.npz")
        assert cli_main([
            "train", "sha", "-o", model_path, "--runs", "2",
            "--frontend", '[{"type": "fir_gate", "cutoff": 0.5}]',
        ]) == 0
        out = capsys.readouterr().out
        assert "frontend: fir_gate" in out
        loaded = load_model(model_path)
        assert len(loaded.config.frontend) == 1
        assert loaded.config.frontend[0].stage_type == "fir_gate"

    def test_train_frontend_flags_are_exclusive_and_validated(self, tmp_path):
        model_path = str(tmp_path / "nope.npz")
        assert cli_main([
            "train", "sha", "-o", model_path, "--runs", "2",
            "--denoise", "--frontend", "[]",
        ]) != 0
        assert cli_main([
            "train", "sha", "-o", model_path, "--runs", "2",
            "--frontend", '[{"type": "no_such_stage"}]',
        ]) != 0
        assert cli_main([
            "train", "sha", "-o", model_path, "--runs", "2",
            "--frontend", "not json",
        ]) != 0

    def test_stream_sessions_use_distinct_seeds(self, tmp_path, capsys):
        """Each fleet session must stream its own seed block.

        Regression: the session source genexpr used to close over the
        loop's ``base`` variable, so every session lazily streamed the
        *last* session's seeds and all lines came out identical.
        """
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "2"])
        capsys.readouterr()
        assert cli_main(
            ["stream", "sha", model_path, "--sessions", "2",
             "--chunk-samples", "4096"]
        ) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.startswith("dev-")]
        assert len(lines) == 2
        suffixes = {ln.split(": ", 1)[1] for ln in lines}
        assert len(suffixes) == 2, f"sessions streamed the same seed: {out}"

    def test_monitor_with_injection_detects(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "4"])
        capsys.readouterr()
        assert cli_main(
            ["monitor", "sha", model_path, "--runs", "1", "--inject-loop"]
        ) == 0
        out = capsys.readouterr().out
        assert "detected=True" in out

    def test_experiment_fig1(self, capsys):
        assert cli_main(["experiment", "fig1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Fclock" in out

    def test_capture_and_monitor_trace(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "4"])
        prefix = str(tmp_path / "t_")
        assert cli_main(
            ["capture", "sha", "-o", prefix, "--runs", "1", "--seed", "42",
             "--inject-loop"]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            ["monitor-trace", model_path, f"{prefix}42.npz"]
        ) == 0
        out = capsys.readouterr().out
        assert "detected=True" in out

    def test_benchmark_mismatch_warns(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "3"])
        capsys.readouterr()
        cli_main(["monitor", "stringsearch", model_path, "--runs", "1"])
        err = capsys.readouterr().err
        assert "warning" in err


class TestFaultPersistence:
    def make_faulty_trace(self):
        from repro.arch.config import CoreConfig
        from repro.em.faults import standard_fault_mix
        from repro.em.scenario import EmScenario
        from repro.programs.workloads import sharp_loop_program

        scenario = EmScenario.build(
            sharp_loop_program(trips=2000),
            core=CoreConfig.iot_inorder(clock_hz=1e8),
            faults=standard_fault_mix(3000.0, 3000.0),
        )
        return scenario.capture(seed=3)

    def test_trace_round_trip_keeps_fault_spans(self, tmp_path):
        from repro.serialize import load_trace, save_trace

        trace = self.make_faulty_trace()
        assert trace.fault_spans  # the mix actually fired
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.fault_spans == trace.fault_spans
        np.testing.assert_array_equal(loaded.iq.samples, trace.iq.samples)

    def test_old_trace_without_fault_spans_loads(self, tmp_path):
        """Traces written before the fault layer default to an empty log."""
        import json

        from repro.serialize import load_trace, save_trace

        trace = self.make_faulty_trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            iq = data["iq"]
        del meta["fault_spans"]
        np.savez_compressed(path, meta=json.dumps(meta), iq=iq)
        loaded = load_trace(path)
        assert loaded.fault_spans == []

    def test_model_round_trip_keeps_quality_config(self, tmp_path):
        from repro.serialize import load_model, save_model

        model = tiny_model()
        model = model.with_quality_gating(True)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.config.quality_gating
        assert loaded.config == model.config


class TestCalibrationPersistence:
    """Derived-model (calibration) blocks in the .npz format.

    The transfer layer (DESIGN.md D23) added an optional ``calibration``
    section to model files. Pre-transfer files must keep loading as base
    models, and a present block is tamper-evident: its digest binds the
    provenance fields to the config fingerprint.
    """

    def calibrated_model(self):
        import numpy as np

        from repro.core.model import CalibrationInfo

        base = tiny_model()
        references = {
            name: np.where(
                np.isnan(profile.reference),
                profile.reference,
                profile.reference * 1.02,
            )
            for name, profile in base.profiles.items()
        }
        info = CalibrationInfo(
            base_fingerprint="abcdef123456",
            variant="clock 1.02x",
            freq_scale=1.02,
            windows=64,
            snapped_fraction=0.95,
        )
        return base.with_calibrated_references(references, info)

    def test_legacy_model_without_calibration_loads(self, tmp_path):
        """Files written before the transfer layer load as base models."""
        path = tmp_path / "legacy.npz"
        save_model(tiny_model(), path)
        loaded = load_model(path)
        assert loaded.calibration is None
        assert not loaded.is_derived

    def test_calibration_block_round_trips(self, tmp_path):
        model = self.calibrated_model()
        path = tmp_path / "derived.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.is_derived
        assert loaded.calibration == model.calibration
        np.testing.assert_array_equal(
            loaded.profiles["loop:A"].reference,
            model.profiles["loop:A"].reference,
        )

    def rewrite_meta(self, path, mutate):
        """Re-save ``path`` with its meta JSON altered by ``mutate``."""
        import json

        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {
                name: data[name] for name in data.files if name != "meta"
            }
        mutate(meta)
        np.savez_compressed(path, meta=json.dumps(meta), **arrays)

    def test_tampered_calibration_provenance_refused(self, tmp_path):
        """Editing provenance fields after save trips the digest check."""
        path = tmp_path / "derived.npz"
        save_model(self.calibrated_model(), path)

        def swap_base(meta):
            meta["calibration"]["info"]["base_fingerprint"] = "f" * 12

        self.rewrite_meta(path, swap_base)
        with pytest.raises(ConfigurationError, match="integrity"):
            load_model(path)

    def test_tampered_calibration_digest_refused(self, tmp_path):
        path = tmp_path / "derived.npz"
        save_model(self.calibrated_model(), path)

        def zero_digest(meta):
            meta["calibration"]["digest"] = "0" * 64

        self.rewrite_meta(path, zero_digest)
        with pytest.raises(ConfigurationError, match="integrity"):
            load_model(path)

    def test_malformed_calibration_block_refused(self, tmp_path):
        path = tmp_path / "derived.npz"
        save_model(self.calibrated_model(), path)
        self.rewrite_meta(
            path, lambda meta: meta.__setitem__("calibration", {"x": 1})
        )
        with pytest.raises(ConfigurationError, match="malformed"):
            load_model(path)


class TestCliCalibrate:
    def test_calibrate_file_mode(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "3"])
        prefix = str(tmp_path / "c_")
        cli_main(["capture", "sha", "-o", prefix, "--runs", "1",
                  "--seed", "7"])
        capsys.readouterr()
        out_path = str(tmp_path / "sha_cal.npz")
        assert cli_main([
            "calibrate", model_path, "--capture", f"{prefix}7.npz",
            "-o", out_path, "--variant", "same device",
        ]) == 0
        out = capsys.readouterr().out
        assert "freq scale" in out
        assert "saved derived model" in out
        loaded = load_model(out_path)
        assert loaded.is_derived
        assert loaded.calibration.variant == "same device"

    def test_calibrate_requires_destination(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "2"])
        capsys.readouterr()
        assert cli_main(
            ["calibrate", model_path, "--capture", "whatever.npz"]
        ) == 2
        err = capsys.readouterr().err
        assert "nowhere to put" in err


class TestCliFaults:
    def test_monitor_with_faults_and_gating(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "3"])
        capsys.readouterr()
        assert cli_main(
            ["monitor", "sha", model_path, "--runs", "1",
             "--faults", "mixed", "--fault-rate", "500",
             "--quality-gating"]
        ) == 0
        out = capsys.readouterr().out
        assert "unscorable" in out

    def test_faults_require_em_source(self, tmp_path, capsys):
        model_path = str(tmp_path / "sha.npz")
        cli_main(["train", "sha", "-o", model_path, "--runs", "3",
                  "--source", "power"])
        capsys.readouterr()
        assert cli_main(
            ["monitor", "sha", model_path, "--runs", "1",
             "--source", "power", "--faults", "drops"]
        ) != 0

    def test_capture_with_faults_saves_spans(self, tmp_path, capsys):
        from repro.serialize import load_trace

        prefix = str(tmp_path / "t_")
        assert cli_main(
            ["capture", "sha", "-o", prefix, "--runs", "1", "--seed", "9",
             "--faults", "full", "--fault-rate", "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "fault" in out
        trace = load_trace(f"{prefix}9.npz")
        assert trace.fault_spans
