"""Lock of the stable public surface of the ``repro`` package.

``tests/data/public_api.txt`` is the checked-in contract: one exported
name per line, sorted. Any change to what ``repro`` exports -- adding,
removing, or renaming -- must update that file in the same commit, which
makes API changes reviewable instead of accidental.
"""

from pathlib import Path

import pytest

import repro

_SNAPSHOT = Path(__file__).parent / "data" / "public_api.txt"


def snapshot_names():
    return [
        line.strip()
        for line in _SNAPSHOT.read_text().splitlines()
        if line.strip()
    ]


class TestPublicSurface:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == snapshot_names(), (
            "repro.__all__ changed; if intentional, regenerate "
            "tests/data/public_api.txt in the same commit"
        )

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_lazy_exports_are_all_public(self):
        # Everything importable lazily is also declared in __all__ --
        # no shadow surface.
        assert set(repro._LAZY_EXPORTS) <= set(repro.__all__)

    def test_dir_covers_surface(self):
        listing = dir(repro)
        for name in repro.__all__:
            assert name in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.DefinitelyNotExported

    def test_facade_classes_are_canonical(self):
        # The lazy re-exports are the same objects as the defining
        # modules', so isinstance checks hold across both import paths.
        from repro.core.model import EddieConfig
        from repro.core.monitor import Monitor
        from repro.stream import FleetScheduler, StreamingMonitor

        assert repro.EddieConfig is EddieConfig
        assert repro.Monitor is Monitor
        assert repro.StreamingMonitor is StreamingMonitor
        assert repro.FleetScheduler is FleetScheduler
