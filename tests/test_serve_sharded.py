"""Sharded serving conformance (DESIGN.md D21): placement + the router.

The load-bearing assertions, one hop out from the resilience suite: a
replay through a multi-worker :class:`ShardCluster` is bit-identical to
a single-worker replay and to a local :class:`StreamingMonitor` run; a
session's placement is stable under reconnect; hard-killing the owning
worker mid-stream loses zero windows and double-scores none (the
survivor adopts the orphaned spill). Around that: rendezvous-hashing
properties (hypothesis), pre-revision-3 clients spliced through the
router untouched, typed REDIRECT validation, exact fleet-wide STATS
merging, and the drain/eviction checkpoint races of this revision.
"""

import dataclasses
import json
import socket
import threading

import pytest
from conftest import shared_tiny_detector as detector_for
from conftest import tiny_scale
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError, ServeError
from repro.serve import (
    ChaosProxy,
    EddieClient,
    ModelRegistry,
    ServerConfig,
    ShardCluster,
    merge_stats_payloads,
    place,
    serve_in_thread,
)
from repro.serve.client import replay
from repro.serve.protocol import (
    ERR_BAD_REDIRECT,
    Frame,
    FrameType,
    json_frame,
    parse_json,
    parse_redirect,
    recv_frame,
    send_frame,
)
from repro.stream import StreamingMonitor

TINY = tiny_scale()

#: The sharded bit-identity sweep covers these programs end to end.
SHARDED_PROGRAMS = ("bitcount", "sha", "dijkstra")


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    reg = ModelRegistry(tmp_path_factory.mktemp("registry"))
    for name in SHARDED_PROGRAMS:
        reg.publish(detector_for(name).model)
    return reg


def sharded_config(**overrides):
    base = dict(
        max_sessions=8,
        worker_threads=2,
        checkpoint_interval=2,
    )
    base.update(overrides)
    return ServerConfig(**base)


@pytest.fixture(scope="module")
def cluster(registry, tmp_path_factory):
    """Two thread-hosted workers behind a router, shared by the
    non-destructive tests (the kill tests build their own)."""
    with ShardCluster(
        registry,
        workers=2,
        mode="thread",
        config=sharded_config(),
        spill_root=str(tmp_path_factory.mktemp("spills")),
    ) as shared:
        yield shared


@pytest.fixture(scope="module")
def single(registry):
    """A plain single-worker server, the sharded sweep's control arm."""
    with serve_in_thread(registry, sharded_config()) as handle:
        yield handle


def sharded_client(host, port, **overrides):
    base = dict(
        window=4,
        connect_timeout=5.0,
        io_timeout=10.0,
        max_retries=8,
        backoff_base=0.02,
        backoff_max=0.25,
    )
    base.update(overrides)
    return EddieClient(host, port, **base)


def local_reference(model, trace, chunk_samples):
    """What a local streaming run produces for the same chunking."""
    monitor = StreamingMonitor(model, t0=trace.iq.t0)
    reports = []
    for chunk in trace.iq.iter_chunks(chunk_samples):
        for result in monitor.feed(chunk):
            reports.extend(result.reports)
    return reports, monitor.finish()


def assert_matches_local(reports, summary, client, local_reports,
                         local_summary):
    """Exactly-once, end to end: nothing lost, nothing double-scored."""
    assert reports == local_reports
    assert summary == dataclasses.replace(
        local_summary, session_id=summary.session_id
    )
    assert client.windows_seen == local_summary.windows


def key_owned_by(worker_id, worker_ids=(0, 1)):
    """A shard key that rendezvous-places onto ``worker_id``."""
    for i in range(1000):
        key = f"owned-{worker_id}-{i}"
        if place(key, list(worker_ids)) == worker_id:
            return key
    raise AssertionError("rendezvous hash never picked the worker")


# -- placement properties -----------------------------------------------------


worker_sets = st.lists(
    st.integers(min_value=0, max_value=512),
    min_size=1, max_size=8, unique=True,
)


class TestPlacement:
    @given(key=st.text(min_size=1, max_size=32), worker_ids=worker_sets)
    def test_deterministic_and_order_independent(self, key, worker_ids):
        owner = place(key, worker_ids)
        assert owner in worker_ids
        assert place(key, worker_ids) == owner
        assert place(key, list(reversed(worker_ids))) == owner
        assert place(key, sorted(worker_ids)) == owner

    @given(
        key=st.text(min_size=1, max_size=32),
        worker_ids=st.lists(
            st.integers(min_value=0, max_value=512),
            min_size=2, max_size=8, unique=True,
        ),
    )
    def test_removing_a_bystander_never_moves_the_key(self, key, worker_ids):
        # The minimal-disruption property rendezvous hashing buys over
        # modulo hashing: only the removed worker's keys re-place.
        owner = place(key, worker_ids)
        for removed in worker_ids:
            if removed == owner:
                continue
            rest = [w for w in worker_ids if w != removed]
            assert place(key, rest) == owner

    def test_balanced_across_1k_session_ids(self):
        worker_ids = [0, 1, 2, 3]
        loads = {w: 0 for w in worker_ids}
        for i in range(1000):
            loads[place(f"session-{i:04d}", worker_ids)] += 1
        assert sum(loads.values()) == 1000
        # Expected 250 per worker, sigma ~14: these bounds are >5 sigma
        # out, and the assignment is deterministic anyway.
        for worker_id, load in loads.items():
            assert 175 <= load <= 325, (worker_id, loads)

    def test_empty_worker_set_is_typed(self):
        with pytest.raises(ServeError) as excinfo:
            place("anything", [])
        assert excinfo.value.code == "no_workers"


# -- REDIRECT validation ------------------------------------------------------


def redirect_frame(payload):
    return Frame(FrameType.REDIRECT, json.dumps(payload).encode())


class TestRedirectValidation:
    def test_well_formed_redirect_parses(self):
        frame = redirect_frame({"host": "10.0.0.7", "port": 4000, "worker": 3})
        assert parse_redirect(frame) == ("10.0.0.7", 4000, 3)
        # worker is advisory; a frame without it still routes.
        frame = redirect_frame({"host": "h", "port": 1})
        assert parse_redirect(frame) == ("h", 1, -1)

    @pytest.mark.parametrize("frame", [
        Frame(FrameType.OPEN, b"{}"),                   # wrong frame type
        Frame(FrameType.REDIRECT, b"\xff\xfe"),         # not UTF-8 JSON
        Frame(FrameType.REDIRECT, b"[1, 2]"),           # not an object
        redirect_frame({"port": 4000}),                 # host missing
        redirect_frame({"host": "", "port": 4000}),     # host empty
        redirect_frame({"host": 7, "port": 4000}),      # host not a str
        redirect_frame({"host": "h"}),                  # port missing
        redirect_frame({"host": "h", "port": "x"}),     # port not an int
        redirect_frame({"host": "h", "port": 0}),       # port out of range
        redirect_frame({"host": "h", "port": 70000}),   # port out of range
        redirect_frame({"host": "h", "port": 1, "worker": "w"}),
    ])
    def test_malformed_redirect_is_typed(self, frame):
        with pytest.raises(ProtocolError) as excinfo:
            parse_redirect(frame)
        assert excinfo.value.code == ERR_BAD_REDIRECT

    @pytest.fixture()
    def redirect_loop_server(self):
        """A hostile 'router' that redirects every OPEN back to itself."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        host, port = listener.getsockname()[:2]
        stop = threading.Event()

        def run():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                with conn:
                    conn.settimeout(5)
                    try:
                        recv_frame(conn)  # HELLO
                        send_frame(conn, json_frame(
                            FrameType.HELLO, {"version": 3}
                        ))
                        recv_frame(conn)  # OPEN
                        send_frame(conn, json_frame(FrameType.REDIRECT, {
                            "host": host, "port": port, "worker": 0,
                        }))
                    except (OSError, ProtocolError):
                        pass

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        try:
            yield (host, port)
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=2)

    def test_redirect_loop_is_cut_off_with_typed_error(
        self, redirect_loop_server
    ):
        host, port = redirect_loop_server
        with sharded_client(host, port, max_redirects=3) as client:
            with pytest.raises(ServeError) as excinfo:
                client.open("bitcount")
        assert excinfo.value.code == ERR_BAD_REDIRECT


# -- sharded bit-identity -----------------------------------------------------


class TestShardedBitIdentity:
    @pytest.mark.parametrize("name", SHARDED_PROGRAMS)
    def test_sharded_equals_single_worker_equals_local(
        self, cluster, single, name
    ):
        detector = detector_for(name)
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        s_reports, s_summary = replay(
            *single.address, f"{name}@latest", trace, chunk_samples=4096
        )
        c_reports, c_summary = replay(
            *cluster.address, f"{name}@latest", trace, chunk_samples=4096
        )
        assert s_reports == local_reports
        assert c_reports == local_reports
        for summary in (s_summary, c_summary):
            assert dataclasses.replace(
                summary, session_id=local_summary.session_id
            ) == local_summary

    def test_session_stays_pinned_under_reconnect(self, cluster):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(1))
        chunks = list(trace.iq.iter_chunks(4096))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        host, port = cluster.address
        with sharded_client(host, port, shard_key="pin-me") as client:
            client.open("bitcount", t0=trace.iq.t0)
            first_worker = client.worker_id
            assert first_worker is not None
            reports = []
            half = len(chunks) // 2
            for chunk in chunks[:half]:
                reports.extend(client.send(chunk))
            reports.extend(client.drain())
            # Sever the worker connection mid-stream: the resume goes
            # back through the router, and the unchanged shard key must
            # land it on the same worker.
            client._sock.shutdown(socket.SHUT_RDWR)
            for chunk in chunks[half:]:
                reports.extend(client.send(chunk))
            reports.extend(client.drain())
            summary = client.close()
            assert client.reconnects >= 1
            assert client.worker_id == first_worker
            assert_matches_local(
                reports, summary, client, local_reports, local_summary
            )

    def test_worker_kill_mid_stream_resumes_on_survivor(
        self, registry, tmp_path
    ):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(2))
        chunks = list(trace.iq.iter_chunks(4096))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        with ShardCluster(
            registry, workers=2, mode="thread", config=sharded_config(),
            spill_root=str(tmp_path / "spills"),
        ) as doomed:
            host, port = doomed.address
            with sharded_client(host, port) as client:
                client.open("bitcount", t0=trace.iq.t0)
                owner = client.worker_id
                reports = []
                half = len(chunks) // 2
                for chunk in chunks[:half]:
                    reports.extend(client.send(chunk))
                reports.extend(client.drain())
                assert client.acked_seq > 0, "need a durable checkpoint"
                doomed.kill_worker(owner)  # no drain, no goodbye
                for chunk in chunks[half:]:
                    reports.extend(client.send(chunk))
                reports.extend(client.drain())
                summary = client.close()
                assert client.reconnects >= 1
                assert client.worker_id is not None
                assert client.worker_id != owner  # adopted by the survivor
                assert_matches_local(
                    reports, summary, client, local_reports, local_summary
                )


# -- pre-revision-3 clients through the router --------------------------------


class TestSpliceCompat:
    def test_v2_client_streams_through_router_unchanged(self, cluster):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(3))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        host, port = cluster.address
        client = sharded_client(host, port)
        client._offer_versions = [1, 2]  # a pre-shard deployment
        with client:
            client.open("bitcount", t0=trace.iq.t0)
            assert client.protocol_version == 2
            reports = []
            for chunk in trace.iq.iter_chunks(4096):
                reports.extend(client.send(chunk))
            reports.extend(client.drain())
            summary = client.close()
            assert_matches_local(
                reports, summary, client, local_reports, local_summary
            )
        assert cluster.stats()["router"]["splices"] >= 1

    def test_keyless_v1_open_is_spliced_round_robin(self, cluster):
        # The oldest possible peer: revision 1, no shard key at all.
        host, port = cluster.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            send_frame(sock, json_frame(FrameType.HELLO, {"versions": [1]}))
            hello = recv_frame(sock)
            assert hello.type == FrameType.HELLO
            assert parse_json(hello)["version"] == 1
            send_frame(sock, json_frame(FrameType.OPEN, {
                "model": "bitcount", "t0": 0.0, "window": 4,
            }))
            ack = recv_frame(sock)
            assert ack.type == FrameType.OPEN
            payload = parse_json(ack)
            assert payload["session"]
            assert payload["worker"] in (0, 1)

    def test_v2_client_survives_proxy_and_worker_kill(
        self, registry, tmp_path
    ):
        # The full gauntlet for an old client: chaos proxy in front of
        # the router, spliced to its worker, and the worker hard-killed
        # mid-stream. Still exactly-once.
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(4))
        chunks = list(trace.iq.iter_chunks(4096))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        with ShardCluster(
            registry, workers=2, mode="thread", config=sharded_config(),
            spill_root=str(tmp_path / "spills"),
        ) as doomed:
            with ChaosProxy(doomed.address, seed=11) as proxy:
                host, port = proxy.address
                client = sharded_client(host, port)
                client._offer_versions = [1, 2]
                with client:
                    client.open("bitcount", t0=trace.iq.t0)
                    owner = client.worker_id
                    reports = []
                    third = len(chunks) // 3
                    for chunk in chunks[:third]:
                        reports.extend(client.send(chunk))
                    reports.extend(client.drain())
                    assert proxy.kill_connections() >= 1
                    for chunk in chunks[third:2 * third]:
                        reports.extend(client.send(chunk))
                    reports.extend(client.drain())
                    doomed.kill_worker(owner)
                    for chunk in chunks[2 * third:]:
                        reports.extend(client.send(chunk))
                    reports.extend(client.drain())
                    summary = client.close()
                    assert client.reconnects >= 2
                    assert_matches_local(
                        reports, summary, client,
                        local_reports, local_summary,
                    )


# -- fleet-wide STATS ---------------------------------------------------------


class TestStatsAggregation:
    def test_merge_is_exact_on_synthetic_payloads(self):
        a = {
            "worker": 0, "sessions_open": 1, "max_sessions": 8,
            "sessions_opened": 3, "chunks": 10, "windows": 40,
            "draining": False, "evict_idle": False,
            "checkpoint_interval": 2,
            "registry": {"lru_hits": 3, "lru_misses": 1},
            "metrics": {
                "counters": {"repro.serve.chunks": 10},
                "gauges": {"repro.serve.depth": {"value": 2.0, "set": True}},
                "histograms": {"lat": {
                    "edges": [0.0, 1.0], "bins": [4, 6],
                    "count": 10, "sum": 7.5, "min": 0.1, "max": 1.9,
                }},
            },
        }
        b = {
            "worker": 1, "sessions_open": 2, "max_sessions": 8,
            "sessions_opened": 5, "chunks": 32, "windows": 128,
            "draining": True, "evict_idle": False,
            "checkpoint_interval": 2,
            "registry": {"lru_hits": 1, "lru_misses": 2},
            "metrics": {
                "counters": {"repro.serve.chunks": 32},
                "gauges": {"repro.serve.depth": {"value": 5.0, "set": True}},
                "histograms": {"lat": {
                    "edges": [0.0, 1.0], "bins": [1, 2],
                    "count": 3, "sum": 2.5, "min": 0.05, "max": 0.9,
                }},
            },
        }
        merged = merge_stats_payloads([a, b])
        assert merged["worker_count"] == 2
        assert merged["sessions_open"] == 3
        assert merged["max_sessions"] == 16
        assert merged["sessions_opened"] == 8
        assert merged["chunks"] == 42
        assert merged["windows"] == 168
        assert merged["draining"] is True  # any worker draining
        assert merged["checkpoint_interval"] == 2  # uniform echo
        assert merged["registry"] == {"lru_hits": 4, "lru_misses": 3}
        metrics = merged["metrics"]
        assert metrics["counters"]["repro.serve.chunks"] == 42
        assert metrics["gauges"]["repro.serve.depth"]["value"] == 5.0
        hist = metrics["histograms"]["lat"]
        assert hist["bins"] == [5, 8]
        assert hist["count"] == 13
        assert hist["sum"] == pytest.approx(10.0)
        assert (hist["min"], hist["max"]) == (0.05, 1.9)
        # The per-worker payloads ride along unmodified.
        assert [w["worker"] for w in merged["workers"]] == [0, 1]

    def test_merge_concatenates_session_listings(self):
        """Per-session model specs survive the merge, tagged by worker.

        ``obs stats`` shows which model spec (including ``+cal:``
        derivations) each live session runs; the fleet merge must keep
        every entry and record which worker holds it.
        """
        a = {
            "worker": 0, "sessions_open": 1,
            "sessions": [
                {"session": "s-beta", "model": "sha@1+cal:abcdef123456",
                 "fingerprint": "b" * 12},
            ],
        }
        b = {
            "worker": 1, "sessions_open": 1,
            "sessions": [
                {"session": "s-alpha", "model": "sha@1",
                 "fingerprint": "a" * 12},
            ],
        }
        merged = merge_stats_payloads([a, b])
        assert merged["sessions"] == [
            {"session": "s-alpha", "model": "sha@1",
             "fingerprint": "a" * 12, "worker": 1},
            {"session": "s-beta", "model": "sha@1+cal:abcdef123456",
             "fingerprint": "b" * 12, "worker": 0},
        ]

    def test_merge_of_nothing_is_zeroed(self):
        merged = merge_stats_payloads([])
        assert merged["worker_count"] == 0
        assert merged["chunks"] == 0
        assert merged["draining"] is False

    def test_cluster_stats_sum_worker_counters_exactly(self, cluster):
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(5))
        host, port = cluster.address
        # One session pinned to each worker, so both contribute.
        for worker_id in (0, 1):
            key = key_owned_by(worker_id)
            with sharded_client(host, port, shard_key=key) as client:
                client.open("bitcount", t0=trace.iq.t0)
                assert client.worker_id == worker_id
                for chunk in trace.iq.iter_chunks(4096):
                    client.send(chunk)
                client.drain()
                client.close()
        merged = cluster.stats()
        workers = merged["workers"]
        assert {w["worker"] for w in workers} == {0, 1}
        for key in ("chunks", "windows", "sessions_opened", "samples",
                    "sessions_open", "bytes_in"):
            assert merged[key] == sum(w[key] for w in workers), key
        assert all(w["chunks"] > 0 for w in workers)
        router = merged["router"]
        assert router["workers_configured"] == 2
        assert router["workers_responding"] == 2
        assert router["redirects"] >= 2

    def test_stats_through_client_reaches_the_router(self, cluster):
        host, port = cluster.address
        with sharded_client(host, port) as client:
            merged = client.stats()  # served by the router pre-OPEN
        assert merged["router"]["workers_responding"] == 2
        assert merged["worker_count"] == 2


# -- drain / eviction checkpoint races ----------------------------------------


class TestDrainRaces:
    def record_checkpoints(self, handle):
        """Instrument the server to log every real spill write."""
        server = handle.server
        original = server._checkpoint_session
        recorded = []

        async def recording(state):
            recorded.append((state.session_id, state.last_seq))
            return await original(state)

        server._checkpoint_session = recording
        return recorded

    def test_drain_never_rewrites_a_fresh_checkpoint(self, registry):
        # checkpoint_interval=1: every scored chunk spills. A drain
        # landing right after must notice the session is already durable
        # at last_seq and not write the same checkpoint twice.
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        with serve_in_thread(
            registry, sharded_config(checkpoint_interval=1)
        ) as handle:
            recorded = self.record_checkpoints(handle)
            host, port = handle.address
            client = sharded_client(host, port).connect()
            try:
                client.open("bitcount", t0=trace.iq.t0)
                for chunk in list(trace.iq.iter_chunks(4096))[:6]:
                    client.send(chunk)
                client.drain()
                stats = handle.drain()
                assert stats["sessions_suspended"] == 1
            finally:
                client.disconnect()
        assert recorded, "periodic checkpoints never fired"
        assert len(recorded) == len(set(recorded)), (
            "a (session, seq) checkpoint was written twice"
        )

    def test_drain_mid_kernel_round_is_exactly_once(self, registry):
        # Drain while the batcher still has queued, unscored chunks in
        # flight: the checkpoint rolls forward to the last *scored*
        # chunk, nothing is scored after the spill is written, and the
        # client replays the rest onto a successor bit-identically.
        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(1))
        local_reports, local_summary = local_reference(
            detector.model, trace, 4096
        )
        first = serve_in_thread(registry, sharded_config())
        recorded = self.record_checkpoints(first)
        host, port = first.address
        client = sharded_client(host, port).connect()
        try:
            client.open("bitcount", t0=trace.iq.t0)
            reports = []
            for chunk in trace.iq.iter_chunks(4096):
                reports.extend(client.send(chunk))
            # No client drain: the server-side queue is still busy when
            # the drain hits, mid kernel round.
            stats = first.drain()
            assert stats["sessions_suspended"] == 1
            first.stop()
            assert len(recorded) == len(set(recorded))
            with serve_in_thread(
                registry, sharded_config(port=port)
            ) as second:
                reports.extend(client.drain())
                summary = client.close()
                assert client.reconnects >= 1
                assert second.stats.sessions_resumed == 1
                assert_matches_local(
                    reports, summary, client, local_reports, local_summary
                )
        finally:
            client.disconnect()
            first.stop()

    def test_checkpoint_of_evicted_session_leaves_no_spill(self, registry):
        # The eviction race: _on_evict drops the spill while a
        # checkpoint's pool-thread write is in flight; the write lands
        # afterwards and must be undone, not resurrect the session.
        import asyncio

        detector = detector_for("bitcount")
        trace = detector.source.capture(seed=TINY.monitor_seed(0))
        with serve_in_thread(registry, sharded_config()) as handle:
            host, port = handle.address
            client = sharded_client(host, port).connect()
            try:
                client.open("bitcount", t0=trace.iq.t0)
                client.send(next(trace.iq.iter_chunks(4096)))
                client.drain()
                server = handle.server
                state = server._states[client.session_id]

                async def evicted_mid_checkpoint():
                    state.evicted = True
                    return await server._checkpoint_session(state)

                durable = asyncio.run_coroutine_threadsafe(
                    evicted_mid_checkpoint(), handle._loop
                ).result(timeout=10)
                assert durable is False
                assert not server._spill_path(client.session_id).exists()
            finally:
                client.disconnect()
