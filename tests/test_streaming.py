"""Streaming engine: bit-identity with batch, fleet multiplexing, O(1) state.

The load-bearing guarantee (DESIGN.md D17): for *any* chunking of the
same signal, the streaming monitor's reassembled result equals
``Monitor.run_signal`` exactly -- same windows, same tracked regions,
same reports at the same indices, same status. The sweep below pins that
across every MiBench program and chunk sizes chosen to stress the
overlap buffer (primes, powers of two, sub-window sizes, whole-signal).
"""

import numpy as np
import pytest

from repro.core.monitor import Monitor, MonitorResult
from repro.core.stft import (
    QF_DEAD,
    QF_GAPPED,
    StreamingQuality,
    StreamingStft,
    stft,
    window_quality,
)
from repro.em.faults import FaultInjector, SampleDropFault, SaturationFault
from repro.em.scenario import EmScenario
from repro.errors import ConfigurationError, MonitoringError, SignalError
from repro.experiments.runner import Scale, build_detector
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix
from repro.stream import FleetScheduler, StreamingMonitor
from repro.types import Signal

TINY = Scale(train_runs=2, clean_runs=1, injected_runs=1, group_sizes=(8, 16))

_DETECTORS = {}


def detector_for(name):
    """One tiny-scale detector per program, built lazily and cached."""
    if name not in _DETECTORS:
        _DETECTORS[name] = build_detector(BENCHMARKS[name](), TINY, source="em")
    return _DETECTORS[name]


def assert_results_equal(streamed: MonitorResult, batch: MonitorResult):
    np.testing.assert_array_equal(streamed.times, batch.times)
    assert streamed.tracked == batch.tracked
    assert streamed.reports == batch.reports
    assert streamed.report_indices == batch.report_indices
    np.testing.assert_array_equal(
        streamed.rejection_flags, batch.rejection_flags
    )
    np.testing.assert_array_equal(streamed.group_sizes, batch.group_sizes)
    np.testing.assert_array_equal(
        streamed.unscorable_flags, batch.unscorable_flags
    )
    assert streamed.status == batch.status


def stream_in_chunks(model, signal, chunk_samples):
    monitor = StreamingMonitor(model, keep_history=True)
    for start in range(0, len(signal.samples), chunk_samples):
        monitor.feed(signal.samples[start : start + chunk_samples])
    monitor.finish()
    return monitor


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("chunk_samples", [997, 4096, 4099])
    def test_every_program_every_chunking(self, name, chunk_samples):
        detector = detector_for(name)
        signal = detector.source.capture(seed=TINY.monitor_seed(0)).iq
        batch = Monitor(detector.model).run_signal(signal)
        monitor = stream_in_chunks(detector.model, signal, chunk_samples)
        assert_results_equal(monitor.result(), batch)

    @pytest.mark.parametrize(
        "chunk_samples",
        # Sub-window primes, the hop, window +/- 1, and the whole signal.
        [97, 256, 509, 511, 513, 1021, 2048, 10**9],
    )
    def test_chunk_size_sweep_stresses_overlap_buffer(self, chunk_samples):
        detector = detector_for("bitcount")
        signal = detector.source.capture(seed=TINY.monitor_seed(1)).iq
        batch = Monitor(detector.model).run_signal(signal)
        monitor = stream_in_chunks(detector.model, signal, chunk_samples)
        assert_results_equal(monitor.result(), batch)

    def test_injected_run_detects_identically(self):
        detector = detector_for("bitcount")
        detector.source.simulator.set_loop_injection(
            INJECTION_LOOPS["bitcount"], injection_mix(4, 4), 1.0
        )
        try:
            signal = detector.source.capture(seed=TINY.injected_seed(0)).iq
        finally:
            detector.source.simulator.clear_injections()
        batch = Monitor(detector.model).run_signal(signal)
        assert batch.reports, "injection must be detectable for this test"
        monitor = stream_in_chunks(detector.model, signal, 1009)
        assert_results_equal(monitor.result(), batch)

    def test_signal_chunks_accepted_and_rate_checked(self):
        detector = detector_for("dijkstra")
        signal = detector.source.capture(seed=TINY.monitor_seed(2)).iq
        batch = Monitor(detector.model).run_signal(signal)
        monitor = StreamingMonitor(detector.model, keep_history=True)
        for chunk in signal.iter_chunks(2999):
            monitor.feed(chunk)
        assert_results_equal(monitor.result(), batch)
        with pytest.raises(SignalError):
            monitor.feed(Signal(np.zeros(8), signal.sample_rate * 2))

    def test_run_convenience_matches_feed_loop(self):
        detector = detector_for("sha")
        signal = detector.source.capture(seed=TINY.monitor_seed(3)).iq
        batch = Monitor(detector.model).run_signal(signal)
        result = StreamingMonitor(detector.model).run(
            signal.iter_chunks(1777)
        )
        assert_results_equal(result, batch)


class TestStreamingState:
    def test_result_requires_keep_history(self):
        detector = detector_for("bitcount")
        monitor = StreamingMonitor(detector.model)
        with pytest.raises(MonitoringError):
            monitor.result()

    def test_early_exit_stops_at_first_anomaly(self):
        detector = detector_for("bitcount")
        detector.source.simulator.set_loop_injection(
            INJECTION_LOOPS["bitcount"], injection_mix(4, 4), 1.0
        )
        try:
            signal = detector.source.capture(seed=TINY.injected_seed(1)).iq
        finally:
            detector.source.simulator.clear_injections()
        monitor = StreamingMonitor(detector.model, early_exit=True)
        fed_after_stop = 0
        for chunk in signal.iter_chunks(4096):
            out = monitor.feed(chunk)
            if monitor.stopped:
                fed_after_stop += 1
                assert out == [] or out[-1].reports
        assert monitor.stopped
        assert fed_after_stop > 0
        summary = monitor.finish()
        assert summary.stopped_early
        assert summary.detected
        # The stream truncates right after the reporting window.
        assert summary.reports[-1].kind == "anomaly"

    def test_finish_is_idempotent(self):
        detector = detector_for("bitcount")
        monitor = StreamingMonitor(detector.model, session_id="dev-1")
        monitor.feed(np.zeros(2048, dtype=complex))
        first = monitor.finish()
        assert monitor.finish() is first
        assert first.session_id == "dev-1"
        assert monitor.feed(np.zeros(2048, dtype=complex)) == []

    def test_resident_state_is_flat(self):
        detector = detector_for("bitcount")
        signal = detector.source.capture(seed=TINY.monitor_seed(4)).iq
        monitor = StreamingMonitor(detector.model)
        sizes = []
        for chunk in signal.iter_chunks(4096):
            monitor.feed(chunk)
            sizes.append(monitor.resident_bytes())
        warm = sizes[len(sizes) // 2 :]
        assert max(warm) <= 2 * min(warm)

    def test_summary_counts(self):
        detector = detector_for("gsm")
        signal = detector.source.capture(seed=TINY.monitor_seed(5)).iq
        monitor = StreamingMonitor(detector.model)
        n_chunks = 0
        for chunk in signal.iter_chunks(3001):
            monitor.feed(chunk)
            n_chunks += 1
        summary = monitor.finish()
        assert summary.chunks == n_chunks
        assert summary.samples == len(signal.samples)
        batch = Monitor(detector.model).run_signal(signal)
        assert summary.windows == len(batch.times)


class TestMonitorResultConcat:
    def test_empty(self):
        merged = MonitorResult.concat([])
        assert len(merged.times) == 0
        assert merged.reports == []
        assert merged.status == "ok"

    def test_report_indices_rebased(self):
        detector = detector_for("bitcount")
        detector.source.simulator.set_loop_injection(
            INJECTION_LOOPS["bitcount"], injection_mix(4, 4), 1.0
        )
        try:
            signal = detector.source.capture(seed=TINY.injected_seed(2)).iq
        finally:
            detector.source.simulator.clear_injections()
        batch = Monitor(detector.model).run_signal(signal)
        assert batch.report_indices
        monitor = StreamingMonitor(detector.model, keep_history=True)
        chunk_results = []
        for chunk in signal.iter_chunks(997):
            chunk_results.extend(monitor.feed(chunk))
        # Per-chunk indices are chunk-local ...
        assert all(
            i < len(r.times) for r in chunk_results for i in r.report_indices
        )
        # ... and concat re-bases them to the global window axis.
        assert monitor.result().report_indices == batch.report_indices


class TestFleet:
    def test_32_sessions_identical_to_isolated(self):
        detector = detector_for("bitcount")
        captures = [
            detector.source.capture(seed=TINY.monitor_seed(100 + s))
            for s in range(8)
        ]
        isolated = [
            Monitor(detector.model).run_signal(c.iq).reports for c in captures
        ]
        fleet = FleetScheduler(max_sessions=32)
        # 32 concurrent sessions over 8 distinct captures: session s
        # replays capture s % 8, so correctness shows as groups of equal
        # outcomes that match the isolated runs.
        for s in range(32):
            fleet.add_session(
                f"dev-{s:03d}", detector.model,
                source=captures[s % 8].iter_chunks(2048 + 64 * s),
            )
        assert len(fleet) == 32
        summaries = fleet.run()
        assert len(summaries) == 32
        assert len(fleet) == 0
        for s in range(32):
            assert summaries[f"dev-{s:03d}"].reports == isolated[s % 8]

    def test_capacity_and_duplicate_rejected(self):
        detector = detector_for("bitcount")
        fleet = FleetScheduler(max_sessions=1)
        fleet.add_session("a", detector.model)
        with pytest.raises(ConfigurationError):
            fleet.add_session("a", detector.model)
        with pytest.raises(ConfigurationError):
            fleet.add_session("b", detector.model)
        fleet.close_session("a")
        fleet.add_session("b", detector.model)

    def test_push_mode_feed_and_callback(self):
        detector = detector_for("dijkstra")
        signal = detector.source.capture(seed=TINY.monitor_seed(6)).iq
        seen = []
        fleet = FleetScheduler(
            on_result=lambda sid, result: seen.append((sid, len(result.times)))
        )
        fleet.add_session("push-1", detector.model)
        for chunk in signal.iter_chunks(4096):
            fleet.feed("push-1", chunk)
        summary = fleet.close_session("push-1")
        assert summary.windows == sum(n for _, n in seen)
        assert {sid for sid, _ in seen} == {"push-1"}
        with pytest.raises(MonitoringError):
            fleet.feed("push-1", signal.samples[:100])

    def test_early_exit_frees_slots_during_round_robin(self):
        detector = detector_for("bitcount")
        detector.source.simulator.set_loop_injection(
            INJECTION_LOOPS["bitcount"], injection_mix(4, 4), 1.0
        )
        try:
            bad = detector.source.capture(seed=TINY.injected_seed(3))
        finally:
            detector.source.simulator.clear_injections()
        n_chunks = len(list(bad.iter_chunks(4096)))
        fleet = FleetScheduler(max_sessions=4, early_exit=True)
        fleet.add_session("bad", detector.model,
                          source=bad.iter_chunks(4096))
        summaries = fleet.run()
        assert len(fleet) == 0  # the slot was freed at the early exit
        assert summaries["bad"].stopped_early
        assert summaries["bad"].detected
        # Early exit abandoned the rest of the source.
        assert summaries["bad"].chunks < n_chunks


class TestStreamingStft:
    def test_matches_batch_stft(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=10_000) + 1j * rng.normal(size=10_000)
        signal = Signal(samples, 1e6)
        batch = stft(signal, window_samples=512, overlap=0.5)
        streaming = StreamingStft(1e6, window_samples=512, overlap=0.5)
        chunks = []
        for start in range(0, len(samples), 613):
            chunks.append(streaming.feed(samples[start : start + 613]))
        power = np.concatenate([c.power for c in chunks if len(c)])
        times = np.concatenate([c.times for c in chunks if len(c)])
        np.testing.assert_array_equal(power, batch.power)
        np.testing.assert_array_equal(times, batch.times)
        assert streaming.samples_seen == len(samples)
        assert streaming.pending_samples < 512

    def test_real_stream_rejects_complex_chunk(self):
        streaming = StreamingStft(1e6, window_samples=64)
        streaming.feed(np.zeros(32))
        with pytest.raises(SignalError):
            streaming.feed(np.zeros(32, dtype=complex))

    def test_t0_offsets_times(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=4096)
        base = StreamingStft(1e6, window_samples=256).feed(samples)
        offset = StreamingStft(1e6, window_samples=256, t0=1.5).feed(samples)
        np.testing.assert_allclose(offset.times - base.times, 1.5)


class TestStreamingQuality:
    def _faulted_signal(self):
        detector = detector_for("bitcount")
        scenario = EmScenario.build(
            BENCHMARKS["bitcount"](),
            core=detector.source.simulator.core,
            faults=FaultInjector(
                faults=(
                    SampleDropFault(rate_per_s=400.0),
                    SaturationFault(rate_per_s=400.0),
                )
            ),
        )
        return scenario.capture(seed=7).iq

    def test_gap_and_dead_flags_are_exact(self):
        """Zero-run flags are causal, so they match batch bit-for-bit."""
        signal = self._faulted_signal()
        batch = window_quality(signal, window_samples=512, overlap=0.5)
        streaming = StreamingQuality(512, 0.5)
        flags = []
        for chunk in signal.iter_chunks(733):
            flags.append(streaming.feed(chunk.samples))
        streamed = np.concatenate(flags)
        assert len(streamed) == len(batch)
        mask = QF_GAPPED | QF_DEAD
        np.testing.assert_array_equal(streamed & mask, batch & mask)

    def test_causal_flags_agree_on_clean_windows(self):
        """Running statistics converge to the capture-global ones."""
        signal = self._faulted_signal()
        batch = window_quality(signal, window_samples=512, overlap=0.5)
        streaming = StreamingQuality(
            512, 0.5, full_scale=float(np.abs(signal.samples).max())
        )
        flags = []
        for chunk in signal.iter_chunks(4096):
            flags.append(streaming.feed(chunk.samples))
        streamed = np.concatenate(flags)
        agreement = np.mean((streamed != 0) == (batch != 0))
        assert agreement > 0.95
