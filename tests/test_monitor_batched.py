"""Batched-vs-reference monitor equivalence.

The batched hot path (sorted per-dim reference runs, incrementally sorted
history buffers, one vectorized K-S call per window) computes the exact
same integer-arithmetic statistic as the per-dimension reference path, so
every observable of a monitoring pass must be bit-identical between the
two. These tests pin that down on clean, injected, and fault-corrupted
traces.
"""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.core.monitor import Monitor, _SortedDimHistory
from repro.em.faults import FaultInjector, SampleDropFault, SaturationFault
from repro.em.scenario import EmScenario
from repro.experiments.runner import Scale, build_detector
from repro.programs.workloads import injection_mix, multi_peak_loop_program

TINY = Scale(train_runs=3, clean_runs=1, injected_runs=1, group_sizes=(8, 16))


def assert_identical(batched, reference):
    np.testing.assert_array_equal(batched.times, reference.times)
    assert batched.tracked == reference.tracked
    np.testing.assert_array_equal(
        batched.rejection_flags, reference.rejection_flags
    )
    np.testing.assert_array_equal(batched.group_sizes, reference.group_sizes)
    np.testing.assert_array_equal(
        batched.unscorable_flags, reference.unscorable_flags
    )
    assert batched.reports == reference.reports
    assert batched.report_indices == reference.report_indices
    assert batched.status == reference.status


def _both_paths(model, signal):
    return (
        Monitor(model, batched=True).run_signal(signal),
        Monitor(model, batched=False).run_signal(signal),
    )


class TestEquivalence:
    @pytest.fixture(scope="class")
    def detector(self):
        return build_detector(
            multi_peak_loop_program(trips=9000), TINY, source="power"
        )

    def test_clean_trace(self, detector):
        trace = detector.source.run(seed=TINY.monitor_seed(0))
        assert_identical(*_both_paths(detector.model, trace.power))

    def test_injected_trace(self, detector):
        simulator = detector.source
        simulator.set_loop_injection("L", injection_mix(4, 4), 1.0)
        trace = simulator.run(seed=TINY.injected_seed(0))
        simulator.clear_injections()
        batched, reference = _both_paths(detector.model, trace.power)
        assert_identical(batched, reference)
        assert batched.reports  # the injection is actually detected

    def test_forced_group_sizes(self, detector):
        trace = detector.source.run(seed=TINY.monitor_seed(1))
        for n in (16, 48):
            model = detector.with_group_size(n).model
            assert_identical(*_both_paths(model, trace.power))

    def test_quality_gated_faulted_trace(self):
        faults = FaultInjector(
            faults=(SampleDropFault(rate_per_s=150.0),
                    SaturationFault(rate_per_s=150.0))
        )
        detector = build_detector(
            multi_peak_loop_program(trips=9000), TINY, source="em"
        )
        scenario = EmScenario.build(
            detector.source.simulator.program,
            core=CoreConfig.iot_inorder(clock_hz=TINY.clock_hz),
            faults=faults,
        )
        trace = scenario.capture(seed=TINY.monitor_seed(2))
        assert trace.fault_spans  # the faults actually fired
        model = detector.with_quality_gating(True).model
        batched, reference = _both_paths(model, trace.iq)
        assert_identical(batched, reference)
        assert batched.unscorable_flags.any()


class TestSortedDimHistory:
    def test_matches_naive_window(self):
        # Random pushes (with NaN-free values), random window queries:
        # the buffer must agree with "sort the last n values" at every
        # step, across several compactions (pushes >> 2 * capacity).
        capacity = 16
        history = _SortedDimHistory(capacity)
        rng = np.random.default_rng(7)
        values = rng.normal(size=10 * capacity)
        for age, value in enumerate(values):
            history.insert(float(value), age)
            for n in (1, 3, capacity):
                got = history.query(age + 1 - n)
                expected = np.sort(values[max(0, age + 1 - n): age + 1])
                np.testing.assert_array_equal(got, expected)

    def test_duplicate_values(self):
        history = _SortedDimHistory(4)
        for age, value in enumerate([1.0, 1.0, 1.0, 2.0, 1.0, 2.0]):
            history.insert(value, age)
        np.testing.assert_array_equal(
            history.query(2), [1.0, 1.0, 2.0, 2.0]
        )
