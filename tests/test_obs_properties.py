"""Property-based tests (hypothesis) for the observability layer.

Three invariants the rest of the PR leans on:

- manifests survive a write -> load round-trip with an empty diff, for
  arbitrary JSON-able result structures (including NaN/inf floats);
- span forests are well-formed however spans nest: parents precede
  children, no orphans, and a parent's wall time bounds the sum of its
  children's (children run strictly inside the parent's window);
- counters are exact under concurrent threaded increments (the merge
  path and the lock, not luck).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs


# Module-scoped (not per-test): hypothesis rejects function-scoped
# fixtures under @given; each property resets the state it needs itself.
@pytest.fixture(autouse=True, scope="module")
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=True, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)


class TestManifestRoundTrip:
    @given(result=json_values)
    @settings(max_examples=40, deadline=None)
    def test_write_load_diff_empty(self, result, tmp_path_factory):
        manifest = obs.build_manifest("prop", result=result)
        path = tmp_path_factory.mktemp("manifests") / "m.json"
        obs.write_manifest(manifest, path)
        loaded = obs.load_manifest(path)
        assert obs.diff_manifests(manifest, loaded, ignore=()) == []
        assert obs.diff_manifests(loaded, manifest) == []


# A nesting program: each entry opens a span and the integer says how many
# child spans to open inside it (recursively consumed from the same list).
nesting_programs = st.lists(
    st.integers(min_value=0, max_value=3), min_size=1, max_size=25
)


def _run_program(counts):
    """Consume ``counts`` into a real nested span execution."""
    it = iter(counts)

    def open_one(n_children: int) -> None:
        with obs.span(f"s{n_children}"):
            for _ in range(n_children):
                child = next(it, None)
                if child is None:
                    return
                open_one(child)

    for n in it:
        open_one(n)


class TestSpanNesting:
    @given(counts=nesting_programs)
    @settings(max_examples=60, deadline=None)
    def test_forest_invariants(self, counts):
        obs.reset()
        obs.enable()
        _run_program(counts)
        spans = obs.get_collector().spans
        assert spans, "every program opens at least one span"
        children_wall = [0.0] * len(spans)
        for i, record in enumerate(spans):
            # Parents precede their children (no orphans, no cycles).
            assert -1 <= record.parent < i
            assert record.t_start > 0.0  # all spans completed
            assert record.wall_s >= 0.0 and record.cpu_s >= 0.0
            if record.parent >= 0:
                children_wall[record.parent] += record.wall_s
        for i, record in enumerate(spans):
            # Children execute strictly inside the parent's window, so
            # their wall times sum to at most the parent's (plus float
            # rounding).
            assert children_wall[i] <= record.wall_s + 1e-9

    @given(counts=nesting_programs)
    @settings(max_examples=30, deadline=None)
    def test_export_merge_preserves_forest_shape(self, counts):
        obs.reset()
        obs.enable()
        _run_program(counts)
        exported = obs.export_spans(reset=True)
        obs.merge_spans(exported)
        spans = obs.get_collector().spans
        assert len(spans) == len(exported)
        assert [s.name for s in spans] == [e["name"] for e in exported]
        for i, record in enumerate(spans):
            assert -1 <= record.parent < i


class TestCounterConcurrency:
    @given(
        n_threads=st.integers(min_value=2, max_value=8),
        per_thread=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_concurrent_increments_are_exact(self, n_threads, per_thread):
        obs.reset()
        obs.enable()
        c = obs.counter("prop", "hits")
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread
        assert obs.snapshot()["counters"]["prop/hits"] == n_threads * per_thread
