"""Unit tests for the WATTCH-style power model (repro.arch.power)."""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.pipeline import schedule_path
from repro.arch.power import PowerModel, PowerParams
from repro.programs.ir import Instr, MemRef, OpClass


def waveform_of(instrs, core=None):
    core = core or CoreConfig()
    model = PowerModel(core)
    return model, model.waveform(schedule_path(instrs, core))


class TestPowerModel:
    def test_empty_path_static_only(self):
        core = CoreConfig()
        model = PowerModel(core)
        wave = model.waveform(schedule_path([], core))
        assert len(wave) == 0

    def test_static_floor(self):
        model, wave = waveform_of([Instr(OpClass.IADD, dst="a")])
        assert np.all(wave >= model.params.static_per_cycle - 1e-12)

    def test_total_energy_conserved(self):
        """Integrated waveform = static + frontend + op energies."""
        core = CoreConfig(issue_width=1)
        instrs = [Instr(OpClass.IADD, dst=f"r{i}") for i in range(5)]
        model = PowerModel(core)
        sched = schedule_path(instrs, core)
        wave = model.waveform(sched)
        params = model.params
        expected = (
            sched.cycles * params.static_per_cycle
            + 5 * params.frontend_per_instr
            + 5 * params.op_energy[OpClass.IADD]
        )
        assert wave.sum() == pytest.approx(expected)

    def test_memory_ops_add_cache_energy(self):
        core = CoreConfig(issue_width=1)
        model = PowerModel(core)
        load = [Instr(OpClass.LOAD, dst="v", mem=MemRef("a"))]
        add = [Instr(OpClass.IADD, dst="v")]
        e_load = model.waveform(schedule_path(load, core)).sum()
        e_add = model.waveform(schedule_path(add, core)).sum()
        sched_l = schedule_path(load, core)
        sched_a = schedule_path(add, core)
        # Normalize out the static contribution of differing lengths.
        e_load -= sched_l.cycles * model.params.static_per_cycle
        e_add -= sched_a.cycles * model.params.static_per_cycle
        assert e_load > e_add

    def test_ooo_frontend_overhead(self):
        instrs = [Instr(OpClass.IADD, dst="a")]
        io_core = CoreConfig(kind="inorder", issue_width=1)
        ooo_core = CoreConfig(kind="ooo", issue_width=1, rob_size=8)
        io_model = PowerModel(io_core)
        ooo_model = PowerModel(ooo_core)
        e_io = io_model.waveform(schedule_path(instrs, io_core))
        e_ooo = ooo_model.waveform(schedule_path(instrs, ooo_core))
        static_io = len(e_io) * io_model.params.static_per_cycle
        static_ooo = len(e_ooo) * ooo_model.params.static_per_cycle
        assert e_ooo.sum() - static_ooo > e_io.sum() - static_io

    def test_stall_power_between_idle_and_active(self):
        model = PowerModel(CoreConfig())
        assert model.idle_power < model.stall_power

    def test_miss_energy_dram_larger(self):
        model = PowerModel(CoreConfig())
        assert model.miss_energy(to_dram=True) > model.miss_energy(to_dram=False)

    def test_heavy_ops_use_more_energy(self):
        params = PowerParams()
        assert params.op_energy[OpClass.IDIV] > params.op_energy[OpClass.IADD]
        assert params.op_energy[OpClass.SYSCALL] > params.op_energy[OpClass.CALL]
