"""Streaming-engine benchmark: chunk latency, memory flatness, fleet scale.

Measures the serving properties DESIGN.md D17 promises --

- per-chunk ``feed`` latency stays flat as the stream grows (first vs
  last quarter of a long stream),
- resident stream state stays O(1) in the stream length,
- streaming throughput relative to the batch ``run_signal`` path over
  the same samples,
- a fleet sweep (8/32/128/512 sessions) round-robins to completion
  through the batch kernel with per-session reports identical to
  isolated runs, reporting aggregate and per-session throughput plus
  scaling efficiency relative to the smallest fleet

-- and writes ``BENCH_streaming.json`` at the repo root.

Run as pytest (``REPRO_SCALE=quick`` by default) or directly::

    PYTHONPATH=src python benchmarks/bench_streaming.py --sessions 32
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments.runner import Scale, build_detector
from repro.programs.mibench import BENCHMARKS
from repro.stream import FleetScheduler, StreamingMonitor

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUTPUT = _REPO_ROOT / "BENCH_streaming.json"

_CHUNK_SAMPLES = 4096

#: Session counts swept by the fleet benchmark.
_FLEET_SWEEP = (8, 32, 128, 512)

#: Distinct captures generated for the sweep; larger fleets cycle these
#: so the isolated reference cost stays bounded while every session
#: still streams a full, individually-checked signal.
_MAX_DISTINCT_CAPTURES = 32


def _long_stream(detector, scale, repeats):
    """One capture's IQ tiled into a long stream (seeded per repeat)."""
    parts = [
        detector.source.capture(seed=scale.monitor_seed(k)).iq.samples
        for k in range(repeats)
    ]
    return np.concatenate(parts)


def _chunk_latency(detector, samples):
    """Feed one long stream; return latency and memory flatness stats."""
    monitor = StreamingMonitor(detector.model)
    latencies = []
    resident = []
    for start in range(0, len(samples), _CHUNK_SAMPLES):
        chunk = samples[start : start + _CHUNK_SAMPLES]
        t0 = time.perf_counter()
        monitor.feed(chunk)
        latencies.append(time.perf_counter() - t0)
        resident.append(monitor.resident_bytes())
    monitor.finish()
    lat = np.asarray(latencies)
    quarter = max(1, len(lat) // 4)
    res = np.asarray(resident, dtype=float)
    return {
        "chunks": len(lat),
        "chunk_samples": _CHUNK_SAMPLES,
        "windows": monitor.windows_seen,
        "median_latency_us": float(np.median(lat) * 1e6),
        "p99_latency_us": float(np.quantile(lat, 0.99) * 1e6),
        "first_quarter_median_us": float(np.median(lat[:quarter]) * 1e6),
        "last_quarter_median_us": float(np.median(lat[-quarter:]) * 1e6),
        "resident_bytes_median": float(np.median(res)),
        "resident_bytes_max": float(res.max()),
        # Steady-state memory must not scale with the stream: the max
        # over the whole run staying within 2x of the median means no
        # per-chunk accumulation survived.
        "memory_flat": bool(res.max() <= 2.0 * np.median(res)),
    }


def _throughput(detector, samples, sample_rate):
    """Streaming vs batch windows/sec over the identical signal."""
    from repro.types import Signal

    signal = Signal(samples, sample_rate)
    t0 = time.perf_counter()
    batch = detector.monitor(signal)
    t_batch = time.perf_counter() - t0

    monitor = StreamingMonitor(detector.model)
    t0 = time.perf_counter()
    for start in range(0, len(samples), _CHUNK_SAMPLES):
        monitor.feed(samples[start : start + _CHUNK_SAMPLES])
    monitor.finish()
    t_stream = time.perf_counter() - t0
    windows = monitor.windows_seen
    return {
        "windows": windows,
        "batch_s": t_batch,
        "stream_s": t_stream,
        "batch_windows_per_sec": windows / t_batch if t_batch else None,
        "stream_windows_per_sec": windows / t_stream if t_stream else None,
        "stream_vs_batch": t_batch / t_stream if t_stream else None,
        "identical_windows": windows == len(batch.result.times),
    }


def _fleet_point(detector, captures, isolated, sessions):
    """Round-robin ``sessions`` concurrent streams; check vs isolation."""
    distinct = len(captures)
    fleet = FleetScheduler(max_sessions=sessions)
    for s in range(sessions):
        fleet.add_session(
            f"dev-{s:03d}", detector.model,
            source=captures[s % distinct].iter_chunks(_CHUNK_SAMPLES),
        )
    t0 = time.perf_counter()
    while fleet.step_round():
        pass
    elapsed = time.perf_counter() - t0
    summaries = fleet.summaries
    fleet_reports = [
        [r.time for r in summaries[f"dev-{s:03d}"].reports]
        for s in range(sessions)
    ]
    expected = [isolated[s % distinct] for s in range(sessions)]
    windows = sum(s.windows for s in summaries.values())
    wps = windows / elapsed if elapsed else None
    return {
        "sessions": sessions,
        "total_windows": windows,
        "seconds": elapsed,
        "windows_per_sec": wps,
        "windows_per_sec_per_session": wps / sessions if wps else None,
        "identical_to_isolated": fleet_reports == expected,
    }


def _fleet_sweep(detector, scale, counts):
    """Sweep fleet sizes over shared captures and isolated references.

    ``scaling_efficiency`` is each point's aggregate throughput relative
    to the smallest fleet's: 1.0 means adding sessions costs nothing,
    below 1.0 quantifies the per-session overhead that batching cannot
    amortize.
    """
    distinct = min(max(counts), _MAX_DISTINCT_CAPTURES)
    captures = [
        detector.source.capture(seed=scale.monitor_seed(100 + s))
        for s in range(distinct)
    ]
    isolated = [
        [r.time for r in detector.monitor(c).result.reports] for c in captures
    ]
    points = [
        _fleet_point(detector, captures, isolated, n) for n in counts
    ]
    base = points[0]["windows_per_sec"]
    for point in points:
        point["scaling_efficiency"] = (
            point["windows_per_sec"] / base
            if base and point["windows_per_sec"] else None
        )
    return points


def run_benchmark(scale_name="quick", sessions=32, repeats=8,
                  sweep=_FLEET_SWEEP):
    scale = {"quick": Scale.quick, "default": Scale.default,
             "paper": Scale.paper}[scale_name]()
    detector = build_detector(BENCHMARKS["bitcount"](), scale, source="em")
    samples = _long_stream(detector, scale, repeats)

    counts = tuple(sorted(set(sweep) | {sessions}))
    points = _fleet_sweep(detector, scale, counts)
    report = {
        "benchmark": "streaming-engine",
        "scale": scale_name,
        "stream_samples": len(samples),
        "latency": _chunk_latency(detector, samples),
        "throughput": _throughput(
            detector, samples, detector.model.sample_rate
        ),
        # "fleet" keeps its original single-point shape for existing
        # consumers; the full sweep lives under "fleet_sweep".
        "fleet": next(p for p in points if p["sessions"] == sessions),
        "fleet_sweep": points,
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _format(report):
    lat = report["latency"]
    thr = report["throughput"]
    lines = [
        f"streaming benchmark (scale={report['scale']}, "
        f"{report['stream_samples']:,} samples)",
        f"  chunk latency      : median {lat['median_latency_us']:.0f} us, "
        f"p99 {lat['p99_latency_us']:.0f} us",
        f"  latency drift      : first-quarter "
        f"{lat['first_quarter_median_us']:.0f} us -> last-quarter "
        f"{lat['last_quarter_median_us']:.0f} us",
        f"  resident state     : median {lat['resident_bytes_median']:,.0f} B, "
        f"max {lat['resident_bytes_max']:,.0f} B "
        f"(flat={lat['memory_flat']})",
        f"  stream throughput  : {thr['stream_windows_per_sec']:,.0f} "
        f"windows/s ({thr['stream_vs_batch']:.2f}x batch)",
    ]
    for point in report["fleet_sweep"]:
        lines.append(
            f"  fleet x{point['sessions']:<4d}        : "
            f"{point['windows_per_sec']:,.0f} windows/s aggregate, "
            f"{point['windows_per_sec_per_session']:,.0f}/session, "
            f"efficiency {point['scaling_efficiency']:.2f}, "
            f"identical={point['identical_to_isolated']}"
        )
    lines.append(f"  -> {_OUTPUT}")
    return "\n".join(lines)


def test_streaming_benchmark(scale, show):
    import os

    scale_name = os.environ.get("REPRO_SCALE", "quick")
    report = run_benchmark(scale_name=scale_name)
    show(_format(report))
    assert report["latency"]["memory_flat"], (
        "resident stream state grew with the stream length"
    )
    assert report["throughput"]["identical_windows"]
    for point in report["fleet_sweep"]:
        assert point["identical_to_isolated"], (
            f"{point['sessions']}-session fleet reports diverged from "
            f"isolated runs"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "paper"))
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=8,
                        help="captures tiled into the long latency stream")
    args = parser.parse_args()
    result = run_benchmark(
        scale_name=args.scale, sessions=args.sessions, repeats=args.repeats
    )
    print(_format(result))
    ok = (
        result["latency"]["memory_flat"]
        and result["fleet"]["identical_to_isolated"]
    )
    sys.exit(0 if ok else 1)
