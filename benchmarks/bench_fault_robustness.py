"""Graceful degradation under acquisition faults (DESIGN.md D14).

A fielded EDDIE receiver is not the lab oscilloscope of Section 5:
cheap SDR front ends drop sample buffers on USB overflow, saturate on
nearby transmitters, and step their gain mid-capture. None of those
events is a program anomaly, yet each distorts the short-term spectra
the monitor scores, so a monitor that scores every window turns front
end hiccups into intrusion reports.

This bench sweeps acquisition-fault rate x type over three MiBench
programs and contrasts two monitors on the same faulty captures:

* **ungated** -- the baseline monitor, which scores every window;
* **gated** -- the same model with ``quality_gating`` enabled, which
  marks clipped/gapped/dead/outlier windows unscorable, freezes the
  anomaly streak across them, and resynchronizes after gaps.

Expected shape (the headline property asserted below): under a
sample-drop + clipping mix the gated monitor's false-positive rate
stays at the fault-free baseline while the ungated monitor's is several
times worse, and detection of the standard 8-instruction loop injection
survives gating on the same faulty front end.
"""

import numpy as np

from repro.arch.config import CoreConfig
from repro.core.detector import Eddie, TrainedDetector
from repro.core.metrics import aggregate_metrics
from repro.em.faults import (
    FaultInjector,
    SampleDropFault,
    SaturationFault,
    standard_fault_mix,
)
from repro.em.scenario import EmScenario
from repro.experiments.report import format_table
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix

_PROGRAMS = ("sha", "dijkstra", "stringsearch")

_MEAN_DURATION_S = 2e-4

# The sweep grid: fault type x event rate. "mixed" at 1000 events/s is
# the headline cell the assertions run on; each fault type at that rate
# corrupts rate * mean_duration = 20% of the stream (a handful of
# ~0.2 ms events per millisecond-scale capture -- quick-scale captures
# are short, so the per-second rate is high even though only a few
# events land in any one capture).
_HEADLINE_RATE = 1000.0


def _injector(fault_type: str, rate_per_s: float) -> FaultInjector:
    if fault_type == "drops":
        return FaultInjector(
            faults=(SampleDropFault(rate_per_s=rate_per_s,
                                    mean_duration_s=_MEAN_DURATION_S),),
        )
    if fault_type == "clipping":
        return FaultInjector(
            faults=(SaturationFault(rate_per_s=rate_per_s,
                                    mean_duration_s=_MEAN_DURATION_S),),
        )
    if fault_type == "mixed":
        return standard_fault_mix(
            rate_per_s, rate_per_s, mean_duration_s=_MEAN_DURATION_S
        )
    raise ValueError(fault_type)


_GRID = (
    ("drops", _HEADLINE_RATE),
    ("clipping", _HEADLINE_RATE),
    ("mixed", _HEADLINE_RATE / 2),
    ("mixed", _HEADLINE_RATE),
    ("mixed", _HEADLINE_RATE * 2),
)


def _monitor_clean(detector, scale, runs=None):
    # Fault arrivals are bursty (a handful of events per millisecond
    # capture), so per-run FP variance is large; the faulty cells pool
    # more runs than the usual clean sweep to stabilize the aggregate.
    return aggregate_metrics([
        detector.monitor(seed=scale.monitor_seed(k)).metrics
        for k in range(runs if runs is not None else scale.clean_runs)
    ])


def test_fault_robustness(benchmark, scale, show):
    def run():
        core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
        results = {}
        for name in _PROGRAMS:
            scenario = EmScenario.build(BENCHMARKS[name](), core=core)
            detector = Eddie().train(
                BENCHMARKS[name](), scenario=scenario,
                runs=scale.train_runs, seed=scale.train_seed(),
            )
            base = _monitor_clean(detector, scale)
            cells = {}
            for fault_type, rate in _GRID:
                faulty = EmScenario(
                    simulator=scenario.simulator,
                    channel=scenario.channel,
                    receiver=scenario.receiver,
                    faults=_injector(fault_type, rate),
                )
                ungated = TrainedDetector(detector.model, source=faulty)
                gated = ungated.with_quality_gating(True)
                fault_runs = max(6, scale.clean_runs)
                um = _monitor_clean(ungated, scale, runs=fault_runs)
                gm = _monitor_clean(gated, scale, runs=fault_runs)
                cells[(fault_type, rate)] = {
                    "ungated_fp": um.false_positive_rate,
                    "gated_fp": gm.false_positive_rate,
                    "unscorable": gm.n_unscorable,
                    "groups": gm.n_groups,
                    "desyncs": gm.n_desyncs,
                    "coverage": gm.coverage,
                    "status": gm.status,
                }

            # Injection detection through the faulty, gated front end,
            # at the moderate and the headline mix.
            injection = {}
            for rate in (_HEADLINE_RATE / 2, _HEADLINE_RATE):
                faulty = EmScenario(
                    simulator=scenario.simulator, channel=scenario.channel,
                    receiver=scenario.receiver,
                    faults=_injector("mixed", rate),
                )
                gated = TrainedDetector(
                    detector.model, source=faulty
                ).with_quality_gating(True)
                faulty.simulator.set_loop_injection(
                    INJECTION_LOOPS[name], injection_mix(4, 4), 1.0
                )
                injected = aggregate_metrics([
                    gated.monitor(seed=scale.injected_seed(k)).metrics
                    for k in range(max(4, scale.injected_runs))
                ])
                faulty.simulator.clear_injections()
                injection[rate] = {
                    "detected": injected.detected,
                    "tpr": injected.true_positive_rate,
                    "latency_ms": (
                        injected.detection_latency * 1e3
                        if injected.detection_latency is not None else None
                    ),
                }

            results[name] = {
                "base_fp": base.false_positive_rate,
                "cells": cells,
                "injection": injection,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append([name, "(fault-free)", 0.0, r["base_fp"], r["base_fp"],
                     0, 0, "ok"])
        for (fault_type, rate), cell in r["cells"].items():
            duty = 100.0 * rate * _MEAN_DURATION_S
            duty *= 2 if fault_type == "mixed" else 1
            rows.append([
                name, f"{fault_type} @ {rate:.0f}/s", duty,
                cell["ungated_fp"], cell["gated_fp"],
                cell["unscorable"], cell["desyncs"], cell["status"],
            ])
    show(
        format_table(
            "Acquisition-fault robustness: ungated vs quality-gated monitor",
            ["Program", "Fault mix", "Duty (%)", "Ungated FP (%)",
             "Gated FP (%)", "Unscorable", "Desyncs", "Status"],
            rows,
        )
    )
    inj_rows = [
        [name, f"mixed @ {rate:.0f}/s", "yes" if inj["detected"] else "NO",
         inj["tpr"], inj["latency_ms"]]
        for name, r in results.items()
        for rate, inj in r["injection"].items()
    ]
    show(
        format_table(
            "Injection detection through the faulty, gated front end "
            "(8-instruction loop)",
            ["Program", "Fault mix", "Detected", "TPR (%)", "Latency (ms)"],
            inj_rows,
        )
    )

    # Headline property, per program, at the headline drop+clipping mix:
    # gating keeps clean-run FP within 2x of the fault-free baseline
    # (with a 1-point floor so a zero baseline stays meaningful), while
    # the ungated monitor on the identical captures is at least 5x worse
    # than the gated one -- and injection detection survives gating:
    # full TPR at the moderate mix, still detected at the headline mix.
    floor = 1.0  # percentage points
    for name, r in results.items():
        cell = r["cells"][("mixed", _HEADLINE_RATE)]
        gated_budget = max(2.0 * r["base_fp"], floor)
        assert cell["gated_fp"] <= gated_budget, (
            f"{name}: gated FP {cell['gated_fp']:.2f}% exceeds "
            f"{gated_budget:.2f}% (2x fault-free baseline)"
        )
        assert cell["desyncs"] == 0, f"{name}: monitor desynced"
        moderate = r["injection"][_HEADLINE_RATE / 2]
        assert moderate["detected"] and moderate["tpr"] >= 75.0, (
            f"{name}: TPR {moderate['tpr']:.0f}% under the moderate mix"
        )
        assert r["injection"][_HEADLINE_RATE]["detected"], (
            f"{name}: injection missed under gating at the headline mix"
        )
    pooled_ungated = float(np.mean(
        [r["cells"][("mixed", _HEADLINE_RATE)]["ungated_fp"]
         for r in results.values()]
    ))
    pooled_gated = float(np.mean(
        [r["cells"][("mixed", _HEADLINE_RATE)]["gated_fp"]
         for r in results.values()]
    ))
    assert pooled_ungated >= 5.0 * max(pooled_gated, floor / 2.0), (
        f"ungated FP {pooled_ungated:.2f}% is not >=5x the gated "
        f"{pooled_gated:.2f}% -- the fault mix no longer breaks the "
        "ungated monitor"
    )
