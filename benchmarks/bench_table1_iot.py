"""Regenerates Table 1: EDDIE on EM emanations of the IoT device."""

from repro.experiments import table1_iot


def test_table1_iot(benchmark, scale, show):
    result = benchmark.pedantic(table1_iot.run, args=(scale,), rounds=1, iterations=1)
    show(table1_iot.format(result))
    # Paper shape: every benchmark detects both injection kinds, average
    # accuracy ~95%, false positives in the low percents.
    assert all(r.detected_loop for r in result.rows)
    assert all(r.detected_burst for r in result.rows)
    assert result.mean_accuracy > 85.0
    assert result.mean_false_positives < 10.0
