"""Robustness to receiver quality: the paper's low-cost-SDR claim.

Section 5.1: EDDIE's results come from an expensive oscilloscope, but the
authors "confirm that EDDIE can work efficiently on such lower-cost
setups" (a <$800 USRP B200-mini) and envision a <$100 custom receiver.

This bench sweeps the receiver from lab-grade to cheap-SDR-grade --
dropping SNR, adding an 8-bit ADC, DC offset, IQ imbalance, and LO drift
-- and reports EDDIE's detection and false positives at each grade.
Expected shape: detection of the standard 8-instruction loop injection
survives all grades; false positives grow only modestly.
"""

import numpy as np

from repro.arch.config import CoreConfig
from repro.core.detector import Eddie
from repro.core.metrics import aggregate_metrics
from repro.em.channel import ChannelModel, Interferer
from repro.em.receiver import Receiver
from repro.em.scenario import EmScenario
from repro.experiments.report import format_table
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix

_GRADES = {
    "lab scope (30 dB, ideal)": dict(
        channel=ChannelModel(snr_db=30.0), receiver=Receiver()
    ),
    "USRP-class (20 dB, 12-bit)": dict(
        channel=ChannelModel(snr_db=20.0),
        receiver=Receiver(adc_bits=12),
    ),
    "cheap SDR (14 dB, 8-bit, impaired)": dict(
        channel=ChannelModel(
            snr_db=14.0, interferers=(Interferer(freq_hz=1.7e6, amplitude=0.08),)
        ),
        receiver=Receiver(
            adc_bits=8, dc_offset=0.05 + 0.03j, iq_imbalance_db=0.5,
            lo_drift_hz_per_s=2e5,
        ),
    ),
}

_PROGRAM = "sha"


def test_receiver_robustness(benchmark, scale, show):
    def run():
        core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
        results = {}
        for gi, (grade, parts) in enumerate(_GRADES.items()):
            # Each grade gets its own deterministic seed block: reusing
            # one seed across the sweep would hand every grade the same
            # noise/interference draw, making the "independent scenario"
            # comparison a single correlated sample.
            grade_base = 1000 * gi
            scenario = EmScenario.build(
                BENCHMARKS[_PROGRAM](), core=core,
                channel=parts["channel"], receiver=parts["receiver"],
            )
            detector = Eddie().train(
                BENCHMARKS[_PROGRAM](), scenario=scenario,
                runs=scale.train_runs, seed=scale.train_seed() + grade_base,
            )
            clean = aggregate_metrics([
                detector.monitor(seed=scale.monitor_seed(k) + grade_base).metrics
                for k in range(scale.clean_runs)
            ])
            scenario.simulator.set_loop_injection(
                INJECTION_LOOPS[_PROGRAM], injection_mix(4, 4), 1.0
            )
            injected = aggregate_metrics([
                detector.monitor(
                    seed=scale.injected_seed(k) + grade_base
                ).metrics
                for k in range(scale.injected_runs)
            ])
            scenario.simulator.clear_injections()
            results[grade] = {
                "detected": injected.detected,
                "latency_ms": (
                    injected.detection_latency * 1e3
                    if injected.detection_latency is not None else None
                ),
                "fp": clean.false_positive_rate,
                "coverage": clean.coverage,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [grade, "yes" if r["detected"] else "NO", r["latency_ms"],
         r["fp"], r["coverage"]]
        for grade, r in results.items()
    ]
    show(
        format_table(
            "Receiver-quality robustness (sha, 8-instruction loop injection)",
            ["Receiver grade", "Detected", "Latency (ms)", "False pos (%)",
             "Coverage (%)"],
            rows,
        )
    )
    # The paper's claim: detection survives the cheap setup.
    assert all(r["detected"] for r in results.values())
    fps = [r["fp"] for r in results.values()]
    assert max(fps) < 15.0
