"""Regenerates Figure 8: TPR vs latency for bursts outside loops."""

from repro.experiments import fig8_burst_size


def test_fig8_burst_size(benchmark, scale, show):
    result = benchmark.pedantic(
        fig8_burst_size.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig8_burst_size.format(result))
    # Every burst size (100k-500k instructions) must be detectable.
    for size, points in result.curves.items():
        assert max(tpr for _, tpr in points) >= 50.0, f"burst {size}"
