"""Serving benchmark: session throughput, chunk RTT, and shed behavior.

Exercises the :mod:`repro.serve` stack over real loopback TCP --

- **latency**: one strict request/response session (``window=1``)
  measures the full chunk round trip (frame encode, socket, queue, DSP
  in the worker pool, REPORT back): p50/p99 per chunk,
- **throughput**: N concurrent clients each replay a full capture on
  its own connection: sessions/sec and aggregate windows/sec,
- **shedding**: with every fleet slot held, a burst of OPENs must all
  be refused with the typed ``at_capacity`` error, the holders must
  stream on unharmed, and a freed slot must admit again,
- **recovery** (DESIGN.md D19): a session streamed through a
  :class:`~repro.serve.ChaosProxy` whose connection is killed several
  times mid-stream must transparently resume from the server's
  checkpoints -- p50/p99 resume latency, with zero windows lost and the
  report stream bit-identical to a local run,
- **worker sweep** (DESIGN.md D21): the same client load against a
  :class:`~repro.serve.ShardCluster` of 1/2/4/8 worker *processes*
  behind the shard router, one DSP thread per worker so adding workers
  is the only axis. Every sweep point must stay bit-identical to a
  local run; the 4-worker point must beat the same-run single-worker
  baseline by >=2x wherever the machine has >=4 cores to scale onto
  (the core count is recorded so the CI gate can tell).

-- and writes ``BENCH_serve.json`` at the repo root.

Run as pytest (``REPRO_SCALE=quick`` by default) or directly::

    PYTHONPATH=src python benchmarks/bench_serve.py --clients 8
"""

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.errors import ServeError
from repro.experiments.runner import Scale, build_detector
from repro.programs.mibench import BENCHMARKS
from repro.serve import (
    ChaosProxy,
    EddieClient,
    ModelRegistry,
    ServerConfig,
    ShardCluster,
    serve_in_thread,
)
from repro.serve.client import replay
from repro.stream import StreamingMonitor

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUTPUT = _REPO_ROOT / "BENCH_serve.json"

_CHUNK_SAMPLES = 4096
_PROGRAM = "bitcount"


def _latency(address, trace):
    """Strict request/response chunk round trips on one session."""
    host, port = address
    latencies = []
    with EddieClient(host, port, window=1) as client:
        client.open(_PROGRAM, t0=trace.iq.t0)
        for chunk in trace.iq.iter_chunks(_CHUNK_SAMPLES):
            started = time.perf_counter()
            client.send(chunk)
            client.drain()
            latencies.append(time.perf_counter() - started)
        summary = client.close()
    lat = np.asarray(latencies)
    return {
        "chunks": len(lat),
        "chunk_samples": _CHUNK_SAMPLES,
        "windows": summary.windows,
        "p50_rtt_us": float(np.median(lat) * 1e6),
        "p99_rtt_us": float(np.quantile(lat, 0.99) * 1e6),
        "max_rtt_us": float(lat.max() * 1e6),
    }


def _throughput(address, trace, clients, sessions_per_client):
    """N concurrent clients, each replaying full captures."""
    host, port = address
    summaries = []
    lock = threading.Lock()
    errors = []

    def worker():
        try:
            for _ in range(sessions_per_client):
                _, summary = replay(
                    host, port, _PROGRAM, trace,
                    chunk_samples=_CHUNK_SAMPLES,
                )
                with lock:
                    summaries.append(summary)
        except Exception as error:  # pragma: no cover - surfaced below
            with lock:
                errors.append(repr(error))

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    sessions = len(summaries)
    windows = sum(s.windows for s in summaries)
    return {
        "clients": clients,
        "sessions": sessions,
        "errors": errors,
        "seconds": elapsed,
        "sessions_per_sec": sessions / elapsed if elapsed else None,
        "windows_per_sec": windows / elapsed if elapsed else None,
        "all_sessions_clean": not errors and all(
            s.status == "ok" for s in summaries
        ),
    }


def _shedding(registry, trace, capacity=2, burst=6):
    """Hold every slot, burst OPENs, count typed refusals."""
    chunks = list(trace.iq.iter_chunks(_CHUNK_SAMPLES))
    with serve_in_thread(
        registry, ServerConfig(max_sessions=capacity, worker_threads=2)
    ) as handle:
        host, port = handle.address
        holders = [
            EddieClient(host, port).connect() for _ in range(capacity)
        ]
        try:
            for client in holders:
                client.open(_PROGRAM, t0=trace.iq.t0)
                client.send(chunks[0])
            shed = 0
            for _ in range(burst):
                with EddieClient(host, port) as attempt:
                    try:
                        attempt.open(_PROGRAM)
                    except ServeError as error:
                        if error.code == "at_capacity":
                            shed += 1
            # Holders stream on unharmed after the burst.
            clean = True
            for client in holders:
                for chunk in chunks[1:]:
                    client.send(chunk)
                client.drain()
                clean &= client.close().status == "ok"
        finally:
            for client in holders:
                client.disconnect()
        # A freed slot admits again.
        with EddieClient(host, port) as client:
            client.open(_PROGRAM)
            client.close()
        stats = handle.stats
        attempts = capacity + burst + 1
        return {
            "capacity": capacity,
            "open_attempts": attempts,
            "shed": shed,
            "shed_all_over_capacity": shed == burst,
            "shed_rate": shed / attempts,
            "holders_clean": clean,
            "server_sessions_shed": stats.sessions_shed,
            "readmitted_after_close": True,
        }


def _recovery(registry, model, trace, kills=3):
    """Kill the connection mid-stream; measure the cost of resuming."""
    monitor = StreamingMonitor(model, t0=trace.iq.t0)
    local_reports = []
    chunks = list(trace.iq.iter_chunks(_CHUNK_SAMPLES))
    for chunk in chunks:
        for result in monitor.feed(chunk):
            local_reports.extend(result.reports)
    local_summary = monitor.finish()

    kill_every = max(1, len(chunks) // (kills + 1))
    with serve_in_thread(
        registry,
        ServerConfig(max_sessions=4, worker_threads=2, checkpoint_interval=2),
    ) as handle:
        with ChaosProxy(handle.address, seed=11) as proxy:
            host, port = proxy.address
            with EddieClient(
                host, port, window=4,
                backoff_base=0.02, backoff_max=0.25,
            ) as client:
                client.open(_PROGRAM, t0=trace.iq.t0)
                reports = []
                started = time.perf_counter()
                for i, chunk in enumerate(chunks):
                    reports.extend(client.send(chunk))
                    if i and i % kill_every == 0 and client.reconnects < kills:
                        reports.extend(client.drain())
                        proxy.kill_connections()
                reports.extend(client.drain())
                summary = client.close()
                elapsed = time.perf_counter() - started
    identical = reports == local_reports and summary == dataclasses.replace(
        local_summary, session_id=summary.session_id
    )
    lat = np.asarray(client.resume_latencies or [0.0])
    return {
        "kills": proxy.stats.kills,
        "reconnects": client.reconnects,
        "seconds": elapsed,
        "recovery_p50_ms": float(np.median(lat) * 1e3),
        "recovery_p99_ms": float(np.quantile(lat, 0.99) * 1e3),
        "windows_local": local_summary.windows,
        "windows_remote": client.windows_seen,
        "windows_lost": local_summary.windows - client.windows_seen,
        "bit_identical": identical,
    }


def _cores():
    """Cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _worker_sweep(registry, model, trace, worker_counts=(1, 2, 4, 8),
                  clients=8, sessions_per_client=2):
    """The same load against 1/2/4/8 worker processes, same run.

    One DSP thread per worker keeps worker count the only axis; the
    single-worker point is the baseline every speedup is measured
    against, taken in the same run on the same machine.
    """
    monitor = StreamingMonitor(model, t0=trace.iq.t0)
    local_reports = []
    for chunk in trace.iq.iter_chunks(_CHUNK_SAMPLES):
        for result in monitor.feed(chunk):
            local_reports.extend(result.reports)
    local_summary = monitor.finish()

    config = ServerConfig(
        max_sessions=clients + 2, worker_threads=1, checkpoint_interval=2,
    )
    points = []
    for workers in worker_counts:
        with ShardCluster(
            registry, workers=workers, mode="process", config=config,
        ) as cluster:
            reports, summary = replay(
                *cluster.address, _PROGRAM, trace,
                chunk_samples=_CHUNK_SAMPLES,
            )
            identical = (
                reports == local_reports
                and summary == dataclasses.replace(
                    local_summary, session_id=summary.session_id
                )
            )
            thr = _throughput(
                cluster.address, trace, clients, sessions_per_client
            )
        points.append({
            "workers": workers,
            "windows_per_sec": thr["windows_per_sec"],
            "sessions_per_sec": thr["sessions_per_sec"],
            "seconds": thr["seconds"],
            "sessions": thr["sessions"],
            "all_sessions_clean": thr["all_sessions_clean"],
            "errors": thr["errors"],
            "bit_identical": identical,
        })

    baseline = points[0]["windows_per_sec"] or 1e-9
    for point in points:
        point["speedup"] = (point["windows_per_sec"] or 0.0) / baseline
    cores = _cores()
    four = next((p for p in points if p["workers"] == 4), None)
    return {
        "cores": cores,
        "clients": clients,
        "sessions_per_client": sessions_per_client,
        "worker_threads_per_worker": config.worker_threads,
        "points": points,
        # The >=2x gate only means something with >=4 cores to scale
        # onto; single-core machines still gate bit-identity.
        "scaling_gate_enforced": cores >= 4 and four is not None,
        "speedup_4_workers": four["speedup"] if four else None,
        "all_bit_identical": all(p["bit_identical"] for p in points),
        "all_sessions_clean": all(p["all_sessions_clean"] for p in points),
    }


def run_benchmark(scale_name="quick", clients=8, sessions_per_client=2):
    scale = {"quick": Scale.quick, "default": Scale.default,
             "paper": Scale.paper}[scale_name]()
    detector = build_detector(BENCHMARKS[_PROGRAM](), scale, source="em")
    trace = detector.source.capture(seed=scale.monitor_seed(0))
    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        registry.publish(detector.model, _PROGRAM)
        with serve_in_thread(
            registry,
            ServerConfig(max_sessions=max(clients, 4), worker_threads=4),
        ) as handle:
            report = {
                "benchmark": "serve",
                "scale": scale_name,
                "trace_samples": len(trace.iq),
                "latency": _latency(handle.address, trace),
                "throughput": _throughput(
                    handle.address, trace, clients, sessions_per_client
                ),
            }
        report["shedding"] = _shedding(registry, trace)
        report["recovery"] = _recovery(registry, detector.model, trace)
        report["worker_sweep"] = _worker_sweep(
            registry, detector.model, trace,
            clients=clients, sessions_per_client=sessions_per_client,
        )
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _format(report):
    lat = report["latency"]
    thr = report["throughput"]
    shed = report["shedding"]
    rec = report["recovery"]
    sweep = report["worker_sweep"]
    return "\n".join([
        f"serving benchmark (scale={report['scale']}, "
        f"{report['trace_samples']:,} samples/capture)",
        f"  chunk RTT          : p50 {lat['p50_rtt_us']:.0f} us, "
        f"p99 {lat['p99_rtt_us']:.0f} us ({lat['chunks']} chunks)",
        f"  throughput         : {thr['clients']} clients -> "
        f"{thr['sessions_per_sec']:.1f} sessions/s, "
        f"{thr['windows_per_sec']:,.0f} windows/s "
        f"(clean={thr['all_sessions_clean']})",
        f"  load shedding      : {shed['shed']}/{shed['open_attempts']} "
        f"OPENs shed at capacity {shed['capacity']} "
        f"(rate {shed['shed_rate']:.0%}, holders "
        f"clean={shed['holders_clean']})",
        f"  recovery           : {rec['kills']} kills -> "
        f"{rec['reconnects']} resumes, p50 {rec['recovery_p50_ms']:.0f} ms, "
        f"p99 {rec['recovery_p99_ms']:.0f} ms, "
        f"windows lost {rec['windows_lost']} "
        f"(bit-identical={rec['bit_identical']})",
    ] + [
        f"  {point['workers']} worker(s)        : "
        f"{point['windows_per_sec']:,.0f} windows/s "
        f"({point['speedup']:.2f}x, "
        f"identical={point['bit_identical']})"
        for point in sweep["points"]
    ] + [
        f"  worker scaling     : {sweep['cores']} cores, 4-worker gate "
        + (
            f"{'met' if sweep['speedup_4_workers'] >= 2 else 'MISSED'} "
            f"({sweep['speedup_4_workers']:.2f}x)"
            if sweep["scaling_gate_enforced"]
            else "not enforced (needs >=4 cores)"
        ),
        f"  -> {_OUTPUT}",
    ])


def test_serve_benchmark(scale, show):
    import os

    scale_name = os.environ.get("REPRO_SCALE", "quick")
    report = run_benchmark(scale_name=scale_name, clients=4)
    show(_format(report))
    assert report["throughput"]["all_sessions_clean"], (
        report["throughput"]["errors"]
    )
    assert report["shedding"]["shed_all_over_capacity"]
    assert report["shedding"]["holders_clean"]
    assert report["recovery"]["windows_lost"] == 0, report["recovery"]
    assert report["recovery"]["bit_identical"], report["recovery"]
    sweep = report["worker_sweep"]
    assert sweep["all_bit_identical"], sweep["points"]
    assert sweep["all_sessions_clean"], sweep["points"]
    if sweep["scaling_gate_enforced"]:
        assert sweep["speedup_4_workers"] >= 2.0, sweep["points"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "paper"))
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--sessions-per-client", type=int, default=2)
    args = parser.parse_args()
    result = run_benchmark(
        scale_name=args.scale,
        clients=args.clients,
        sessions_per_client=args.sessions_per_client,
    )
    print(_format(result))
    sweep = result["worker_sweep"]
    ok = (
        result["throughput"]["all_sessions_clean"]
        and result["shedding"]["shed_all_over_capacity"]
        and result["shedding"]["holders_clean"]
        and result["recovery"]["windows_lost"] == 0
        and result["recovery"]["bit_identical"]
        and sweep["all_bit_identical"]
        and sweep["all_sessions_clean"]
        and (
            not sweep["scaling_gate_enforced"]
            or sweep["speedup_4_workers"] >= 2.0
        )
    )
    sys.exit(0 if ok else 1)
