"""Regenerates Figure 7: detection latency vs contamination rate."""

from repro.experiments import contamination, fig7_contamination_latency


def test_fig7_contamination_latency(benchmark, scale, show):
    result = benchmark.pedantic(
        fig7_contamination_latency.run, args=(scale,), rounds=1, iterations=1
    )
    show(contamination.format_fig7(result))
    # All injections at full contamination must be detected.
    for name, points in result.latencies.items():
        full = [lat for rate, lat in points if rate == 100.0]
        assert full and full[0] is not None, f"{name}: undetected at 100%"
