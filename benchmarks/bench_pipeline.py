"""End-to-end pipeline benchmark: parallel harness + artifact cache.

Times the Table-2 protocol (the repo's dominant workload: train, capture
clean/injected/burst runs, monitor) through four configurations --

- serial, no cache          (the pre-optimization baseline)
- parallel, cold cache      (first run on a fresh machine)
- parallel, warm cache      (the steady state of iterating on experiments)
- serial, warm cache        (isolates cache wins; in-process hit stats)

-- plus a windows/sec measurement of the batched monitor hot path, and
writes ``BENCH_pipeline.json`` at the repo root. All four configurations
must produce identical rows (``identical_results``); a speedup that
changes the science is a bug, not a win.

Run as pytest (``REPRO_SCALE=quick`` by default) or directly::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --scale default --jobs auto
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import cache as cache_mod
from repro.experiments.runner import Scale, build_detector, resolve_jobs
from repro.experiments.tables_common import run_table
from repro.programs.mibench import BENCHMARKS

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUTPUT = _REPO_ROOT / "BENCH_pipeline.json"


def _rows_key(result):
    return [
        (r.name, r.latency_ms, r.false_positives, r.accuracy, r.coverage,
         r.detected_loop, r.detected_burst)
        for r in result.rows
    ]


def _timed_table(scale, benchmarks, jobs):
    start = time.perf_counter()
    result = run_table(scale, "power", benchmarks=benchmarks, jobs=jobs)
    return time.perf_counter() - start, result


def _monitor_windows_per_sec(scale):
    """Throughput of the batched monitor hot path alone."""
    detector = build_detector(BENCHMARKS["bitcount"](), scale, source="power")
    trace = detector.source.run(seed=scale.monitor_seed(0))
    detector.monitor(trace)  # warm caches outside the timing
    start = time.perf_counter()
    result = detector.monitor(trace)
    elapsed = time.perf_counter() - start
    windows = len(result.result.times)
    return {
        "windows": windows,
        "seconds": elapsed,
        "windows_per_sec": windows / elapsed if elapsed else None,
    }


def run_benchmark(scale_name="quick", jobs="auto", benchmarks=None):
    scale = {"quick": Scale.quick, "default": Scale.default,
             "paper": Scale.paper}[scale_name]()
    benchmarks = benchmarks or list(BENCHMARKS)
    n_workers = resolve_jobs(jobs)

    cache_mod.disable()
    t_serial, baseline = _timed_table(scale, benchmarks, jobs=1)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cache_mod.configure(cache_dir)
        t_cold, cold = _timed_table(scale, benchmarks, jobs=jobs)
        t_warm, warm = _timed_table(scale, benchmarks, jobs=jobs)
        # Serial warm pass: every artifact loads in-process, so this
        # cache instance's stats show the real hit rate.
        cache_mod.configure(cache_dir)
        t_serial_warm, serial_warm = _timed_table(scale, benchmarks, jobs=1)
        stats = cache_mod.get_cache().stats
        cache_stats = {
            "hits": stats.hits,
            "misses": stats.misses,
            "puts": stats.puts,
            "hit_rate": stats.hit_rate,
        }
    cache_mod.disable()

    identical = (
        _rows_key(cold) == _rows_key(baseline)
        and _rows_key(warm) == _rows_key(baseline)
        and _rows_key(serial_warm) == _rows_key(baseline)
    )
    report = {
        "benchmark": "table2-pipeline",
        "scale": scale_name,
        "jobs": n_workers,
        "benchmarks": benchmarks,
        "timings_s": {
            "serial_uncached": t_serial,
            "parallel_cold": t_cold,
            "parallel_warm": t_warm,
            "serial_warm": t_serial_warm,
        },
        "speedups": {
            "parallel_cold": t_serial / t_cold if t_cold else None,
            "parallel_warm": t_serial / t_warm if t_warm else None,
            "serial_warm": t_serial / t_serial_warm if t_serial_warm else None,
        },
        "cache": cache_stats,
        "monitor": _monitor_windows_per_sec(scale),
        "identical_results": identical,
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _format(report):
    timings = report["timings_s"]
    speedups = report["speedups"]
    lines = [
        f"pipeline benchmark (scale={report['scale']}, "
        f"jobs={report['jobs']}, {len(report['benchmarks'])} benchmarks)",
        f"  serial, no cache   : {timings['serial_uncached']:8.2f} s   1.00x",
        f"  parallel, cold     : {timings['parallel_cold']:8.2f} s   "
        f"{speedups['parallel_cold']:.2f}x",
        f"  parallel, warm     : {timings['parallel_warm']:8.2f} s   "
        f"{speedups['parallel_warm']:.2f}x",
        f"  serial, warm       : {timings['serial_warm']:8.2f} s   "
        f"{speedups['serial_warm']:.2f}x",
        f"  cache hit rate     : {report['cache']['hit_rate']:.0%} "
        f"({report['cache']['hits']} hits / {report['cache']['misses']} misses)",
        f"  monitor throughput : {report['monitor']['windows_per_sec']:,.0f} "
        f"windows/s",
        f"  identical results  : {report['identical_results']}",
        f"  -> {_OUTPUT}",
    ]
    return "\n".join(lines)


def test_pipeline_benchmark(scale, show):
    import os

    scale_name = os.environ.get("REPRO_SCALE", "quick")
    report = run_benchmark(scale_name=scale_name, jobs="auto")
    show(_format(report))
    assert report["identical_results"], (
        "parallel/cached runs diverged from the serial uncached baseline"
    )
    assert report["cache"]["hit_rate"] > 0.9  # the warm serial pass


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "paper"))
    parser.add_argument("--jobs", default="auto")
    parser.add_argument("--benchmarks", nargs="*", default=None)
    args = parser.parse_args()
    result = run_benchmark(
        scale_name=args.scale, jobs=args.jobs, benchmarks=args.benchmarks
    )
    print(_format(result))
    sys.exit(0 if result["identical_results"] else 1)
