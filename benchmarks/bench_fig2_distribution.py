"""Regenerates Figure 2: the parametric-test trap vs the K-S test."""

from repro.experiments import fig2_distribution


def test_fig2_distribution(benchmark, scale, show):
    result = benchmark.pedantic(
        fig2_distribution.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig2_distribution.format(result))
    # The paper's point: the parametric test cannot avoid false negatives
    # for this distribution; the K-S test does far better at the same
    # group size, without extra false positives.
    assert result.parametric_fn > result.ks_fn + 20.0
    assert result.ks_fp <= result.parametric_fp + 5.0
