"""Denoising front-end benchmark: detection accuracy in harsh RF.

The harsh-environment scenario matrix (:mod:`repro.em.harsh`) stresses
EDDIE along the three axes named by the SVD-denoising follow-on work
(arXiv 2212.05643): low SNR, strong narrowband interferers, and a
co-located second emitter. This bench runs each matrix point under three
preprocessing variants --

- **ungated**: the paper's bare pipeline (no front end),
- **gated**: a band-limiting FIR gate (``FirGateStage``) that excises
  out-of-band tones and noise,
- **denoised**: the FIR gate followed by the windowed-Hankel SVD
  subspace projection (``SvdDenoiser``), DESIGN.md D22

-- and records balanced detection accuracy per point in
``BENCH_denoise.json``. The shape this repo's acceptance gates pin down:
denoised strictly beats ungated at every low-SNR and interferer point
and is never worse than gated anywhere; the 0 / -3 dB tail is where the
SVD projection alone makes the difference (gating tops out near 3 dB).

Run as pytest (``REPRO_SCALE=quick`` by default) or directly::

    PYTHONPATH=src python benchmarks/bench_denoise.py --full
"""

import argparse
import json
import sys
from pathlib import Path

from repro.arch.config import CoreConfig
from repro.core.detector import Eddie
from repro.core.model import EddieConfig
from repro.dsp import FirGateStage, SvdDenoiser
from repro.em.harsh import harsh_matrix
from repro.em.scenario import EmScenario
from repro.experiments.report import format_table
from repro.experiments.runner import Scale
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUTPUT = _REPO_ROOT / "BENCH_denoise.json"

_PROGRAM = "sha"

#: The matrix cells the default (CI) run exercises: one per regime plus
#: the deep low-SNR tail where only the SVD projection still detects.
#: ``--full`` runs every cell of :func:`repro.em.harsh.harsh_matrix`.
_DEFAULT_POINTS = ("snr_6dB", "snr_0dB", "interf_2x", "codev_1x")


def _variants():
    """The three preprocessing tiers under comparison."""
    gate = FirGateStage(cutoff=0.5)
    denoise = SvdDenoiser(block_samples=2048, hankel_window=64, rank=8)
    return {
        "ungated": EddieConfig(),
        "gated": EddieConfig(frontend=(gate,)),
        "denoised": EddieConfig(frontend=(gate, denoise)),
    }


def _run_cell(config, point, scale, core, seed_base):
    """Balanced accuracy of one variant at one matrix point.

    Both classes use the same decision rule (``metrics.detected``): a
    clean run counts as a false positive only when it crosses the full
    detection threshold, exactly as an injected run must to count as a
    true positive.
    """
    scenario = EmScenario.build(
        BENCHMARKS[_PROGRAM](), core=core, channel=point.channel
    )
    detector = Eddie(config=config).train(
        BENCHMARKS[_PROGRAM](), scenario=scenario,
        runs=scale.train_runs, seed=scale.train_seed() + seed_base,
    )
    clean = [
        detector.monitor(seed=scale.monitor_seed(k) + seed_base).metrics
        for k in range(scale.clean_runs)
    ]
    scenario.simulator.set_loop_injection(
        INJECTION_LOOPS[_PROGRAM], injection_mix(4, 4), 1.0
    )
    injected = [
        detector.monitor(seed=scale.injected_seed(k) + seed_base).metrics
        for k in range(scale.injected_runs)
    ]
    scenario.simulator.clear_injections()
    tpr = sum(int(m.detected) for m in injected) / len(injected)
    tnr = 1.0 - sum(int(m.detected) for m in clean) / len(clean)
    return {
        "tpr": tpr,
        "tnr": tnr,
        "accuracy": (tpr + tnr) / 2.0,
        "clean_reports": [m.n_reports for m in clean],
    }


def run_benchmark(scale_name="quick", point_names=_DEFAULT_POINTS):
    scale = {"quick": Scale.quick, "default": Scale.default,
             "paper": Scale.paper}[scale_name]()
    core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
    matrix = {p.name: p for p in harsh_matrix(core.sample_rate)}
    unknown = [n for n in point_names if n not in matrix]
    if unknown:
        raise SystemExit(
            f"unknown matrix points {unknown}; have {sorted(matrix)}"
        )
    variants = _variants()
    points = []
    for pi, name in enumerate(point_names):
        point = matrix[name]
        # Each matrix point gets its own deterministic seed block so the
        # points are independent scenario draws, not one correlated
        # sample (same scheme as bench_receiver_robustness).
        seed_base = 1000 * pi
        cell = {
            "point": name,
            "regime": point.regime,
            "severity": point.severity,
        }
        for vname, config in variants.items():
            cell[vname] = _run_cell(config, point, scale, core, seed_base)
        points.append(cell)
    report = {
        "benchmark": "denoise-frontend",
        "scale": scale_name,
        "program": _PROGRAM,
        "variants": {
            "ungated": "no front end",
            "gated": "FirGateStage(cutoff=0.5)",
            "denoised": ("FirGateStage(cutoff=0.5) + SvdDenoiser("
                         "block_samples=2048, hankel_window=64, rank=8)"),
        },
        "points": points,
        "gates": _check_gates(points),
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _check_gates(points):
    """The acceptance gates, evaluated and recorded in the report.

    - ``denoised_beats_ungated``: at every low-SNR and interferer point,
      denoised accuracy strictly exceeds ungated.
    - ``denoised_matches_gated``: denoised accuracy is no worse than
      gated at *every* point of the matrix.
    """
    strict = [
        p for p in points if p["regime"] in ("low_snr", "interferer")
    ]
    return {
        "denoised_beats_ungated": bool(strict) and all(
            p["denoised"]["accuracy"] > p["ungated"]["accuracy"]
            for p in strict
        ),
        "denoised_matches_gated": all(
            p["denoised"]["accuracy"] >= p["gated"]["accuracy"]
            for p in points
        ),
    }


def _format(report):
    rows = [
        [p["point"], p["regime"],
         f"{p['ungated']['accuracy']:.2f}",
         f"{p['gated']['accuracy']:.2f}",
         f"{p['denoised']['accuracy']:.2f}"]
        for p in report["points"]
    ]
    table = format_table(
        f"Harsh-environment detection accuracy ({report['program']}, "
        "8-instruction loop injection)",
        ["Point", "Regime", "Ungated", "Gated", "Denoised"],
        rows,
    )
    gates = report["gates"]
    return "\n".join([
        table,
        f"  denoised > ungated (low-SNR/interferer): "
        f"{gates['denoised_beats_ungated']}",
        f"  denoised >= gated (everywhere)         : "
        f"{gates['denoised_matches_gated']}",
        f"  -> {_OUTPUT}",
    ])


def test_denoise_benchmark(scale, show):
    import os

    scale_name = os.environ.get("REPRO_SCALE", "quick")
    report = run_benchmark(scale_name=scale_name)
    show(_format(report))
    assert report["gates"]["denoised_beats_ungated"], (
        "SVD denoising failed to strictly beat the ungated pipeline at "
        "a low-SNR/interferer point"
    )
    assert report["gates"]["denoised_matches_gated"], (
        "SVD denoising fell below the FIR gate somewhere in the matrix"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "paper"))
    parser.add_argument("--points", nargs="*", default=None,
                        help="matrix point names (default: one per regime)")
    parser.add_argument("--full", action="store_true",
                        help="run every cell of the harsh matrix")
    args = parser.parse_args()
    if args.full:
        scale = {"quick": Scale.quick, "default": Scale.default,
                 "paper": Scale.paper}[args.scale]()
        core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
        names = tuple(p.name for p in harsh_matrix(core.sample_rate))
    else:
        names = tuple(args.points) if args.points else _DEFAULT_POINTS
    result = run_benchmark(scale_name=args.scale, point_names=names)
    print(_format(result))
    ok = all(result["gates"].values())
    sys.exit(0 if ok else 1)
