"""Regenerates the Section 5.3 ANOVA study over the 51-config sweep."""

import numpy as np

from repro.arch.config import architecture_sweep
from repro.experiments import anova_architecture


def test_anova_architecture(benchmark, scale, show):
    configs = architecture_sweep(scale.clock_hz)
    result = benchmark.pedantic(
        anova_architecture.run, args=(scale,),
        kwargs={"configs": configs}, rounds=1, iterations=1,
    )
    show(anova_architecture.format(result))
    # Paper findings that must reproduce at any scale:
    # core kind is significant; in-order width/depth are not; OOO ROB size
    # is not; OOO latency exceeds in-order. (Two caveats, see
    # EXPERIMENTS.md: the paper's weak OOO-depth effect needs paper-scale
    # statistics, and the 1-wide OOO outlier makes width look significant
    # at our scaled Nyquist, so width is checked only between the 2- and
    # 4-wide configurations.)
    assert result.combined.effects["kind"].significant(0.05)
    assert not result.inorder.effects["width"].significant(0.05)
    assert not result.inorder.effects["depth"].significant(0.05)
    assert not result.ooo.effects["rob"].significant(0.05)
    ooo_lat = [o.latency_ms for o in result.observations if o.config.kind == "ooo"]
    io_lat = [o.latency_ms for o in result.observations if o.config.kind == "inorder"]
    assert np.mean(ooo_lat) > np.mean(io_lat)
    # Width 2 vs 4 (the realistic OOO design points): no meaningful gap.
    w2 = [o.latency_ms for o in result.observations
          if o.config.kind == "ooo" and o.config.issue_width == 2]
    w4 = [o.latency_ms for o in result.observations
          if o.config.kind == "ooo" and o.config.issue_width == 4]
    assert abs(np.mean(w2) - np.mean(w4)) < max(np.std(w2), np.std(w4))


def test_depth_injection_interaction(benchmark, scale, show):
    """Paper §5.3, last paragraph: the pipeline-depth effect on OOO
    detection latency diminishes as the injection grows."""
    result = benchmark.pedantic(
        anova_architecture.run_depth_injection_interaction, args=(scale,),
        rounds=1, iterations=1,
    )
    show(anova_architecture.format_depth_interaction(result))
    small, large = result.sizes[0], result.sizes[-1]
    # Direction (with slack for run-to-run noise at small scales): the
    # spread across depths for the large injection does not exceed the
    # small injection's spread by more than noise.
    assert result.spread(large) <= result.spread(small) + 0.15
