"""Regenerates Figure 9: false rejections vs K-S confidence level."""

import numpy as np

from repro.experiments import fig9_confidence


def test_fig9_confidence(benchmark, scale, show):
    result = benchmark.pedantic(
        fig9_confidence.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig9_confidence.format(result))
    # Paper shape: 99% confidence yields the fewest false rejections;
    # lower confidence stays high at every latency.
    mean_fp = {
        conf: np.mean([fp for _, fp in points])
        for conf, points in result.curves.items()
    }
    assert mean_fp[0.99] < mean_fp[0.97] < mean_fp[0.95]
