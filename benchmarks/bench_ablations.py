"""Ablation benches for the design choices DESIGN.md calls out.

1. K-S vs Mann-Whitney U (paper Sec. 4.2: "We experimented with both
   tests and found that the K-S test shows better performance"): the U
   test only senses median shifts, so a low-contamination injection --
   which adds a minority timing mode without moving the median -- evades
   it while K-S flags it.
2. Peak prominence floor (our resolution-independent reading of the 1%
   rule): without it, noise maxima become "peaks", the peak-less GSM loop
   grows fake references, and clean-run false positives jump.
3. reportThreshold (paper Sec. 4.4: tolerate up to 3 consecutive
   rejections): dropping it to 0 turns every isolated deviant STS into a
   report.
"""

import numpy as np
import pytest

from repro.core.metrics import (
    aggregate_metrics,
    rejection_false_negative_rate,
)
from repro.core.model import EddieConfig
from repro.experiments.runner import Scale, build_detector, capture_traces
from repro.programs.mibench import BENCHMARKS
from repro.programs.workloads import injection_mix, multi_peak_loop_program


def _flag_rate(detector, traces):
    """Mean % of injection-containing groups the test flagged."""
    window_s = detector.model.config.window_samples / detector.model.sample_rate
    rates = []
    for trace in traces:
        report = detector.monitor(trace)
        fn = rejection_false_negative_rate(
            report.result, trace.injected_spans, window_s,
            detector.model.hop_duration,
        )
        if fn is not None:
            rates.append(100.0 - fn)
    return float(np.mean(rates)) if rates else 0.0


def test_ablation_ks_vs_utest(benchmark, scale, show):
    """The paper's Sec. 4.2 comparison, two parts.

    (a) On real traces (a multi-peak loop, low-contamination injection),
    K-S must do at least as well as U on both detection and clean FP.
    (b) The decisive statistical difference -- U only senses median
    shifts, K-S senses any distribution change -- shown on dispersion
    data like the window-to-window spread EDDIE's STSs exhibit.
    """

    def run():
        program = multi_peak_loop_program(trips=15000)
        results = {}
        for statistic in ("ks", "utest"):
            cfg = EddieConfig(statistic=statistic)
            detector = build_detector(program, scale, source="em", config=cfg)
            detector = detector.with_group_size(24)
            simulator = detector.source.simulator
            simulator.set_loop_injection(
                "L", injection_mix(8, 8, footprint=16 * 1024), 0.25
            )
            traces = capture_traces(
                detector,
                [scale.injected_seed(k) for k in range(scale.injected_runs)],
            )
            simulator.clear_injections()
            clean = capture_traces(
                detector,
                [scale.monitor_seed(k) for k in range(scale.clean_runs)],
            )
            results[statistic] = {
                "flagged": _flag_rate(detector, traces),
                "fp": aggregate_metrics(
                    [detector.monitor(t).metrics for t in clean]
                ).false_positive_rate,
            }

        # (b) Median-preserving dispersion change: the peak wanders over
        # more bins (e.g. added jitter) without moving its center.
        from repro.core.stats import two_sample_reject

        rng = np.random.default_rng(0)
        bins = 10.0  # kHz-scale bin quantization
        reference = np.sort(np.round(rng.normal(0, 1.0, 800) / 0.1) * 0.1 * bins)
        rejects = {"ks": 0, "utest": 0}
        trials = 60
        for _ in range(trials):
            widened = np.round(rng.normal(0, 3.0, 48) / 0.1) * 0.1 * bins
            for method in rejects:
                rejects[method] += two_sample_reject(
                    reference, widened, 0.01, method
                )
        results["dispersion_power"] = {
            method: 100.0 * count / trials for method, count in rejects.items()
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    power = results["dispersion_power"]
    show(
        "Ablation: K-S vs Mann-Whitney U (paper Sec. 4.2)\n"
        f"  traces  -- K-S: flagged {results['ks']['flagged']:.1f}% "
        f"(clean FP {results['ks']['fp']:.2f}%); "
        f"U: flagged {results['utest']['flagged']:.1f}% "
        f"(clean FP {results['utest']['fp']:.2f}%)\n"
        f"  power on a median-preserving dispersion change -- "
        f"K-S: {power['ks']:.0f}%, U: {power['utest']:.0f}%"
    )
    # On traces K-S is at least as good on both axes...
    assert results["ks"]["flagged"] >= results["utest"]["flagged"] - 5.0
    assert results["ks"]["fp"] <= results["utest"]["fp"] + 1.0
    # ...and on shape-only changes K-S is decisively more powerful.
    assert power["ks"] > power["utest"] + 40.0


def test_ablation_peak_prominence(benchmark, scale, show):
    def run():
        results = {}
        for prominence in (15.0, 0.0):
            cfg = EddieConfig(peak_prominence=prominence)
            detector = build_detector(
                BENCHMARKS["gsm"](), scale, source="em", config=cfg
            )
            lpc = detector.model.profiles.get("loop:lpc")
            clean = capture_traces(
                detector,
                [scale.monitor_seed(k) for k in range(scale.clean_runs)],
            )
            metrics = aggregate_metrics(
                [detector.monitor(t).metrics for t in clean]
            )
            results[prominence] = {
                "lpc_peaks": lpc.num_peaks if lpc else None,
                "fp": metrics.false_positive_rate,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation: peak prominence floor (GSM, clean runs)\n"
        f"  with floor (15x median): lpc peaks={results[15.0]['lpc_peaks']} "
        f"FP={results[15.0]['fp']:.2f}%\n"
        f"  without floor:           lpc peaks={results[0.0]['lpc_peaks']} "
        f"FP={results[0.0]['fp']:.2f}%"
    )
    # With the floor, the peak-less loop is recognized as peak-less.
    assert results[15.0]["lpc_peaks"] == 0
    # Without it, noise maxima become (unstable) reference peaks.
    assert results[0.0]["lpc_peaks"] > 0
    assert results[15.0]["fp"] <= results[0.0]["fp"] + 1.0


def test_ablation_diffuse_features(benchmark, scale, show):
    """The paper's suggested extension (Sec. 5.2): 'better consideration
    of diffuse spectral features may improve EDDIE's accuracy.'

    With spectral centroid/bandwidth as two extra tested dimensions:
    peak-less regions become testable (injections there are caught
    faster), and border-heavy benchmarks improve coverage.
    """

    def run():
        results = {}
        for diffuse in (False, True):
            cfg = EddieConfig(diffuse_features=diffuse)
            # Detection speed in GSM's peak-less lpc loop.
            detector = build_detector(
                BENCHMARKS["gsm"](), scale, source="em", config=cfg
            )
            simulator = detector.source.simulator
            simulator.set_loop_injection("lpc", injection_mix(4, 4), 1.0)
            traces = capture_traces(
                detector,
                [scale.injected_seed(k) for k in range(scale.injected_runs)],
            )
            simulator.clear_injections()
            injected = aggregate_metrics(
                [detector.monitor(t).metrics for t in traces]
            )

            # Coverage on a border-heavy benchmark.
            susan_det = build_detector(
                BENCHMARKS["susan"](), scale, source="em", config=cfg
            )
            clean = capture_traces(
                susan_det,
                [scale.monitor_seed(k) for k in range(scale.clean_runs)],
            )
            clean_metrics = aggregate_metrics(
                [susan_det.monitor(t).metrics for t in clean]
            )
            results[diffuse] = {
                "lpc_latency_ms": (
                    injected.detection_latency * 1e3
                    if injected.detection_latency is not None
                    else None
                ),
                "lpc_detected": injected.detected,
                "susan_coverage": clean_metrics.coverage,
                "susan_fp": clean_metrics.false_positive_rate,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    off, on = results[False], results[True]
    show(
        "Ablation: diffuse spectral features (paper's Sec. 5.2 suggestion)\n"
        f"  off: lpc injection latency "
        f"{off['lpc_latency_ms'] and round(off['lpc_latency_ms'], 2)} ms, "
        f"susan coverage {off['susan_coverage']:.1f}% "
        f"(FP {off['susan_fp']:.2f}%)\n"
        f"  on:  lpc injection latency "
        f"{on['lpc_latency_ms'] and round(on['lpc_latency_ms'], 2)} ms, "
        f"susan coverage {on['susan_coverage']:.1f}% "
        f"(FP {on['susan_fp']:.2f}%)"
    )
    assert on["lpc_detected"]
    # With the features, detection in the peak-less region is no slower
    # (typically much faster), and coverage does not regress meaningfully.
    if off["lpc_latency_ms"] is not None and on["lpc_latency_ms"] is not None:
        assert on["lpc_latency_ms"] <= off["lpc_latency_ms"] + 0.1
    assert on["susan_coverage"] >= off["susan_coverage"] - 2.0


def test_ablation_report_threshold(benchmark, scale, show):
    def run():
        results = {}
        for threshold in (3, 0):
            cfg = EddieConfig(report_threshold=threshold)
            detector = build_detector(
                BENCHMARKS["susan"](), scale, source="em", config=cfg
            )
            clean = capture_traces(
                detector,
                [scale.monitor_seed(k) for k in range(scale.clean_runs)],
            )
            metrics = aggregate_metrics(
                [detector.monitor(t).metrics for t in clean]
            )
            results[threshold] = metrics.false_positive_rate
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation: reportThreshold on clean susan runs\n"
        f"  threshold=3 (paper): FP {results[3]:.2f}%\n"
        f"  threshold=0:         FP {results[0]:.2f}%"
    )
    assert results[3] <= results[0]
