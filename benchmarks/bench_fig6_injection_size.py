"""Regenerates Figure 6: TPR vs latency for 2-8 injected instructions."""

import numpy as np

from repro.experiments import fig6_injection_size


def test_fig6_injection_size(benchmark, scale, show):
    result = benchmark.pedantic(
        fig6_injection_size.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig6_injection_size.format(result))
    # Paper shape: every injection size reaches high TPR at SOME latency,
    # and larger injections never need more latency than smaller ones to
    # first reach full TPR.
    for kind, by_size in result.curves.items():
        for size, points in by_size.items():
            best = max(tpr for _, tpr in points)
            assert best >= 50.0, f"{kind}/{size}: best TPR {best}"
        # 8-instruction injections at least match 2-instruction TPR at the
        # smallest latency.
        first_small = by_size[2][0][1]
        first_large = by_size[8][0][1]
        assert first_large >= first_small
