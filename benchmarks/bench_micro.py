"""Performance micro-benchmarks of the pipeline's hot primitives.

These are conventional pytest-benchmark timings (many rounds) for the
code the experiment harness leans on: the composition engine, the STFT,
peak extraction, the K-S test, and a full monitoring pass.
"""

import numpy as np
import pytest

from repro.arch.config import CoreConfig
from repro.arch.simulator import Simulator
from repro.core.model import EddieConfig
from repro.core.peaks import peak_matrix
from repro.core.stats.ks import ks_2samp, ks_statistic
from repro.core.stft import stft
from repro.em.modulation import am_modulate
from repro.programs.mibench import bitcount
from repro.programs.workloads import sharp_loop_program
from repro.types import Signal


@pytest.fixture(scope="module")
def power_trace():
    core = CoreConfig.iot_inorder(clock_hz=1e8)
    return Simulator(sharp_loop_program(trips=20000), core).run(seed=0).power


def test_simulate_bitcount_run(benchmark):
    core = CoreConfig.iot_inorder(clock_hz=1e8)
    simulator = Simulator(bitcount(), core)
    simulator.run(seed=0)  # warm the schedule caches

    seeds = iter(range(1, 10_000))
    benchmark(lambda: simulator.run(seed=next(seeds)))


def test_stft_throughput(benchmark, power_trace):
    benchmark(stft, power_trace, 512, 0.5)


def test_am_modulation(benchmark, power_trace):
    benchmark(am_modulate, power_trace)


def test_peak_extraction(benchmark, power_trace):
    spectra = stft(power_trace, 512, 0.5)
    benchmark(peak_matrix, spectra)


def test_ks_two_sample(benchmark):
    rng = np.random.default_rng(0)
    reference = np.sort(rng.normal(0, 1, 1000))
    monitored = rng.normal(0.1, 1, 64)
    benchmark(ks_statistic, reference, monitored)


def test_full_monitor_pass(benchmark):
    from repro.core.detector import Eddie

    core = CoreConfig.iot_inorder(clock_hz=1e8)
    detector = Eddie().train(
        sharp_loop_program(trips=20000), core=core, runs=4, seed=0, source="em"
    )
    trace = detector.source.capture(seed=50)
    benchmark(lambda: detector.monitor(trace))
