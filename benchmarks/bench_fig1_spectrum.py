"""Regenerates Figure 1: carrier + sidebands of an AM-modulated loop."""

import pytest

from repro.experiments import fig1_spectrum


def test_fig1_spectrum(benchmark, scale, show):
    result = benchmark.pedantic(
        fig1_spectrum.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig1_spectrum.format(result))
    # Sideband geometry: both offsets equal the loop iteration frequency.
    assert result.left_offset == pytest.approx(
        result.iteration_freq_hz, rel=0.05
    )
    assert result.right_offset == pytest.approx(
        result.iteration_freq_hz, rel=0.05
    )
