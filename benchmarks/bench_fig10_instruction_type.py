"""Regenerates Figure 10: on-chip vs off-chip injected instructions."""

from repro.experiments import fig10_instruction_type


def test_fig10_instruction_type(benchmark, scale, show):
    result = benchmark.pedantic(
        fig10_instruction_type.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig10_instruction_type.format(result))
    curves = result.curves
    on_chip = next(v for k, v in curves.items() if k.startswith("on-chip"))
    off_chip = next(v for k, v in curves.items() if k.startswith("off-chip"))
    # Paper shape: off-chip activity is at least as detectable at every
    # latency, and both are eventually detected.
    for (_, tpr_on), (_, tpr_off) in zip(on_chip, off_chip):
        assert tpr_off >= tpr_on
    assert max(tpr for _, tpr in on_chip) >= 50.0
    assert max(tpr for _, tpr in off_chip) >= 99.0
