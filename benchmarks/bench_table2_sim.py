"""Regenerates Table 2: EDDIE on the simulator-generated power signal."""

from repro.experiments import table2_sim


def test_table2_sim(benchmark, scale, show):
    result = benchmark.pedantic(table2_sim.run, args=(scale,), rounds=1, iterations=1)
    show(table2_sim.format(result))
    assert all(r.detected_loop for r in result.rows)
    assert all(r.detected_burst for r in result.rows)
    # Noise-free simulation: false positives at or below the EM setup's.
    assert result.mean_false_positives < 10.0
    assert result.mean_accuracy > 85.0
