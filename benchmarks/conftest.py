"""Shared fixtures for the experiment benchmark harness.

Each ``bench_*`` / ``test_*`` module regenerates one table or figure of
the paper at a configurable scale and prints it in the paper's shape.

Scale selection: set ``REPRO_SCALE`` to ``quick`` (default), ``default``,
or ``paper``. The quick scale finishes the whole suite in a few minutes;
``paper`` records the paper-faithful parameters (hours).
"""

import os

import pytest

from repro.experiments.runner import Scale

_SCALES = {
    "quick": Scale.quick,
    "default": Scale.default,
    "paper": Scale.paper,
}


@pytest.fixture(scope="session")
def scale() -> Scale:
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return _SCALES[name]()
    except KeyError:
        raise pytest.UsageError(
            f"REPRO_SCALE={name!r}; expected one of {sorted(_SCALES)}"
        )


@pytest.fixture()
def show(capsys):
    """Print experiment output to the live terminal despite capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
            print()

    return _show
