"""Regenerates Figure 5: false-negative rate vs contamination rate."""

import numpy as np

from repro.experiments import contamination, fig5_contamination


def test_fig5_contamination(benchmark, scale, show):
    result = benchmark.pedantic(
        fig5_contamination.run, args=(scale,), rounds=1, iterations=1
    )
    show(contamination.format_fig5(result))
    # Paper shape: detection degrades (FN rises) as contamination falls.
    # Compare the mean FN of the lowest three rates vs the highest three,
    # across benchmarks.
    low, high = [], []
    for points in result.false_negatives.values():
        ordered = sorted(points)
        low.extend(fn for _, fn in ordered[:3])
        high.extend(fn for _, fn in ordered[-3:])
    assert np.mean(low) > np.mean(high)
