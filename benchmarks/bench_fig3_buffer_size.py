"""Regenerates Figure 3: group-size selection for three loop shapes."""

from repro.experiments import fig3_buffer_size


def test_fig3_buffer_size(benchmark, scale, show):
    result = benchmark.pedantic(
        fig3_buffer_size.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig3_buffer_size.format(result))
    # Paper shape: the sharp-peak loop settles at the smallest n; the
    # diffuse loop's false-rejection rate does not converge to zero.
    assert result.selected_n["sharp peak"] <= result.selected_n["several peaks"]
    sharp_rates = [rate for _, rate in result.curves["sharp peak"]]
    diffuse_rates = [rate for _, rate in result.curves["diffuse peaks"]]
    assert max(sharp_rates) <= 1.0
    assert max(diffuse_rates) > 1.0
