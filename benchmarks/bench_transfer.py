"""Transfer benchmark: train once on a base device, deploy calibrated.

EDDIE's per-device training is the blocker to fleet scale. This bench
trains one base model, then confronts it with a grid of perturbed device
variants -- clock drift x receiver gain x cache geometry
(:class:`repro.transfer.DeviceVariant`) -- and compares three
deployments per variant:

- **uncal**: the base model pointed at the variant unchanged. Clock
  drift moves every spectral line, so this collapses to coin-flip
  balanced accuracy on drifted variants (100% false alarms).
- **cal**: the base model adapted by :func:`repro.transfer.calibrate_model`
  from one *short unlabeled capture* of the variant -- no retraining,
  no ground-truth timeline (DESIGN.md D23).
- **retrain**: full per-variant training, the expensive upper bound
  calibration is trying to make unnecessary.

Per variant the bench records balanced accuracy ((TPR + TNR) / 2; a
clean run counts as a false alarm when it emits *any* report) in
``BENCH_transfer.json``. The acceptance gates: on every drifted variant,
calibrated strictly beats uncalibrated AND lands within 5 points of full
retraining.

Run as pytest (``REPRO_SCALE=quick`` by default) or directly::

    PYTHONPATH=src python benchmarks/bench_transfer.py --full
"""

import argparse
import json
import sys
from pathlib import Path

from repro.arch.config import CoreConfig
from repro.core.detector import Eddie, TrainedDetector
from repro.em.scenario import EmScenario
from repro.experiments.report import format_table
from repro.experiments.runner import Scale
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix
from repro.transfer import DeviceVariant, calibrate_model

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUTPUT = _REPO_ROOT / "BENCH_transfer.json"

_PROGRAM = "sha"

#: The drift x gain x cache variant grid. ``identity`` is the control
#: cell (calibrating against the same device must stay harmless); every
#: other cell is drifted, so the gates apply to it.
_VARIANTS = {
    "identity": DeviceVariant(name="identity"),
    "d2": DeviceVariant(name="d2", clock_scale=1.02),
    "d5": DeviceVariant(name="d5", clock_scale=1.05),
    "d2_gain": DeviceVariant(name="d2_gain", clock_scale=1.02, gain=0.5),
    "d5_gain": DeviceVariant(name="d5_gain", clock_scale=1.05, gain=0.5),
    "d2_cache": DeviceVariant(name="d2_cache", clock_scale=1.02, l1_kib=16),
    "d5_gain_cache": DeviceVariant(
        name="d5_gain_cache", clock_scale=1.05, gain=0.5, l1_kib=16
    ),
}

#: The cells the default (CI) run exercises: the control, a pure drift,
#: drift + cache geometry (exercises the quantile stage), and drift +
#: gain. ``--full`` runs the whole grid.
_DEFAULT_CELLS = ("identity", "d2", "d2_cache", "d5_gain")

#: Seed block for the unlabeled calibration captures, disjoint from the
#: train/monitor seed ranges.
_CAPTURE_SEED = 77_000


def _balanced_accuracy(model, scenario, scale, seed_base):
    """Balanced accuracy of one model against one variant scenario.

    TPR comes from ``metrics.detected`` (a report inside/after an
    injected span); TNR counts a clean run as a false alarm when it
    emits any report at all -- ``detected`` is defined off injected
    spans, so it can never fire on a clean run.
    """
    detector = TrainedDetector(model, scenario)
    clean = [
        detector.monitor(seed=scale.monitor_seed(k) + seed_base).metrics
        for k in range(scale.clean_runs)
    ]
    scenario.simulator.set_loop_injection(
        INJECTION_LOOPS[_PROGRAM], injection_mix(4, 4), 1.0
    )
    injected = [
        detector.monitor(seed=scale.injected_seed(k) + seed_base).metrics
        for k in range(scale.injected_runs)
    ]
    scenario.simulator.clear_injections()
    tpr = sum(int(m.detected) for m in injected) / len(injected)
    tnr = 1.0 - sum(int(m.n_reports > 0) for m in clean) / len(clean)
    return {
        "tpr": tpr,
        "tnr": tnr,
        "accuracy": (tpr + tnr) / 2.0,
        "clean_reports": [m.n_reports for m in clean],
    }


def _run_cell(base_model, base_scenario, variant, scale, seed_base):
    """Uncal / cal / retrain accuracy of one variant cell."""
    scenario = variant.apply(base_scenario)
    cell = {
        "variant": variant.name,
        "description": variant.describe(),
        "drifted": variant.is_drifted,
        "uncal": _balanced_accuracy(base_model, scenario, scale, seed_base),
    }
    capture = scenario.capture(seed=_CAPTURE_SEED + seed_base)
    result = calibrate_model(
        base_model, capture, variant=variant.describe()
    )
    cell["cal"] = _balanced_accuracy(
        result.model, scenario, scale, seed_base
    )
    cell["calibration"] = {
        "freq_scale": result.report.freq_scale,
        "windows": result.report.windows,
        "snapped_fraction": result.report.snapped_fraction,
        "capture_ms": capture.iq.duration * 1e3,
        "method": result.model.calibration.method,
    }
    retrained = Eddie().train(
        BENCHMARKS[_PROGRAM](), scenario=scenario,
        runs=scale.train_runs, seed=scale.train_seed() + seed_base + 500,
    )
    cell["retrain"] = _balanced_accuracy(
        retrained.model, scenario, scale, seed_base
    )
    return cell


def run_benchmark(scale_name="quick", cell_names=_DEFAULT_CELLS):
    scale = {"quick": Scale.quick, "default": Scale.default,
             "paper": Scale.paper}[scale_name]()
    unknown = [n for n in cell_names if n not in _VARIANTS]
    if unknown:
        raise SystemExit(
            f"unknown variants {unknown}; have {sorted(_VARIANTS)}"
        )
    core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
    base_scenario = EmScenario.build(BENCHMARKS[_PROGRAM](), core=core)
    # Train ONCE; every variant cell deploys this same base model.
    base = Eddie().train(
        BENCHMARKS[_PROGRAM](), scenario=base_scenario,
        runs=scale.train_runs, seed=scale.train_seed(),
    )
    cells = []
    for ci, name in enumerate(cell_names):
        # Each cell gets its own deterministic seed block so the cells
        # are independent scenario draws (same scheme as bench_denoise).
        cells.append(
            _run_cell(
                base.model, base_scenario, _VARIANTS[name], scale,
                seed_base=1000 * ci,
            )
        )
    report = {
        "benchmark": "transfer-calibration",
        "scale": scale_name,
        "program": _PROGRAM,
        "deployments": {
            "uncal": "base model, no adaptation",
            "cal": ("calibrate_model() from one short unlabeled "
                    "target capture"),
            "retrain": "full per-variant training (upper bound)",
        },
        "cells": cells,
        "gates": _check_gates(cells),
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _check_gates(cells):
    """The acceptance gates, evaluated and recorded in the report.

    - ``calibrated_beats_uncalibrated``: on every drifted variant,
      calibrated balanced accuracy strictly exceeds uncalibrated.
    - ``calibrated_matches_retrain``: on every drifted variant,
      calibrated accuracy is within 5 points of full retraining.
    """
    drifted = [c for c in cells if c["drifted"]]
    return {
        "calibrated_beats_uncalibrated": bool(drifted) and all(
            c["cal"]["accuracy"] > c["uncal"]["accuracy"] for c in drifted
        ),
        "calibrated_matches_retrain": bool(drifted) and all(
            c["cal"]["accuracy"] >= c["retrain"]["accuracy"] - 0.05
            for c in drifted
        ),
    }


def _format(report):
    rows = [
        [c["variant"], c["description"].split(": ", 1)[1],
         f"{c['uncal']['accuracy']:.2f}",
         f"{c['cal']['accuracy']:.2f}",
         f"{c['retrain']['accuracy']:.2f}",
         f"{c['calibration']['freq_scale']:.5f}"]
        for c in report["cells"]
    ]
    table = format_table(
        f"Train-once/deploy-many balanced accuracy ({report['program']}, "
        "8-instruction loop injection)",
        ["Variant", "Perturbation", "Uncal", "Cal", "Retrain", "Scale"],
        rows,
    )
    gates = report["gates"]
    return "\n".join([
        table,
        f"  cal > uncal (drifted variants)   : "
        f"{gates['calibrated_beats_uncalibrated']}",
        f"  cal >= retrain - 0.05 (drifted)  : "
        f"{gates['calibrated_matches_retrain']}",
        f"  -> {_OUTPUT}",
    ])


def test_transfer_benchmark(scale, show):
    import os

    scale_name = os.environ.get("REPRO_SCALE", "quick")
    report = run_benchmark(scale_name=scale_name)
    show(_format(report))
    assert report["gates"]["calibrated_beats_uncalibrated"], (
        "calibration failed to strictly beat the uncalibrated base "
        "model on a drifted variant"
    )
    assert report["gates"]["calibrated_matches_retrain"], (
        "calibration fell more than 5 points short of full retraining "
        "on a drifted variant"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "paper"))
    parser.add_argument("--cells", nargs="*", default=None,
                        help="variant cell names (default: control + one "
                             "per perturbation class)")
    parser.add_argument("--full", action="store_true",
                        help="run the whole drift x gain x cache grid")
    args = parser.parse_args()
    if args.full:
        names = tuple(_VARIANTS)
    else:
        names = tuple(args.cells) if args.cells else _DEFAULT_CELLS
    result = run_benchmark(scale_name=args.scale, cell_names=names)
    print(_format(result))
    sys.exit(0 if all(result["gates"].values()) else 1)
