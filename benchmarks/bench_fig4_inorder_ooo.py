"""Regenerates Figure 4: per-region latency, in-order vs out-of-order."""

from repro.experiments import fig4_inorder_ooo


def test_fig4_inorder_ooo(benchmark, scale, show):
    result = benchmark.pedantic(
        fig4_inorder_ooo.run, args=(scale,), rounds=1, iterations=1
    )
    show(fig4_inorder_ooo.format(result))
    # Paper finding: OOO cores need more detection latency on average.
    assert result.mean_latency("ooo") > result.mean_latency("inorder")
