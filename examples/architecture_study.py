#!/usr/bin/env python
"""Architecture sensitivity: how the core design affects EDDIE.

Reproduces the spirit of the paper's Section 5.3 interactively: trains
EDDIE on the same program across several core models (in-order vs
out-of-order, shallow vs deep pipelines) using the simulator's power
signal, and shows how the selected K-S group sizes -- and therefore
detection latency -- respond.

Run:  python examples/architecture_study.py
"""

import numpy as np

from repro import Eddie
from repro.arch.config import CoreConfig
from repro.programs.mibench import INJECTION_LOOPS, basicmath
from repro.programs.workloads import injection_mix


def evaluate(core: CoreConfig) -> dict:
    detector = Eddie().train(
        basicmath(), core=core, runs=8, seed=0, source="power"
    )
    hop_ms = detector.model.hop_duration * 1e3
    group_sizes = {
        region: profile.group_size
        for region, profile in detector.model.profiles.items()
        if region.startswith("loop:")
    }
    # Measure an actual detection latency with the standard injection.
    detector.source.set_loop_injection(
        INJECTION_LOOPS["basicmath"], injection_mix(4, 4), 1.0
    )
    latencies = []
    for seed in (500, 501, 502):
        report = detector.monitor(seed=seed)
        if report.metrics.detection_latency is not None:
            latencies.append(report.metrics.detection_latency * 1e3)
    detector.source.clear_injections()
    return {
        "group_sizes": group_sizes,
        "nominal_latency_ms": float(np.mean(list(group_sizes.values()))) * hop_ms,
        "measured_latency_ms": float(np.mean(latencies)) if latencies else None,
    }


def main() -> None:
    cores = [
        CoreConfig(kind="inorder", issue_width=2, pipeline_depth=8,
                   clock_hz=1e8, name="in-order, shallow"),
        CoreConfig(kind="inorder", issue_width=2, pipeline_depth=16,
                   clock_hz=1e8, name="in-order, deep"),
        CoreConfig(kind="ooo", issue_width=2, pipeline_depth=8, rob_size=64,
                   clock_hz=1e8, name="OOO, shallow"),
        CoreConfig(kind="ooo", issue_width=2, pipeline_depth=16, rob_size=64,
                   clock_hz=1e8, name="OOO, deep"),
    ]
    print(f"{'core':22s} {'per-region n':28s} {'nominal':>9s} {'measured':>9s}")
    for core in cores:
        stats = evaluate(core)
        ns = ",".join(str(n) for n in stats["group_sizes"].values())
        measured = (
            f"{stats['measured_latency_ms']:.2f}ms"
            if stats["measured_latency_ms"] is not None
            else "-"
        )
        print(
            f"{core.name:22s} n=[{ns}]".ljust(51)
            + f"{stats['nominal_latency_ms']:8.2f}ms {measured:>9s}"
        )
    print(
        "\nExpected shape (paper Sec. 5.3): the OOO cores need larger K-S "
        "groups\n(longer latency) than the in-order cores; pipeline depth "
        "matters mainly for OOO."
    )


if __name__ == "__main__":
    main()
