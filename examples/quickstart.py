#!/usr/bin/env python
"""Quickstart: train EDDIE on a program and catch a code injection.

This is the smallest end-to-end use of the library:

1. pick a benchmark program (a MiBench-like workload),
2. train a detector on injection-free EM captures,
3. monitor a clean run (no reports expected),
4. inject 8 instructions into a hot loop and monitor again (detected).

Run:  python examples/quickstart.py
"""

from repro import Eddie
from repro.arch.config import CoreConfig
from repro.programs.mibench import INJECTION_LOOPS, bitcount
from repro.programs.workloads import injection_mix


def main() -> None:
    # The paper's IoT target is a ~1 GHz in-order core; a scaled-down
    # clock keeps this demo fast (spectral geometry is clock-invariant).
    core = CoreConfig.iot_inorder(clock_hz=1e8)
    program = bitcount()

    print(f"training EDDIE on {program.name!r} (8 injection-free runs)...")
    detector = Eddie().train(program, core=core, runs=8, seed=0, source="em")
    for name, profile in detector.model.profiles.items():
        print(
            f"  region {name:24s} reference windows={profile.n_reference:4d} "
            f"peaks={profile.num_peaks} K-S group n={profile.group_size}"
        )

    print("\nmonitoring a clean run...")
    clean = detector.monitor(seed=100)
    print(
        f"  anomaly reports: {len(clean.result.reports)}   "
        f"false positives: {clean.metrics.false_positive_rate:.2f}%   "
        f"region-tracking coverage: {clean.metrics.coverage:.1f}%"
    )

    print("\ninjecting 4 integer + 4 memory instructions into the "
          f"{INJECTION_LOOPS['bitcount']!r} loop...")
    detector.source.simulator.set_loop_injection(
        INJECTION_LOOPS["bitcount"], injection_mix(4, 4), contamination=1.0
    )
    attacked = detector.monitor(seed=101)
    latency = attacked.metrics.detection_latency
    print(
        f"  detected: {attacked.metrics.detected}   "
        f"reports: {len(attacked.result.reports)}   "
        f"detection latency: "
        f"{latency * 1e3:.2f} ms" if latency is not None else "  NOT DETECTED"
    )


if __name__ == "__main__":
    main()
