#!/usr/bin/env python
"""IoT security monitoring: the paper's headline scenario, end to end.

Models a medical/industrial embedded device (the paper's motivating use
case) running a fixed firmware workload, monitored contactlessly through
its EM emanations:

- the *device*: a Cortex-A8-like in-order core running the susan image
  benchmark, emanating an AM-modulated clock observed through a noisy
  near-field channel with a narrowband interferer (a nearby radio);
- the *monitor*: EDDIE trained once, then auditing runs;
- the *attacks*: a shellcode burst between loops (~476k instructions) and
  a stealthy 8-instruction loop-body implant at 30% contamination.

Run:  python examples/iot_monitoring.py
"""

import numpy as np

from repro import Eddie
from repro.arch.config import CoreConfig
from repro.em.channel import ChannelModel, Interferer
from repro.em.receiver import Receiver
from repro.em.scenario import EmScenario
from repro.experiments.tables_common import shellcode_burst
from repro.programs.mibench import susan
from repro.programs.workloads import injection_mix


def main() -> None:
    core = CoreConfig.iot_inorder(clock_hz=1e8)
    # A harsher channel than the default: 20 dB SNR, an interfering tone,
    # and an 8-bit SDR front end.
    scenario = EmScenario.build(
        susan(),
        core=core,
        channel=ChannelModel(
            snr_db=20.0,
            interferers=(Interferer(freq_hz=1.9e6, amplitude=0.05),),
        ),
        receiver=Receiver(adc_bits=8),
    )

    print("training on 10 instrumented, injection-free runs...")
    detector = Eddie().train(susan(), scenario=scenario, runs=10, seed=0)

    print("\n-- audit 1: three clean runs --")
    fps, coverages = [], []
    for seed in (200, 201, 202):
        report = detector.monitor(seed=seed)
        fps.append(report.metrics.false_positive_rate)
        coverages.append(report.metrics.coverage)
        print(f"  seed {seed}: reports={len(report.result.reports)}")
    print(f"  false positives {np.mean(fps):.2f}%, coverage {np.mean(coverages):.1f}%")

    print("\n-- audit 2: shellcode burst between loop regions --")
    scenario.simulator.add_burst(shellcode_burst("loop:smooth"))
    report = detector.monitor(seed=300)
    scenario.simulator.clear_injections()
    _describe(report)

    print("\n-- audit 3: stealthy loop implant (30% of iterations) --")
    scenario.simulator.set_loop_injection(
        "smooth.inner", injection_mix(4, 4), contamination=0.3
    )
    report = detector.monitor(seed=301)
    scenario.simulator.clear_injections()
    _describe(report)


def _describe(report) -> None:
    metrics = report.metrics
    if metrics.detected:
        print(
            f"  DETECTED after {metrics.detection_latency * 1e3:.2f} ms "
            f"({len(report.result.reports)} reports; first anomaly in "
            f"region {report.result.reports[0].region!r})"
        )
    else:
        print("  not detected")


if __name__ == "__main__":
    main()
