#!/usr/bin/env python
"""The stealthy attacker's trade-off (paper Sections 5.4-5.5).

An attacker who controls a loop body can throttle how often their implant
runs (the contamination rate) and how much it does per iteration (the
injection size). This example sweeps both knobs against a trained
detector and prints the resulting detectability map -- the quantified
version of the paper's conclusion that evading EDDIE requires the
injected code to use a tiny share of the machine.

Run:  python examples/stealthy_attacker.py
"""

import numpy as np

from repro import Eddie
from repro.arch.config import CoreConfig
from repro.core.metrics import rejection_false_negative_rate
from repro.programs.workloads import injection_mix, multi_peak_loop_program


def flag_rate(detector, seed: int) -> float:
    """Share of injection-containing STS groups the K-S test flagged (%)."""
    report = detector.monitor(seed=seed)
    trace = report.trace
    window_s = detector.model.config.window_samples / detector.model.sample_rate
    fn = rejection_false_negative_rate(
        report.result, trace.injected_spans, window_s,
        detector.model.hop_duration,
    )
    return 100.0 - fn if fn is not None else 0.0


def main() -> None:
    core = CoreConfig.iot_inorder(clock_hz=1e8)
    program = multi_peak_loop_program(trips=20000)
    detector = Eddie().train(program, core=core, runs=8, seed=0, source="em")
    # A moderate fixed latency budget makes the stealth trade-off visible.
    detector = detector.with_group_size(48)
    simulator = detector.source.simulator

    sizes = (2, 4, 8, 16)
    rates = (0.1, 0.3, 1.0)
    print("share of injected windows flagged (%), by size x contamination:\n")
    header = "size\\rate " + "".join(f"{rate:>8.0%}" for rate in rates)
    print(header)
    for size in sizes:
        payload = injection_mix(size // 2, size - size // 2,
                                footprint=16 * 1024)
        cells = []
        for rate in rates:
            simulator.set_loop_injection("L", payload, rate)
            flagged = np.mean([flag_rate(detector, seed)
                               for seed in (700, 701, 702)])
            simulator.clear_injections()
            cells.append(f"{flagged:5.1f}")
        print(f"{size:>4d} instr" + "".join(f"{c:>8s}" for c in cells))

    print(
        "\nReading: larger implants and higher duty cycles are flagged on "
        "nearly every\nwindow; throttling down buys the attacker stealth "
        "only by shrinking the work\ndone per second toward zero -- the "
        "paper's conclusion."
    )


if __name__ == "__main__":
    main()
