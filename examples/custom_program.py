#!/usr/bin/env python
"""Monitoring your own firmware: building a program from scratch.

The library's IR is the integration point for monitoring arbitrary
firmware. This example models a small sensor-node control loop -- read
sensors, filter, occasionally transmit -- directly with the
:class:`~repro.programs.builder.ProgramBuilder`, trains EDDIE on it, and
shows the anomaly report when a logging implant is added to the filter
loop.

Run:  python examples/custom_program.py
"""

from repro import Eddie
from repro.arch.config import CoreConfig
from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, MemRef, OpClass
from repro.programs.workloads import fp_kernel, int_kernel, mem_kernel


def sensor_node_firmware():
    """A sensor node's main loop, as a region-level program.

    Phases per wake-up: sample the ADC ring buffer, run an FIR filter
    over it, then either transmit (rare, radio-register writes) or go
    back to sampling.
    """
    b = ProgramBuilder("sensor-node")
    b.param("n_samples", "int", 1800, 2600)
    b.param("n_filter", "int", 1400, 2000)
    b.param("tx_p", "float", 0.03, 0.08)

    b.block("boot", int_kernel(30, "bt"), next_block="sample")

    # ADC sampling: tight loop draining the ring buffer.
    b.counted_loop(
        "sample",
        int_kernel(90, "ad") + mem_kernel(6, "ad", "ring", 16 * 1024),
        trips="n_samples",
        exit="mid1",
    )
    b.block("mid1", int_kernel(18, "m1"), next_block="filter")

    # FIR filter: multiply-accumulate over the window.
    b.counted_loop(
        "filter",
        fp_kernel(130, "fi") + mem_kernel(4, "fi", "coeffs", 2048),
        trips="n_filter",
        exit="decide",
    )

    # Transmit rarely; otherwise loop back to sampling... which would make
    # one giant outer loop -- realistic, but for a bounded demo run we
    # transmit once and stop.
    b.branch_block("decide", int_kernel(14, "de"), taken="transmit",
                   not_taken="sleep", taken_prob="tx_p")
    b.counted_loop(
        "transmit",
        int_kernel(110, "tx") + [
            Instr(OpClass.STORE, dst=None, srcs=("txs",),
                  mem=MemRef("radio", footprint=4096)),
        ],
        trips=600,
        exit="sleep",
    )
    b.halt("sleep", int_kernel(10, "sl"))
    return b.build(entry="boot")


def main() -> None:
    program = sensor_node_firmware()
    core = CoreConfig.iot_inorder(clock_hz=1e8)

    print(f"program {program.name!r}: {program.static_size} static "
          f"instructions, params {[p.name for p in program.params]}")

    detector = Eddie().train(program, core=core, runs=8, seed=0, source="em")
    print("\ntrained regions:")
    for name, profile in detector.model.profiles.items():
        print(f"  {name:32s} peaks={profile.num_peaks} n={profile.group_size}")

    clean = detector.monitor(seed=400)
    print(f"\nclean audit: {len(clean.result.reports)} reports, "
          f"coverage {clean.metrics.coverage:.1f}%")

    # The implant: exfiltrate each filtered sample -- a store per filter
    # iteration into an attacker buffer, plus bookkeeping.
    implant = [
        Instr(OpClass.IADD, dst="ex0", srcs=("ex0",)),
        Instr(OpClass.LOGIC, dst="ex1", srcs=("ex0",)),
        Instr(OpClass.STORE, dst=None, srcs=("ex1",),
              mem=MemRef("exfil", footprint=256 * 1024)),
    ]
    detector.source.simulator.set_loop_injection("filter", implant, 1.0)
    attacked = detector.monitor(seed=401)
    if attacked.detected:
        first = attacked.result.reports[0]
        print(
            f"implant audit: DETECTED after "
            f"{attacked.metrics.detection_latency * 1e3:.2f} ms "
            f"(anomaly in region {first.region!r})"
        )
    else:
        print("implant audit: not detected")


if __name__ == "__main__":
    main()
