"""Hierarchical tracing spans with wall/CPU timing.

A span marks one pipeline stage (``with span("train"): ...``); spans nest,
and every completed span is appended to the process-wide
:class:`TraceCollector` with a pointer to its parent, so the collector's
flat list is a forest. The open-span stack is thread-local (concurrent
threads each build their own branch); the completed list is shared under a
lock.

Disabled-by-default: :func:`span` returns a shared no-op context manager
unless :func:`enable` was called, so instrumented hot paths cost one
attribute check (the ``< 2%`` overhead budget of DESIGN.md D16 --
measured by ``benchmarks/bench_pipeline.py``).

Process-pool fan-outs survive tracing: a worker exports its completed
spans (:func:`export_spans`), the parent re-attaches them under its
currently open span (:func:`merge_spans`), re-indexing parents and
keeping the worker's pid so merged timelines remain attributable.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "OBS",
    "SpanRecord",
    "TraceCollector",
    "aggregate_spans",
    "disable",
    "enable",
    "enabled",
    "estimate_span_overhead_s",
    "export_spans",
    "format_span_tree",
    "get_collector",
    "merge_spans",
    "reset_tracing",
    "span",
]


class _ObsState:
    """Process-wide observability switch (shared by tracing and metrics).

    Call sites guard with ``if OBS.enabled:`` -- a single attribute load
    on the disabled path.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


OBS = _ObsState()


@dataclass
class SpanRecord:
    """One completed span.

    Attributes:
        name: stage name (dotted, e.g. ``"monitor.trace"``).
        parent: index of the enclosing span in the collector's list, or
            ``-1`` for a root span.
        t_start: wall-clock start (``time.perf_counter`` domain of the
            recording process; only differences are meaningful).
        wall_s: elapsed wall time in seconds.
        cpu_s: elapsed process CPU time in seconds.
        pid: OS process id that recorded the span (workers differ from
            the parent after a merge).
    """

    name: str
    parent: int
    t_start: float
    wall_s: float
    cpu_s: float
    pid: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "parent": self.parent,
            "t_start": self.t_start,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            parent=int(data["parent"]),
            t_start=float(data["t_start"]),
            wall_s=float(data["wall_s"]),
            cpu_s=float(data["cpu_s"]),
            pid=int(data["pid"]),
        )


class TraceCollector:
    """Process-wide store of completed spans.

    The completed list is append-only under ``_lock``; the stack of open
    span indices is thread-local so concurrent threads nest independently.
    """

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- open-span stack ------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_parent(self) -> int:
        stack = self._stack()
        return stack[-1] if stack else -1

    def open_span(self, name: str) -> int:
        """Reserve a slot for a starting span; returns its index."""
        with self._lock:
            index = len(self.spans)
            self.spans.append(
                SpanRecord(
                    name=name,
                    parent=self.current_parent(),
                    t_start=0.0,
                    wall_s=0.0,
                    cpu_s=0.0,
                    pid=os.getpid(),
                )
            )
        self._stack().append(index)
        return index

    def close_span(
        self, index: int, t_start: float, wall_s: float, cpu_s: float
    ) -> None:
        stack = self._stack()
        if stack and stack[-1] == index:
            stack.pop()
        if index >= len(self.spans):
            # The collector was reset while this span was open (e.g. a
            # worker exported mid-task); drop the record rather than
            # corrupting someone else's slot.
            return
        record = self.spans[index]
        record.t_start = t_start
        record.wall_s = wall_s
        record.cpu_s = cpu_s

    # -- export / merge (process-pool support) -------------------------------

    def export(self, reset: bool = False) -> List[Dict[str, Any]]:
        """Completed spans as plain dicts (open spans are excluded).

        ``reset`` empties the collector -- callers (the process-pool
        worker shim) invoke it between tasks, when no span is open.
        """
        with self._lock:
            done = [s.to_dict() for s in self.spans if s.t_start]
            if reset:
                self.spans = []
        return done

    def merge(self, exported: List[Dict[str, Any]]) -> None:
        """Attach a child process's exported spans under the current span.

        Parent indices are re-based onto this collector's list; the
        child's root spans become children of the caller's currently open
        span (or roots, outside any span).
        """
        if not exported:
            return
        attach_to = self.current_parent()
        with self._lock:
            offset = len(self.spans)
            for item in exported:
                record = SpanRecord.from_dict(item)
                record.parent = (
                    attach_to if record.parent < 0 else record.parent + offset
                )
                self.spans.append(record)

    def clear(self) -> None:
        with self._lock:
            self.spans = []
        self._local = threading.local()


_collector = TraceCollector()


def get_collector() -> TraceCollector:
    return _collector


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    __slots__ = ("_name", "_index", "_t0", "_c0", "_abs0")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> "_LiveSpan":
        self._index = _collector.open_span(self._name)
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        _collector.close_span(self._index, self._t0, wall, cpu)


def span(name: str):
    """Context manager timing one pipeline stage (no-op when disabled)."""
    if not OBS.enabled:
        return _NOOP_SPAN
    return _LiveSpan(name)


def enable() -> None:
    """Turn observability (tracing + metrics) on for this process."""
    OBS.enabled = True


def disable() -> None:
    OBS.enabled = False


def enabled() -> bool:
    return OBS.enabled


def reset_tracing() -> None:
    """Drop all completed spans (the enabled flag is left as is)."""
    _collector.clear()


def export_spans(reset: bool = False) -> List[Dict[str, Any]]:
    """This process's completed spans, ready to cross a process boundary."""
    return _collector.export(reset=reset)


def merge_spans(exported: List[Dict[str, Any]]) -> None:
    """Fold a worker's exported spans into this process's collector."""
    _collector.merge(exported)


def aggregate_spans(
    spans: Optional[List[SpanRecord]] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-stage rollup: name -> {count, wall_s, cpu_s}.

    This is the per-stage timing block a run manifest stores; the flat
    span forest stays available for tree rendering.
    """
    if spans is None:
        spans = _collector.spans
    out: Dict[str, Dict[str, float]] = {}
    for record in spans:
        agg = out.setdefault(
            record.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        agg["count"] += 1
        agg["wall_s"] += record.wall_s
        agg["cpu_s"] += record.cpu_s
    return out


def format_span_tree(
    spans: Optional[List[SpanRecord]] = None, max_spans: int = 200
) -> str:
    """Render the span forest as an indented tree (for ``--trace``).

    Sibling spans of the same name are collapsed into one line with a
    repeat count and summed times, so a 10-benchmark fan-out stays
    readable.
    """
    if spans is None:
        spans = _collector.spans
    children: Dict[int, List[int]] = {}
    for i, record in enumerate(spans):
        children.setdefault(record.parent, []).append(i)

    lines: List[str] = []

    def emit(parent: int, depth: int) -> None:
        groups: Dict[str, List[int]] = {}
        for i in children.get(parent, []):
            groups.setdefault(spans[i].name, []).append(i)
        for name, indices in groups.items():
            if len(lines) >= max_spans:
                return
            wall = sum(spans[i].wall_s for i in indices)
            cpu = sum(spans[i].cpu_s for i in indices)
            count = f" x{len(indices)}" if len(indices) > 1 else ""
            lines.append(
                f"{'  ' * depth}{name}{count}: "
                f"wall={wall:.3f}s cpu={cpu:.3f}s"
            )
            # Recurse under the group's first instance only when collapsed
            # (children of repeated stages are themselves repeated).
            for i in indices:
                emit(i, depth + 1)

    emit(-1, 0)
    if len(lines) >= max_spans:
        lines.append(f"... ({len(spans)} spans total)")
    return "\n".join(lines)


def estimate_span_overhead_s(samples: int = 512) -> float:
    """Measured cost of one enabled span enter/exit, in seconds.

    Runs against a throwaway collector so the calibration does not
    pollute the real trace. Used by manifests to report the enabled-mode
    observability overhead (span count x this).
    """
    global _collector
    real = _collector
    _collector = TraceCollector()
    try:
        t0 = time.perf_counter()
        for _ in range(samples):
            with _LiveSpan("obs.calibration"):
                pass
        elapsed = time.perf_counter() - t0
    finally:
        _collector = real
    return elapsed / samples
