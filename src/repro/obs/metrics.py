"""Typed counters, gauges, and histograms, registered by module.

Every pipeline module registers its instruments under its dotted module
name (``counter("core.monitor", "windows_scored")``); one
:func:`snapshot` call exports the whole registry as a JSON-able dict
that run manifests embed and :func:`merge_snapshot` folds worker-process
snapshots back into the parent -- which is what makes totals (e.g. the
artifact cache's hit/miss counts) correct under the
``ProcessPoolExecutor`` fan-out, where per-process tallies alone are
silently partial.

All mutation is gated on the shared enabled flag (:data:`~repro.obs.trace.OBS`),
so the disabled path costs one attribute check per call site. Increments
take a per-instrument lock: counter totals stay exact under concurrent
threads (plain ``+=`` on an attribute is not atomic across bytecodes).

Merge semantics (deterministic when merges happen in task order):

- counters add;
- gauges take the incoming value if the incoming instrument was ever set;
- histograms add bin counts and pool count/sum/min/max (bin edges must
  match; mismatched edges raise).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import OBS

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "merge_snapshot",
    "record_count",
    "reset_metrics",
    "snapshot",
]

_registry: Dict[Tuple[str, str], Union["Counter", "Gauge", "Histogram"]] = {}
_registry_lock = threading.Lock()


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("module", "name", "value", "_lock")

    kind = "counter"

    def __init__(self, module: str, name: str) -> None:
        self.module = module
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if not OBS.enabled:
            return
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        with self._lock:
            self.value += int(n)

    def to_dict(self) -> int:
        return self.value

    def merge(self, value: int) -> None:
        with self._lock:
            self.value += int(value)

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A last-write-wins scalar (config values, sizes, levels)."""

    __slots__ = ("module", "name", "value", "is_set", "_lock")

    kind = "gauge"

    def __init__(self, module: str, name: str) -> None:
        self.module = module
        self.name = name
        self.value = 0.0
        self.is_set = False
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not OBS.enabled:
            return
        with self._lock:
            self.value = float(value)
            self.is_set = True

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "set": self.is_set}

    def merge(self, data: Dict[str, Any]) -> None:
        with self._lock:
            if data.get("set"):
                self.value = float(data["value"])
                self.is_set = True

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0
            self.is_set = False


class Histogram:
    """Binned distribution summary of a stream of observations.

    ``edges`` (ascending bin boundaries) are fixed at registration so
    snapshots from different processes merge bin-by-bin; observations
    below the first or above the last edge land in the two overflow
    slots. Alongside the bins it tracks count / sum / min / max, so a
    manifest can report summary statistics even for wide-range inputs
    (trace power) where the bins are coarse.
    """

    __slots__ = ("module", "name", "edges", "bins", "count", "total",
                 "min", "max", "_lock")

    kind = "histogram"

    def __init__(
        self, module: str, name: str, edges: Sequence[float]
    ) -> None:
        if len(edges) < 2 or any(
            b <= a for a, b in zip(edges, list(edges)[1:])
        ):
            raise ValueError(
                f"histogram {name!r}: edges must be >= 2 ascending values"
            )
        self.module = module
        self.name = name
        self.edges = [float(e) for e in edges]
        # bins[0] = below edges[0]; bins[-1] = at/above edges[-1].
        self.bins = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        if not OBS.enabled:
            return
        self.record_many([value])

    def record_many(self, values: Sequence[float]) -> None:
        """Record a batch in one lock acquisition (the hot-path shape:
        the monitor flushes one run's observations at once)."""
        if not OBS.enabled or len(values) == 0:
            return
        clean = [float(v) for v in values if not math.isnan(float(v))]
        if not clean:
            return
        with self._lock:
            for v in clean:
                self.bins[self._bin_of(v)] += 1
                self.total += v
            self.count += len(clean)
            lo, hi = min(clean), max(clean)
            self.min = lo if self.min is None else min(self.min, lo)
            self.max = hi if self.max is None else max(self.max, hi)

    def _bin_of(self, value: float) -> int:
        # Linear scan is fine: instrument edges are O(10) and recording
        # is batched per run, not per sample.
        if value < self.edges[0]:
            return 0
        for i in range(len(self.edges) - 1):
            if value < self.edges[i + 1]:
                return i + 1
        return len(self.edges)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": self.edges,
            "bins": list(self.bins),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, data: Dict[str, Any]) -> None:
        if [float(e) for e in data["edges"]] != self.edges:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshots with "
                f"different bin edges"
            )
        with self._lock:
            self.bins = [a + b for a, b in zip(self.bins, data["bins"])]
            self.count += int(data["count"])
            self.total += float(data["sum"])
            if data["min"] is not None:
                self.min = (
                    data["min"] if self.min is None
                    else min(self.min, float(data["min"]))
                )
            if data["max"] is not None:
                self.max = (
                    data["max"] if self.max is None
                    else max(self.max, float(data["max"]))
                )

    def reset(self) -> None:
        with self._lock:
            self.bins = [0] * (len(self.edges) + 1)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


def _get_or_register(module: str, name: str, factory):
    key = (module, name)
    instrument = _registry.get(key)
    if instrument is None:
        with _registry_lock:
            instrument = _registry.get(key)
            if instrument is None:
                instrument = factory()
                _registry[key] = instrument
    return instrument


def counter(module: str, name: str) -> Counter:
    """The (module, name) counter, registered on first use."""
    instrument = _get_or_register(module, name, lambda: Counter(module, name))
    if not isinstance(instrument, Counter):
        raise TypeError(f"{module}/{name} is a {instrument.kind}, not a counter")
    return instrument


def gauge(module: str, name: str) -> Gauge:
    instrument = _get_or_register(module, name, lambda: Gauge(module, name))
    if not isinstance(instrument, Gauge):
        raise TypeError(f"{module}/{name} is a {instrument.kind}, not a gauge")
    return instrument


def histogram(module: str, name: str, edges: Sequence[float]) -> Histogram:
    instrument = _get_or_register(
        module, name, lambda: Histogram(module, name, edges)
    )
    if not isinstance(instrument, Histogram):
        raise TypeError(
            f"{module}/{name} is a {instrument.kind}, not a histogram"
        )
    return instrument


def record_count(module: str, name: str, n: int = 1) -> None:
    """One-line guarded increment for call sites without a cached handle."""
    if OBS.enabled:
        counter(module, name).inc(n)


def snapshot() -> Dict[str, Dict[str, Any]]:
    """The whole registry as a JSON-able dict, sorted for determinism:

    ``{"counters": {"mod/name": int}, "gauges": {...}, "histograms": {...}}``
    """
    with _registry_lock:
        items = sorted(_registry.items())
    out: Dict[str, Dict[str, Any]] = {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    for (module, name), instrument in items:
        out[instrument.kind + "s"][f"{module}/{name}"] = instrument.to_dict()
    return out


def snapshot_module(module: str) -> Dict[str, Dict[str, Any]]:
    """Like :func:`snapshot`, restricted to one module's instruments.

    The serving layer's STATS frames use this to export only the
    ``repro.serve`` instruments instead of the whole process registry.
    """
    with _registry_lock:
        items = sorted(_registry.items())
    out: Dict[str, Dict[str, Any]] = {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    for (mod, name), instrument in items:
        if mod == module:
            out[instrument.kind + "s"][f"{mod}/{name}"] = instrument.to_dict()
    return out


def merge_snapshot(snap: Dict[str, Dict[str, Any]]) -> None:
    """Fold a worker process's snapshot into this process's registry.

    Instruments the parent has not registered yet are created on the fly
    (histogram edges come from the snapshot).
    """
    for full_name, value in snap.get("counters", {}).items():
        module, name = full_name.split("/", 1)
        counter(module, name).merge(value)
    for full_name, value in snap.get("gauges", {}).items():
        module, name = full_name.split("/", 1)
        gauge(module, name).merge(value)
    for full_name, value in snap.get("histograms", {}).items():
        module, name = full_name.split("/", 1)
        histogram(module, name, value["edges"]).merge(value)


def reset_metrics() -> None:
    """Unregister every instrument.

    Handles obtained before the reset keep working but detach from the
    registry (their later values will not appear in snapshots); call
    sites therefore re-fetch instruments per run rather than caching
    them across runs.
    """
    with _registry_lock:
        _registry.clear()
