"""Observability layer: tracing spans, typed metrics, run manifests.

Zero-dependency (numpy only, which the pipeline already requires) and
disabled by default: every instrumentation point in the pipeline guards
on ``OBS.enabled``, a single attribute check, so the disabled path stays
within the <2% overhead budget on ``bench_pipeline`` (DESIGN.md D16).

Enable with :func:`enable` (the CLI's ``--trace`` / ``--manifest-dir``
flags do), or set ``REPRO_OBS=1`` in the environment before the first
import of this package.

The three sub-layers:

- :mod:`repro.obs.trace` -- hierarchical spans (``with span("train")``)
  with wall/CPU time, a process-wide collector, and export/merge support
  so the ``ProcessPoolExecutor`` fan-out's child-process traces fold back
  into the parent (``repro.experiments.runner.parallel_map`` wires this).
- :mod:`repro.obs.metrics` -- counters/gauges/histograms registered by
  module, exported with one :func:`snapshot` call and merged across
  processes with :func:`merge_snapshot`.
- :mod:`repro.obs.manifest` -- per-experiment run manifests (config
  fingerprint, seeds, git SHA, per-stage timings, metric snapshot,
  result summary) and the ``repro obs diff`` machinery.

Typical embedded use::

    from repro import obs

    obs.enable()
    with obs.span("my-stage"):
        run_pipeline()
    print(obs.format_span_tree())
    print(obs.snapshot())
"""

from __future__ import annotations

import os as _os

from repro.obs.manifest import (
    DEFAULT_DIFF_IGNORE,
    MANIFEST_VERSION,
    build_manifest,
    diff_manifests,
    format_diff,
    git_sha,
    jsonify,
    load_manifest,
    manifest_path,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    counter,
    gauge,
    histogram,
    merge_snapshot,
    record_count,
    reset_metrics,
    snapshot,
    snapshot_module,
)
from repro.obs.trace import (
    OBS,
    SpanRecord,
    TraceCollector,
    aggregate_spans,
    disable,
    enable,
    enabled,
    export_spans,
    format_span_tree,
    get_collector,
    merge_spans,
    reset_tracing,
    span,
)

__all__ = [
    "DEFAULT_DIFF_IGNORE",
    "MANIFEST_VERSION",
    "OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanRecord",
    "TraceCollector",
    "aggregate_spans",
    "build_manifest",
    "counter",
    "diff_manifests",
    "disable",
    "enable",
    "enabled",
    "export_spans",
    "export_state",
    "format_diff",
    "format_span_tree",
    "gauge",
    "get_collector",
    "git_sha",
    "histogram",
    "jsonify",
    "load_manifest",
    "manifest_path",
    "merge_export",
    "merge_snapshot",
    "merge_spans",
    "record_count",
    "reset",
    "reset_metrics",
    "reset_tracing",
    "snapshot",
    "snapshot_module",
    "span",
    "write_manifest",
]


def reset() -> None:
    """Fresh observability state: drop all spans and instruments.

    The enabled flag is left untouched; experiments reset at the start of
    a run so one process can produce several independent manifests.
    """
    reset_tracing()
    reset_metrics()


def export_state(reset_after: bool = False) -> dict:
    """This process's full observability state (spans + metrics) as a
    picklable dict -- what a pool worker sends back with each task."""
    state = {"spans": export_spans(reset=reset_after), "metrics": snapshot()}
    if reset_after:
        reset_metrics()
    return state


def merge_export(state: dict) -> None:
    """Fold a worker's :func:`export_state` payload into this process."""
    merge_spans(state.get("spans", []))
    merge_snapshot(state.get("metrics", {}))


if _os.environ.get("REPRO_OBS", "").strip() not in ("", "0", "false"):
    enable()
