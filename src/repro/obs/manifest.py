"""Per-experiment run manifests: what ran, with what config, and what
every stage produced.

A manifest is one JSON artifact per experiment run with four sections:

- ``identity``: experiment name, the full scaling config, its
  content-address (reusing :mod:`repro.cache`'s canonical fingerprints),
  and the seed namespaces -- everything that *determines* the run.
- ``results``: the experiment's result structure plus the full metric
  snapshot (stage counters, per-region K-S rejections, STS peak-count /
  trace-power / K-S p-value histograms) -- everything the run *produced*.
- ``timings``: per-stage span rollups, total wall time, and the
  enabled-mode observability overhead estimate.
- ``environment``: git SHA, interpreter/library versions, worker count,
  cache configuration, timestamp -- where/when it ran.

Two runs with identical seeds and config must agree on ``identity`` and
``results`` exactly; ``timings`` and ``environment`` legitimately differ,
so :func:`diff_manifests` ignores them by default. That contract is what
the golden-trace regression suite (``tests/golden/``) and the
parallel-equals-serial test pin down.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "MANIFEST_VERSION",
    "DEFAULT_DIFF_IGNORE",
    "build_manifest",
    "diff_manifests",
    "format_diff",
    "git_sha",
    "load_manifest",
    "manifest_path",
    "write_manifest",
]

MANIFEST_VERSION = 1

# Sections that legitimately differ between reruns of the same config.
DEFAULT_DIFF_IGNORE: Tuple[str, ...] = ("timings", "environment")


# -- JSON-able views of arbitrary result structures ---------------------------


def jsonify(obj: Any) -> Any:
    """A plain-JSON view of an experiment result structure.

    Dataclasses become dicts, numpy scalars/arrays become Python
    numbers/lists, non-string dict keys are stringified (sorted for
    determinism). Floats survive a JSON round-trip exactly (Python's
    ``repr`` shortest-float behaviour), so equality of jsonified trees is
    equality of the results.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, enum.Enum):
        return str(obj.value)
    if isinstance(obj, np.generic):
        return jsonify(obj.item())
    if isinstance(obj, np.ndarray):
        return [jsonify(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonify(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {
            _key_str(k): jsonify(v)
            for k, v in sorted(obj.items(), key=lambda kv: _key_str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_key_str(v) for v in obj)
    return repr(obj)


def _key_str(key: Any) -> str:
    return key if isinstance(key, str) else repr(key)


# -- environment --------------------------------------------------------------


def git_sha(start_dir: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit, or None outside a work tree."""
    candidates = []
    if start_dir is not None:
        candidates.append(Path(start_dir))
    candidates.append(Path.cwd())
    # The source checkout this module was imported from (src/repro/obs/..).
    candidates.append(Path(__file__).resolve().parents[3])
    for directory in candidates:
        try:
            out = subprocess.run(
                ["git", "-C", str(directory), "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=5,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if out.returncode == 0:
            return out.stdout.strip()
    return None


# -- building -----------------------------------------------------------------


def build_manifest(
    experiment: str,
    scale: Any = None,
    result: Any = None,
    jobs: Any = None,
    scale_name: Optional[str] = None,
    extra_identity: Optional[Dict[str, Any]] = None,
    cache_info: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest of the observability state accumulated for
    one experiment run (spans + metrics recorded since the last reset)."""
    from repro.cache import describe, fingerprint  # import-light cycle guard

    identity: Dict[str, Any] = {
        "experiment": experiment,
        "scale_name": scale_name,
    }
    if scale is not None:
        identity["scale"] = jsonify(scale)
        identity["config_fingerprint"] = fingerprint(
            "manifest", experiment, scale
        )
        seeds: Dict[str, Any] = {}
        if hasattr(scale, "seed"):
            seeds["base"] = scale.seed
        for namespace in ("train_seed", "monitor_seed", "injected_seed"):
            method = getattr(scale, namespace, None)
            if callable(method):
                seeds[namespace] = method(0)
        identity["seeds"] = seeds
    else:
        identity["config_fingerprint"] = fingerprint("manifest", experiment)
    if extra_identity:
        identity.update(jsonify(extra_identity))

    results: Dict[str, Any] = {"metrics": obs_metrics.snapshot()}
    if result is not None:
        results["result"] = jsonify(result)
        results["result_type"] = type(result).__name__

    spans = obs_trace.get_collector().spans
    per_span = obs_trace.estimate_span_overhead_s() if spans else 0.0
    timings: Dict[str, Any] = {
        "stages": obs_trace.aggregate_spans(spans),
        "total_wall_s": sum(s.wall_s for s in spans if s.parent < 0),
        "observability": {
            "enabled": obs_trace.enabled(),
            "spans_recorded": len(spans),
            "per_span_overhead_s": per_span,
            "estimated_overhead_s": per_span * len(spans),
        },
    }

    environment: Dict[str, Any] = {
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "jobs": jobs,
        "cache": cache_info,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }

    return {
        "schema": {"kind": "repro-run-manifest", "version": MANIFEST_VERSION},
        "identity": identity,
        "results": results,
        "timings": timings,
        "environment": environment,
    }


def manifest_path(
    directory: Union[str, Path], experiment: str, scale_name: Optional[str]
) -> Path:
    suffix = f"_{scale_name}" if scale_name else ""
    return Path(directory) / f"{experiment}{suffix}.json"


def write_manifest(manifest: Dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True, allow_nan=True) + "\n"
    )
    return path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    data = json.loads(Path(path).read_text())
    kind = data.get("schema", {}).get("kind")
    if kind != "repro-run-manifest":
        raise ValueError(f"{path}: not a run manifest (kind={kind!r})")
    return data


# -- diffing ------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Difference:
    """One divergence between two manifests."""

    path: str
    a: Any
    b: Any

    def __str__(self) -> str:
        return f"{self.path}: {self.a!r} != {self.b!r}"


def diff_manifests(
    a: Dict[str, Any],
    b: Dict[str, Any],
    ignore: Sequence[str] = DEFAULT_DIFF_IGNORE,
    rtol: float = 1e-9,
) -> List[Difference]:
    """Stage-by-stage structural diff of two manifests.

    ``ignore`` names top-level sections excluded from the comparison --
    by default the two that legitimately vary between reruns (timings,
    environment). Numbers compare with relative tolerance ``rtol`` to
    absorb summation-order jitter (a parallel run folds worker partial
    sums in task order; a serial run accumulates record by record).
    Returns the empty list when the manifests agree.
    """
    diffs: List[Difference] = []
    keys = sorted(set(a) | set(b))
    for key in keys:
        if key in ignore:
            continue
        _diff_value(a.get(key), b.get(key), key, rtol, diffs)
    return diffs


def _numbers(x: Any, y: Any) -> bool:
    return (
        isinstance(x, (int, float)) and not isinstance(x, bool)
        and isinstance(y, (int, float)) and not isinstance(y, bool)
    )


def _diff_value(
    a: Any, b: Any, path: str, rtol: float, out: List[Difference]
) -> None:
    if _numbers(a, b):
        fa, fb = float(a), float(b)
        if math.isnan(fa) and math.isnan(fb):
            return
        if fa == fb:
            return
        if math.isclose(fa, fb, rel_tol=rtol, abs_tol=rtol):
            return
        out.append(Difference(path, a, b))
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            _diff_value(
                a.get(key, _MISSING), b.get(key, _MISSING),
                f"{path}.{key}", rtol, out,
            )
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(
                Difference(f"{path}.<len>", len(a), len(b))
            )
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _diff_value(x, y, f"{path}[{i}]", rtol, out)
        return
    if a != b:
        out.append(
            Difference(
                path,
                "<missing>" if a is _MISSING else a,
                "<missing>" if b is _MISSING else b,
            )
        )


class _Missing:
    def __repr__(self) -> str:
        return "<missing>"


_MISSING = _Missing()


def format_diff(diffs: Sequence[Difference], limit: int = 50) -> str:
    if not diffs:
        return "manifests agree (timings/environment ignored)"
    lines = [str(d) for d in diffs[:limit]]
    if len(diffs) > limit:
        lines.append(f"... and {len(diffs) - limit} more differences")
    return "\n".join(lines)
