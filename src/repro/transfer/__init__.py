"""repro.transfer: train-once / deploy-many model adaptation.

EDDIE's per-device training is the blocker to fleet scale: every
(program, arch config, receiver) triple needs its own training runs.
This package adapts a trained :class:`~repro.core.model.EddieModel` to a
perturbed device variant from a *short unlabeled capture* of the target
-- no retraining, no ground-truth timeline (PAPERS.md, the synthetic-
fingerprinting line of work; DESIGN.md D23).

Two halves:

- :class:`DeviceVariant` -- a perturbation model over the physics knobs
  the repo already simulates (clock scale/drift, cache geometry,
  receiver gain, channel coupling/SNR, carrier offset). It both
  *synthesizes* variant scenarios for evaluation (``variant.apply(
  scenario)``) and *describes* a real target device for provenance.
- :func:`calibrate_model` -- the calibration pipeline: optional
  front-end denoise, spectral line re-alignment (constrained global +
  per-region frequency warp matching the model's reference peak sets to
  the target capture's pooled spectral lines), then a per-dim monotone
  warp of every reference distribution, snapping onto the target's
  observed line grid so the exact-integer K-S kernel keeps seeing exact
  value matches.

Derived models carry :class:`~repro.core.model.CalibrationInfo`
provenance and publish into the registry as ``name@N+cal:FP`` entries
via :meth:`~repro.serve.ModelRegistry.publish_derived`.
"""

from repro.core.model import CalibrationInfo
from repro.transfer.calibrate import (
    CalibrationReport,
    CalibrationResult,
    RegionCalibration,
    calibrate_model,
)
from repro.transfer.variant import DeviceVariant

__all__ = [
    "CalibrationInfo",
    "CalibrationReport",
    "CalibrationResult",
    "DeviceVariant",
    "RegionCalibration",
    "calibrate_model",
]
