"""Calibration: adapt a trained model to a target device variant.

The pipeline (DESIGN.md D23) needs only a *short, unlabeled* capture
from the target device -- no region timeline, no injections, no
retraining:

1. **Denoise** (optional): run extra front-end stages, then the model's
   own configured chain, over the calibration capture -- exactly what
   the monitor will do to the target's traffic at runtime.
2. **Line tables**: pool the model's reference peak observations into a
   weighted table of *base spectral lines*, and the target capture's STS
   peaks into a table of *observed target lines*. Peak frequencies are
   STFT-bin quantized, so both tables are small sets of exact float
   values with occurrence counts.
3. **Global constrained warp**: estimate the frequency scale factor
   ``s = f_target / f_base`` as the weighted mode of pairwise
   target/base line ratios within ``1 +/- max_scale_dev``. A clock-scaled
   device moves *every* line by the same factor, so the true ratio
   dominates the histogram while accidental pairings scatter.
4. **Per-region refinement**: each region's line set may additionally
   shift (cache-geometry changes move memory-bound loops more than
   compute loops), so a small local factor around ``s`` is chosen per
   region to maximize the reference mass landing on observed target
   lines.
5. **Monotone warp + snap**: every reference column is mapped through
   ``x -> r * x`` (region factor ``r``), then each distinct mapped value
   snaps to the nearest *observed* target line within a fraction of an
   STFT bin. Snapping to observed values -- not to a computed grid --
   makes warped references **bitwise equal** to the values the monitor
   will extract from target captures, which is what the exact-integer
   K-S kernel needs to see zero distribution distance on matching
   traffic. The per-dim mapping is kept monotone non-decreasing (equal
   values stay equal, order never inverts), so sorted references and
   their run structure remain valid.
6. **Per-dim quantile mapping**: positional alignment cannot fix a
   changed *mixture* -- different cache geometry shifts which line is
   strongest in each window, so a dim's distribution over the same
   lines changes shape. Calibration therefore attributes each target
   window to the region whose aligned line set best explains its peaks
   (unlabeled region matching), and where a region collects enough
   windows, each tested dim's reference distribution is quantile-mapped
   onto the attributed target observations: distinct reference values
   map (monotonically, ties to ties) onto the target dim's empirical
   quantiles -- which are themselves observed target values, keeping
   the exact-value property. Dims without enough attributed mass keep
   the scale+snap warp.

The result is a derived :class:`~repro.core.model.EddieModel` carrying
:class:`~repro.core.model.CalibrationInfo` provenance pinned to the base
model's content fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.model import CalibrationInfo, EddieModel
from repro.core.peaks import peak_matrix
from repro.core.stft import stft
from repro.dsp import FrontendStage, apply_frontend, validate_frontend
from repro.em.scenario import EmTrace
from repro.errors import TrainingError
from repro.types import Signal

__all__ = [
    "CalibrationReport",
    "CalibrationResult",
    "RegionCalibration",
    "calibrate_model",
]


@dataclass(frozen=True)
class RegionCalibration:
    """Per-region outcome of the warp."""

    region: str
    scale: float
    snapped: int
    total: int
    matched_windows: int = 0
    quantile_dims: int = 0

    @property
    def snapped_fraction(self) -> float:
        return self.snapped / self.total if self.total else 0.0


@dataclass(frozen=True)
class CalibrationReport:
    """What calibration estimated and how well references landed."""

    freq_scale: float
    windows: int
    snapped_fraction: float
    regions: Tuple[RegionCalibration, ...]

    def format(self) -> str:
        lines = [
            f"freq scale {self.freq_scale:.6f} "
            f"({(self.freq_scale - 1) * 100:+.3f}%), "
            f"{self.windows} calibration windows, "
            f"{self.snapped_fraction * 100:.1f}% of reference mass "
            f"snapped to observed target lines",
        ]
        for region in self.regions:
            lines.append(
                f"  {region.region}: scale {region.scale:.6f}, "
                f"{region.snapped}/{region.total} snapped, "
                f"{region.matched_windows} matched windows, "
                f"{region.quantile_dims} quantile-mapped dims"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class CalibrationResult:
    """A derived model plus the report describing its warp."""

    model: EddieModel
    report: CalibrationReport


def _line_table(
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct finite values with occurrence counts (both sorted)."""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    return np.unique(finite, return_counts=True)


def _estimate_scale(
    base_values: np.ndarray,
    base_weights: np.ndarray,
    target_values: np.ndarray,
    target_weights: np.ndarray,
    max_dev: float,
) -> float:
    """Weighted-mode estimate of the global frequency ratio.

    Every (target line, base line) pair whose ratio lies within
    ``1 +/- max_dev`` votes for its ratio with weight
    ``min(count_base, count_target)``; the estimate is the weighted mean
    of the most popular histogram bin's neighborhood. For a pure clock
    scale the true ratio is *exact* for every real line pair (same STFT
    bin index on both grids), so the histogram mode recovers it to float
    precision.
    """
    base_pos = base_values > 0
    base_values = base_values[base_pos]
    base_weights = base_weights[base_pos]
    if base_values.size == 0 or target_values.size == 0:
        return 1.0
    ratios = target_values[:, None] / base_values[None, :]
    weights = np.minimum(
        target_weights[:, None], base_weights[None, :]
    ).astype(float)
    mask = (ratios >= 1.0 - max_dev) & (ratios <= 1.0 + max_dev)
    ratios = ratios[mask]
    weights = weights[mask]
    if ratios.size == 0:
        return 1.0
    # Bin at ~2e-4 relative resolution, then refine inside the winning
    # neighborhood with a weighted mean.
    n_bins = max(int(np.ceil(2 * max_dev / 2e-4)), 1)
    hist, edges = np.histogram(
        ratios,
        bins=n_bins,
        range=(1.0 - max_dev, 1.0 + max_dev),
        weights=weights,
    )
    best = int(np.argmax(hist))
    lo = edges[max(best - 1, 0)]
    hi = edges[min(best + 2, len(edges) - 1)]
    near = (ratios >= lo) & (ratios <= hi)
    total = weights[near].sum()
    if total <= 0:
        return 1.0
    return float(np.sum(ratios[near] * weights[near]) / total)


def _refine_region_scale(
    line_values: np.ndarray,
    line_weights: np.ndarray,
    target_values: np.ndarray,
    global_scale: float,
    local_dev: float,
    tolerance: float,
) -> float:
    """Pick the per-region factor that lands the most line mass on
    observed target lines; ties prefer the global estimate.

    Scoring is distance-weighted (``w * (1 - dist/tolerance)``), not a
    hit count: spectral lines sit one STFT bin apart, so with any usable
    tolerance nearly every factor in the search range lands every line
    within tolerance of *some* comb tooth. A hit count saturates and a
    skewed factor can capture stray mass for free; the triangular kernel
    makes a skew pay on every line, so the exactly-aligned factor wins.
    """
    if line_values.size == 0 or target_values.size == 0 or local_dev <= 0:
        return global_scale
    factors = global_scale * (1.0 + np.linspace(-local_dev, local_dev, 41))
    best_scale = global_scale
    best_score = -1.0
    best_dist = np.inf
    for factor in factors:
        mapped = line_values * factor
        idx = np.searchsorted(target_values, mapped)
        left = np.clip(idx - 1, 0, target_values.size - 1)
        right = np.clip(idx, 0, target_values.size - 1)
        dist = np.minimum(
            np.abs(mapped - target_values[left]),
            np.abs(mapped - target_values[right]),
        )
        closeness = np.clip(1.0 - dist / tolerance, 0.0, None)
        score = float(np.sum(line_weights * closeness))
        deviation = abs(factor - global_scale)
        if score > best_score or (
            score == best_score and deviation < best_dist
        ):
            best_score = score
            best_scale = float(factor)
            best_dist = deviation
    return best_scale


def _warp_column(
    column: np.ndarray,
    scale: float,
    target_values: np.ndarray,
    tolerance: float,
    snap: bool,
) -> Tuple[np.ndarray, int, int]:
    """Map one reference column through the monotone warp.

    Returns (warped column, snapped observation count, total
    observation count). NaN padding is untouched; equal inputs map to
    equal outputs; the distinct-value mapping is forced non-decreasing,
    so per-dim sorted order (what the K-S kernel consumes) is preserved.
    """
    mask = ~np.isnan(column)
    values = column[mask]
    if values.size == 0:
        return column.copy(), 0, 0
    distinct, inverse = np.unique(values, return_inverse=True)
    counts = np.bincount(inverse)
    mapped = distinct * scale
    snapped = 0
    if snap and target_values.size:
        idx = np.searchsorted(target_values, mapped)
        left = np.clip(idx - 1, 0, target_values.size - 1)
        right = np.clip(idx, 0, target_values.size - 1)
        use_right = np.abs(mapped - target_values[right]) <= np.abs(
            mapped - target_values[left]
        )
        nearest = np.where(
            use_right, target_values[right], target_values[left]
        )
        snap_mask = np.abs(mapped - nearest) <= tolerance
        mapped = np.where(snap_mask, nearest, mapped)
        # Snapping two adjacent lines to the same observed line is a
        # legal (tie-creating) monotone map; crossing is not -- clamp.
        mapped = np.maximum.accumulate(mapped)
        snapped = int(counts[snap_mask].sum())
    warped = column.copy()
    warped[mask] = mapped[inverse]
    return warped, snapped, int(values.size)


def _attribute_windows(
    target_peaks: np.ndarray,
    region_tables: Dict[str, Tuple[np.ndarray, np.ndarray]],
    tolerance: float,
) -> Dict[str, np.ndarray]:
    """Assign each target window to the region that explains its peaks.

    A window's primary score for a region is the fraction of its finite
    peak values lying within ``tolerance`` of the region's *aligned*
    line set; a window is only assignable where that fraction reaches
    1/2. Regions share lines, though (a loop's fundamental often shows
    up in its neighbor's windows), so explained-fraction ties are broken
    by *line-mass likelihood*: the summed reference probability of the
    matched lines. A 557 kHz window ties 1/1 between a region where
    that line carries half the reference mass and one where it is a bit
    player -- the mass-weighted score attributes it to the former
    instead of discarding it, which matters because discarding exactly
    the shared-line windows skews every quantile estimate downstream.
    """
    names = list(region_tables)
    n_windows = target_peaks.shape[0]
    finite = ~np.isnan(target_peaks)
    n_finite = finite.sum(axis=1)
    frac = np.zeros((n_windows, len(names)))
    likelihood = np.zeros((n_windows, len(names)))
    for j, name in enumerate(names):
        lines, probs = region_tables[name]
        if lines.size == 0:
            continue
        vals = np.where(finite, target_peaks, 0.0)
        idx = np.searchsorted(lines, vals)
        left = np.clip(idx - 1, 0, lines.size - 1)
        right = np.clip(idx, 0, lines.size - 1)
        use_right = np.abs(vals - lines[right]) <= np.abs(
            vals - lines[left]
        )
        dist = np.where(
            use_right,
            np.abs(vals - lines[right]),
            np.abs(vals - lines[left]),
        )
        hit = (dist <= tolerance) & finite
        frac[:, j] = hit.sum(axis=1) / np.maximum(n_finite, 1)
        nearest_prob = np.where(use_right, probs[right], probs[left])
        likelihood[:, j] = np.where(hit, nearest_prob, 0.0).sum(axis=1)
    # Lexicographic (fraction, likelihood): fraction dominates, the
    # mass-weighted term only separates fraction ties (likelihood is
    # bounded by the peak count, so the scaling keeps the tiers apart).
    combined = frac * (4.0 * target_peaks.shape[1]) + likelihood
    best = np.argmax(combined, axis=1)
    rows = np.arange(n_windows)
    if len(names) > 1:
        runner_up = combined.copy()
        runner_up[rows, best] = -np.inf
        second = runner_up.max(axis=1)
    else:
        second = np.full(n_windows, -np.inf)
    ok = (
        (n_finite > 0)
        & (frac[rows, best] >= 0.5)
        & (combined[rows, best] > second)
    )
    return {
        name: np.nonzero(ok & (best == j))[0]
        for j, name in enumerate(names)
    }


def _quantile_map_column(
    column: np.ndarray, target_sorted: np.ndarray
) -> np.ndarray:
    """Monotone quantile map of one reference column onto observed
    target values.

    Each distinct reference value is replaced by the target empirical
    quantile at the midpoint of its cumulative-mass range, so the warped
    reference's distribution *shape* matches the target capture's while
    every output is an actually-observed target value (exact-integer K-S
    compatibility). Midpoints strictly increase over distinct values and
    the target is sorted, so the map is non-decreasing with ties
    preserved.
    """
    mask = ~np.isnan(column)
    values = column[mask]
    if values.size == 0 or target_sorted.size == 0:
        return column.copy()
    distinct, inverse = np.unique(values, return_inverse=True)
    counts = np.bincount(inverse).astype(float)
    midpoints = (np.cumsum(counts) - counts / 2.0) / counts.sum()
    idx = np.minimum(
        (midpoints * target_sorted.size).astype(np.int64),
        target_sorted.size - 1,
    )
    warped = column.copy()
    warped[mask] = target_sorted[idx][inverse]
    return warped


def calibrate_model(
    model: EddieModel,
    capture: Union[EmTrace, Signal],
    *,
    frontend: Sequence[FrontendStage] = (),
    variant: str = "",
    max_scale_dev: float = 0.10,
    local_scale_dev: float = 0.02,
    snap_tolerance_bins: float = 0.75,
    quantile_min_windows: int = 24,
    update_sample_rate: bool = True,
) -> CalibrationResult:
    """Adapt ``model`` to the device that produced ``capture``.

    Args:
        model: the trained base model (must not itself be a derivation).
        capture: a short *unlabeled* capture from the target device --
            an :class:`~repro.em.scenario.EmTrace` (its ground truth, if
            any, is ignored) or a raw :class:`~repro.types.Signal`.
        frontend: extra denoise stages applied to the calibration
            capture *before* the model's own configured chain (e.g. an
            SVD denoiser for a harsh target site).
        variant: free-form description of the target, recorded in the
            provenance.
        max_scale_dev: global scale search range (fractional).
        local_scale_dev: per-region refinement range around the global
            scale (fractional).
        snap_tolerance_bins: snap radius in STFT bins of the target
            capture's frequency grid.
        quantile_min_windows: minimum attributed target windows a region
            needs before its reference distributions are quantile-mapped
            onto the target's observed distributions (below it, the
            region keeps the scale+snap warp).
        update_sample_rate: stamp the derived model with the calibration
            capture's exact sample rate, so hop timing and the streaming
            engine's rate check follow the target device.

    Returns:
        A :class:`CalibrationResult`: the derived model (original is
        untouched) and the warp report.
    """
    if model.calibration is not None:
        raise TrainingError(
            "model is already a derivation; calibrate from its base model"
        )
    from repro.cache import fingerprint as cache_fingerprint

    base_fp = cache_fingerprint("eddie-model", model)
    signal = capture.iq if isinstance(capture, EmTrace) else capture
    frontend = tuple(frontend)
    if frontend:
        validate_frontend(frontend)
        signal = apply_frontend(frontend, signal)
    cfg = model.config
    if cfg.frontend:
        signal = apply_frontend(cfg.frontend, signal)

    spectra = stft(signal, cfg.window_samples, cfg.overlap)
    peaks = peak_matrix(
        spectra,
        cfg.energy_fraction,
        cfg.max_peaks,
        cfg.peak_prominence,
        cfg.diffuse_features,
    )
    windows = int(peaks.shape[0])
    target_values, target_weights = _line_table(
        peaks[:, : cfg.max_peaks]
    )
    if target_values.size == 0:
        raise TrainingError(
            "calibration capture yielded no spectral lines; capture "
            "longer or denoise harder"
        )
    if len(spectra.freqs) > 1:
        bin_width = float(spectra.freqs[1] - spectra.freqs[0])
    else:
        bin_width = float(signal.sample_rate / cfg.window_samples)
    tolerance = snap_tolerance_bins * bin_width

    # Pool the model's reference lines (peak dims only: descriptor
    # columns are continuous statistics, not quantized lines).
    base_chunks = []
    for profile in model.profiles.values():
        block = profile.reference[:, : profile.num_peaks]
        base_chunks.append(block[~np.isnan(block)])
    base_values, base_weights = _line_table(
        np.concatenate(base_chunks) if base_chunks else np.empty(0)
    )
    if base_values.size == 0:
        raise TrainingError("model has no reference peak lines to warp")

    freq_scale = _estimate_scale(
        base_values, base_weights, target_values, target_weights,
        max_scale_dev,
    )

    references: Dict[str, np.ndarray] = {}
    region_scales: Dict[str, float] = {}
    for name, profile in model.profiles.items():
        block = profile.reference[:, : profile.num_peaks]
        line_values, line_weights = _line_table(block[~np.isnan(block)])
        region_scale = _refine_region_scale(
            line_values,
            line_weights.astype(float),
            target_values,
            freq_scale,
            local_scale_dev,
            tolerance,
        )
        warped = profile.reference.copy()
        for dim in range(profile.reference.shape[1]):
            # Peak dims snap onto observed target lines; descriptor and
            # unused padding columns scale only (they are continuous
            # statistics, not bin-quantized lines).
            warped[:, dim], _, _ = _warp_column(
                profile.reference[:, dim],
                region_scale,
                target_values,
                tolerance,
                snap=dim < profile.num_peaks,
            )
        references[name] = warped
        region_scales[name] = region_scale

    # Stage 6: unlabeled region matching + per-dim quantile mapping.
    # Reference rows share the peak-matrix column layout, so reference
    # dim d maps onto the attributed target windows' column d.
    target_peaks = peaks[:, : cfg.max_peaks]
    # Score windows against every peak column of the warped reference
    # (not just the num_peaks *tested* dims): a target window carries up
    # to max_peaks finite lines and all of them must find a home for the
    # attribution fraction to clear its threshold.
    region_tables: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for name, ref in references.items():
        lines, counts = _line_table(ref[:, : cfg.max_peaks])
        probs = (
            counts / counts.sum() if counts.size else counts.astype(float)
        )
        region_tables[name] = (lines, probs)
    assigned = _attribute_windows(target_peaks, region_tables, tolerance)
    matched_counts: Dict[str, int] = {}
    quantile_counts: Dict[str, int] = {}
    for name, profile in model.profiles.items():
        rows = assigned.get(name, np.empty(0, dtype=np.int64))
        matched_counts[name] = int(rows.size)
        quantile_counts[name] = 0
        if rows.size < quantile_min_windows:
            continue
        region_target = peaks[rows]
        warped = references[name]
        for dim in profile.test_dims:
            if dim >= region_target.shape[1]:
                continue
            dim_values = region_target[:, dim]
            dim_values = dim_values[~np.isnan(dim_values)]
            if dim_values.size < quantile_min_windows:
                continue
            warped[:, dim] = _quantile_map_column(
                warped[:, dim], np.sort(dim_values)
            )
            quantile_counts[name] += 1

    # Score the final warp: a peak observation counts as snapped when
    # its warped value is exactly an observed target line (snap and
    # quantile outputs both are, by construction).
    region_reports = []
    snapped_total = 0
    observations_total = 0
    for name, profile in model.profiles.items():
        block = references[name][:, : profile.num_peaks]
        finite = block[np.isfinite(block)]
        snapped = int(np.isin(finite, target_values).sum())
        total = int(finite.size)
        snapped_total += snapped
        observations_total += total
        region_reports.append(
            RegionCalibration(
                region=name,
                scale=region_scales[name],
                snapped=snapped,
                total=total,
                matched_windows=matched_counts[name],
                quantile_dims=quantile_counts[name],
            )
        )

    snapped_fraction = (
        snapped_total / observations_total if observations_total else 0.0
    )
    method = (
        "scale-snap-qmap"
        if any(quantile_counts.values())
        else "scale-snap"
    )
    info = CalibrationInfo(
        base_fingerprint=base_fp,
        method=method,
        variant=variant,
        freq_scale=float(freq_scale),
        windows=windows,
        snapped_fraction=float(snapped_fraction),
    )
    derived = model.with_calibrated_references(
        references,
        info,
        sample_rate=(
            float(signal.sample_rate) if update_sample_rate else None
        ),
    )
    report = CalibrationReport(
        freq_scale=float(freq_scale),
        windows=windows,
        snapped_fraction=float(snapped_fraction),
        regions=tuple(region_reports),
    )
    return CalibrationResult(model=derived, report=report)
