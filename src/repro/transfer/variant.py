"""Device-variant perturbation model.

A :class:`DeviceVariant` names the ways a *deployed* device differs from
the one a model was trained on, using the physics knobs the simulator
already exposes:

- ``clock_scale`` / ``lo_drift_hz_per_s`` -- the target core runs at a
  (slightly) different clock, or the receiver's local oscillator drifts.
  Every frequency in the system derives from the clock (DESIGN.md D4),
  so a clock-scaled target shifts *all* spectral lines by the same
  factor relative to the trained references -- the canonical case
  calibration must fix.
- ``l1_kib`` / ``l2_kib`` -- different cache geometry changes loop
  timing (miss patterns), moving individual lines non-uniformly.
- ``gain`` / ``coupling_scale`` / ``snr_db_delta`` / ``carrier_offset_hz``
  -- receiver gain, antenna coupling, noise-figure, and tuner offset
  differences between probes.

The same object serves two roles: *synthesizing* variant capture
scenarios for evaluation (:meth:`apply`), and *describing* a real target
device so the description can travel with a derived model's calibration
provenance (:meth:`describe`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.arch.config import CoreConfig
from repro.arch.simulator import Simulator
from repro.em.channel import ChannelModel
from repro.em.receiver import Receiver
from repro.em.scenario import EmScenario
from repro.errors import ConfigurationError

__all__ = ["DeviceVariant"]


@dataclass(frozen=True, kw_only=True)
class DeviceVariant:
    """A perturbed deployment of a trained device setup.

    All fields default to "identical to the base device"; construct with
    only the knobs that differ. ``l1_kib``/``l2_kib`` are cache sizes in
    KiB (``None`` keeps the base geometry).
    """

    name: str = "variant"
    clock_scale: float = 1.0
    lo_drift_hz_per_s: float = 0.0
    l1_kib: Optional[int] = None
    l2_kib: Optional[int] = None
    gain: float = 1.0
    coupling_scale: float = 1.0
    snr_db_delta: float = 0.0
    carrier_offset_hz: float = 0.0

    def __post_init__(self) -> None:
        if not self.clock_scale > 0:
            raise ConfigurationError(
                f"clock_scale must be positive, got {self.clock_scale}"
            )
        if not self.gain > 0:
            raise ConfigurationError(
                f"gain must be positive, got {self.gain}"
            )
        if not self.coupling_scale > 0:
            raise ConfigurationError(
                f"coupling_scale must be positive, got {self.coupling_scale}"
            )
        for label, kib in (("l1_kib", self.l1_kib), ("l2_kib", self.l2_kib)):
            if kib is not None and kib < 1:
                raise ConfigurationError(
                    f"{label} must be >= 1 KiB, got {kib}"
                )

    @property
    def is_identity(self) -> bool:
        """Whether this variant changes nothing about the base device."""
        return (
            self.clock_scale == 1.0
            and self.lo_drift_hz_per_s == 0.0
            and self.l1_kib is None
            and self.l2_kib is None
            and self.gain == 1.0
            and self.coupling_scale == 1.0
            and self.snr_db_delta == 0.0
            and self.carrier_offset_hz == 0.0
        )

    @property
    def is_drifted(self) -> bool:
        """Whether the variant's spectral lines move vs. the base device.

        True for clock scaling and LO drift -- the perturbations an
        uncalibrated base model has no hope of tracking because every
        reference frequency is systematically displaced.
        """
        return self.clock_scale != 1.0 or self.lo_drift_hz_per_s != 0.0

    # -- synthesis ----------------------------------------------------------

    def apply_core(self, core: CoreConfig) -> CoreConfig:
        """The base core as this variant's device implements it."""
        out = core
        if self.clock_scale != 1.0:
            out = out.scaled(out.clock_hz * self.clock_scale)
        if self.l1_kib is not None or self.l2_kib is not None:
            mem = out.mem
            if self.l1_kib is not None:
                mem = replace(
                    mem, l1=replace(mem.l1, size=self.l1_kib * 1024)
                )
            if self.l2_kib is not None:
                mem = replace(
                    mem, l2=replace(mem.l2, size=self.l2_kib * 1024)
                )
            out = replace(out, mem=mem)
        if not self.is_identity:
            out = replace(out, name=f"{core.name}+{self.name}")
        return out

    def apply_receiver(self, receiver: Receiver) -> Receiver:
        """The base receiver with this variant's gain and LO drift."""
        if self.gain == 1.0 and self.lo_drift_hz_per_s == 0.0:
            return receiver
        return replace(
            receiver,
            gain=receiver.gain * self.gain,
            lo_drift_hz_per_s=(
                receiver.lo_drift_hz_per_s + self.lo_drift_hz_per_s
            ),
        )

    def apply_channel(self, channel: ChannelModel) -> ChannelModel:
        """The base channel with this variant's coupling and SNR."""
        if self.coupling_scale == 1.0 and self.snr_db_delta == 0.0:
            return channel
        return replace(
            channel,
            coupling_gain=channel.coupling_gain * self.coupling_scale,
            snr_db=channel.snr_db + self.snr_db_delta,
        )

    def apply(self, scenario: EmScenario) -> EmScenario:
        """Synthesize the variant capture setup from a base scenario.

        Returns a fresh scenario (fresh simulator: injections configured
        on the base do not carry over) whose core, receiver, channel,
        and carrier offset are the base's as perturbed by this variant.
        """
        simulator = scenario.simulator
        return EmScenario(
            simulator=Simulator(
                simulator.program, self.apply_core(simulator.core)
            ),
            channel=self.apply_channel(scenario.channel),
            receiver=self.apply_receiver(scenario.receiver),
            mod_depth=scenario.mod_depth,
            carrier_offset_hz=(
                scenario.carrier_offset_hz + self.carrier_offset_hz
            ),
            faults=scenario.faults,
        )

    # -- description --------------------------------------------------------

    def describe(self) -> str:
        """A compact human-readable summary of every non-default knob."""
        parts = []
        if self.clock_scale != 1.0:
            parts.append(f"clock x{self.clock_scale:g}")
        if self.lo_drift_hz_per_s != 0.0:
            parts.append(f"drift {self.lo_drift_hz_per_s:g} Hz/s")
        if self.l1_kib is not None:
            parts.append(f"L1 {self.l1_kib} KiB")
        if self.l2_kib is not None:
            parts.append(f"L2 {self.l2_kib} KiB")
        if self.gain != 1.0:
            parts.append(f"gain x{self.gain:g}")
        if self.coupling_scale != 1.0:
            parts.append(f"coupling x{self.coupling_scale:g}")
        if self.snr_db_delta != 0.0:
            parts.append(f"SNR {self.snr_db_delta:+g} dB")
        if self.carrier_offset_hz != 0.0:
            parts.append(f"carrier {self.carrier_offset_hz:+g} Hz")
        detail = ", ".join(parts) if parts else "identity"
        return f"{self.name}: {detail}"
