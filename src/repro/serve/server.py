"""The asyncio EM-monitoring server: sessions over TCP, DSP in threads.

One accepted connection is one monitoring session. The event loop owns
all connection and frame bookkeeping; the CPU-heavy DSP (STFT, peak
extraction, K-S scoring via :meth:`StreamingMonitor.feed`) runs in a
bounded thread pool, so slow clients never stall the loop and the loop
never stalls the math. numpy releases the GIL across the hot kernels,
so ``worker_threads`` sessions genuinely overlap.

Flow control, inward and outward:

- **Ingestion backpressure**: each session has a bounded
  ``asyncio.Queue`` of decoded chunks. When the DSP falls behind, the
  queue fills, the connection's read loop blocks on ``put``, the kernel
  socket buffer fills, and TCP pushes back on the device -- no unbounded
  buffering anywhere in the path.
- **Slow readers**: REPORT frames go through ``drain()``, so a client
  that stops reading blocks only its own session's worker (and then,
  transitively, its own ingestion).
- **Load shedding**: an OPEN that arrives with the fleet at
  ``max_sessions`` is refused with a typed ``ERROR at_capacity`` frame
  -- the connection is turned away cleanly instead of surfacing
  :class:`FleetScheduler`'s in-process raise -- unless ``evict_idle``
  is set, in which case the scheduler closes the stalest session
  (notifying it with ``ERROR evicted``) and admits the newcomer.

Resilience (DESIGN.md D19), for protocol-revision-2 peers:

- **Checkpointing**: every ``checkpoint_interval`` scored chunks the
  session's full stream state (:meth:`StreamingMonitor.snapshot`) is
  spilled atomically to ``spill_dir`` together with a short log of the
  most recent REPORT payloads, then acknowledged to the client with a
  ``CHECKPOINT_ACK`` carrying the durable sequence number. The client
  prunes its replay buffer up to that point.
- **Resumption**: a reconnecting client sends ``RESUME`` instead of
  ``OPEN``. The server restores the monitor from the spill (verifying
  the resume token), re-delivers any REPORTs past what the client saw,
  and the client replays only unacknowledged chunks -- every window is
  scored exactly once end to end.
- **Suspension**: when a connection dies mid-session the worker takes
  one final roll-forward checkpoint at the last scored chunk and
  detaches the session instead of finishing it, minimizing recompute on
  resume.
- **Drain**: :meth:`EddieServer.drain` stops accepting, checkpoints
  every live session, notifies each peer (``CHECKPOINT_ACK``, a final
  STATS snapshot, then ``ERROR draining``), and returns the final stats
  payload -- the SIGTERM path for zero-loss restarts.

STATS frames are answered at any point after HELLO with a JSON health
snapshot (open sessions, shed/evicted counts, chunk/report totals, and
the ``repro.serve`` metric instruments when observability is enabled).
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import os
import secrets
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    MonitoringError,
    ProtocolError,
    RegistryError,
    ServeError,
)
from repro.obs import OBS, counter, histogram, snapshot_module
from repro.serialize import load_snapshot, snapshot_to_bytes
from repro.serve import protocol
from repro.serve.protocol import (
    ERR_AT_CAPACITY,
    ERR_BAD_FRAME,
    ERR_BAD_STATE,
    ERR_DRAINING,
    ERR_EVICTED,
    ERR_INTERNAL,
    ERR_RESUME_REJECTED,
    ERR_UNKNOWN_SESSION,
    ERR_UNSUPPORTED_VERSION,
    FrameType,
    error_frame,
    json_frame,
    negotiate_version,
    parse_json,
    read_frame,
)
from repro.serve.registry import ModelRegistry
from repro.stream import FleetScheduler, StreamingMonitor, StreamSummary

__all__ = ["EddieServer", "ServerConfig", "ServerHandle", "serve_in_thread"]

_LATENCY_EDGES_MS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                     100.0, 250.0, 1000.0)

# REPORT payloads retained beyond the client's declared window, so a
# resume can re-deliver reports the abort-checkpoint rolled past even
# when acks and reports crossed on the wire.
_REPORT_LOG_MARGIN = 16


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`EddieServer`.

    Attributes:
        host: bind address (loopback by default; expose deliberately).
        port: bind port; 0 lets the kernel pick (read ``address`` after
            start).
        max_sessions: fleet capacity; OPENs beyond it are shed (or, with
            ``evict_idle``, displace the stalest session).
        evict_idle: admit over-capacity OPENs by evicting the
            least-recently-fed session instead of shedding the newcomer.
        queue_depth: per-session bound on decoded-but-unscored chunks;
            the ingestion backpressure knob.
        worker_threads: size of the shared DSP thread pool.
        kernel_batching: coalesce concurrently pending sessions' chunks
            into single :meth:`FleetScheduler.feed_many` rounds, so
            isomorphic sessions share one vectorized STFT/peak/K-S pass
            (the fleet batch kernel, DESIGN.md D20) instead of each
            paying its own. Per-session results and failure isolation
            are unchanged; turn off to score every chunk on its own
            pool thread as before.
        registry_cache: deserialized models kept hot in the registry LRU
            (only used when the server builds its own registry).
        checkpoint_interval: scored chunks between durable session
            checkpoints for revision-2 peers; 0 disables checkpointing
            (and therefore resume).
        spill_dir: where session checkpoints live; defaults to a
            ``.sessions`` directory inside the registry root, so a
            restarted server pointed at the same registry finds them.
        worker_id: this server's slot in a sharded cluster (DESIGN.md
            D21); surfaced in session acks and STATS so clients and the
            router can attribute work. None for a standalone server.
        spill_fallback_dirs: sibling workers' spill namespaces. A RESUME
            whose checkpoint is not in ``spill_dir`` searches these and
            adopts the spill into its own namespace -- how a survivor
            picks up a dead worker's sessions.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 64
    evict_idle: bool = False
    queue_depth: int = 8
    worker_threads: int = 4
    kernel_batching: bool = True
    registry_cache: int = 8
    checkpoint_interval: int = 16
    spill_dir: Optional[str] = None
    worker_id: Optional[int] = None
    spill_fallback_dirs: Tuple[str, ...] = ()


@dataclass
class ServerStats:
    """Cumulative serving counters (loop-thread mutated, lock-free)."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    sessions_shed: int = 0
    sessions_evicted: int = 0
    sessions_resumed: int = 0
    sessions_suspended: int = 0
    checkpoints: int = 0
    chunks: int = 0
    samples: int = 0
    windows: int = 0
    reports: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    protocol_errors: int = 0


@dataclass
class _SessionState:
    """Per-connection serving state (loop-side only)."""

    session_id: str
    queue: asyncio.Queue
    writer: asyncio.StreamWriter
    wlock: asyncio.Lock
    worker: Optional[asyncio.Task] = None
    evicted: bool = False
    reports_sent: int = 0
    opened_at: float = field(default_factory=time.monotonic)
    protocol_version: int = 1
    token: str = ""
    window: int = 8
    last_seq: int = 0
    durable_seq: int = 0
    since_checkpoint: int = 0
    model_fp: str = ""
    model_spec: str = ""
    report_log: Deque[Dict] = field(default_factory=deque)
    finalized: bool = False
    suspended: bool = False


class _KernelBatcher:
    """Coalesces pending sessions' chunks into fleet kernel rounds.

    Session workers :meth:`submit` their ``(session_id, samples)`` and
    await the returned future instead of running ``fleet.feed`` on a
    pool thread each. A single drainer task collects everything pending,
    runs one :meth:`FleetScheduler.feed_many` round in the pool (the
    cross-session batch kernel), and settles each submission with its
    own result slot -- per-session exceptions land on that session's
    future only, so one poisoned chunk never fails its round-mates.

    Batching is self-clocking: while one round runs in the pool, new
    submissions accumulate on the loop; the next round picks them all
    up. No artificial latency is added -- a lone session dispatches in
    rounds of one, a busy fleet in rounds of up-to-fleet-size. A worker
    awaits its result before submitting its next chunk, so one round
    never holds a session twice.
    """

    def __init__(self, fleet: FleetScheduler, pool: ThreadPoolExecutor) -> None:
        self._fleet = fleet
        self._pool = pool
        self._pending: List[Tuple[str, object, asyncio.Future]] = []
        self._wakeup = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._task
            self._task = None
        self._fail_pending(ServeError("server is stopping"))

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, []
        for _, _, future in pending:
            if not future.done():
                future.set_exception(error)

    def submit(self, session_id: str, samples) -> "asyncio.Future":
        future = asyncio.get_running_loop().create_future()
        self._pending.append((session_id, samples, future))
        self._wakeup.set()
        return future

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            batch, self._pending = self._pending, []
            if not batch:
                continue
            pairs = [(sid, samples) for sid, samples, _ in batch]
            try:
                slots = await loop.run_in_executor(
                    self._pool,
                    lambda: self._fleet.feed_many(
                        pairs, return_errors=True
                    ),
                )
            except Exception as error:
                for _, _, future in batch:
                    if not future.done():
                        future.set_exception(error)
                continue
            if OBS.enabled:
                counter("repro.serve", "kernel_rounds").inc()
                counter("repro.serve", "kernel_batched_chunks").inc(
                    len(batch)
                )
            for (_, _, future), slot in zip(batch, slots):
                if future.done():
                    continue
                if isinstance(slot, Exception):
                    future.set_exception(slot)
                else:
                    future.set_result(slot)


class EddieServer:
    """Serve EM-monitoring sessions from a model registry over TCP."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._fleet: Optional[FleetScheduler] = None
        self._batcher: Optional[_KernelBatcher] = None
        self._states: Dict[str, _SessionState] = {}
        self._admission = asyncio.Lock()
        self._session_seq = 0
        self._draining = False
        # Session ids carry a per-start epoch so ids never collide with
        # spill files a previous life of this server left behind.
        self._epoch = secrets.token_hex(4)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("server is already started")
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.worker_threads,
            thread_name_prefix="eddie-serve",
        )
        self._fleet = FleetScheduler(
            max_sessions=cfg.max_sessions,
            evict_idle=cfg.evict_idle,
            on_evict=self._on_evict,
        )
        if cfg.kernel_batching:
            self._batcher = _KernelBatcher(self._fleet, self._pool)
            self._batcher.start()
        if cfg.checkpoint_interval > 0:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` binds)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def sessions_open(self) -> int:
        return len(self._fleet) if self._fleet is not None else 0

    @property
    def spill_dir(self) -> Path:
        """Where session checkpoints are spilled."""
        if self.config.spill_dir is not None:
            return Path(self.config.spill_dir)
        return self.registry.root / ".sessions"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def drain(self) -> Dict:
        """Graceful shutdown phase one: suspend everything resumable.

        Stops accepting connections, refuses further OPEN/RESUMEs with
        ``ERROR draining``, and for every live session: checkpoints it,
        acknowledges the durable sequence number, sends a final STATS
        snapshot and ``ERROR draining``, then closes the connection.
        Sessions that cannot be checkpointed (revision-1 peers,
        checkpointing disabled) are closed outright. Returns the final
        stats payload. Call :meth:`stop` afterwards to release the pool.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        workers = []
        for state in list(self._states.values()):
            if state.worker is not None and not state.worker.done():
                await state.queue.put(("drain", None, None))
                workers.append(state.worker)
        if workers:
            await asyncio.wait(workers, timeout=30)
        return self.stats_payload()

    async def stop(self) -> None:
        """Stop accepting, abort live sessions, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            await self._batcher.stop()
            self._batcher = None
        for state in list(self._states.values()):
            if state.worker is not None and not state.worker.done():
                state.worker.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, Exception
                ):
                    await state.worker
            state.writer.close()
        self._states.clear()
        if self._fleet is not None:
            for session_id in self._fleet.session_ids:
                with contextlib.suppress(Exception):
                    self._fleet.close_session(session_id)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- health ---------------------------------------------------------------

    def stats_payload(self) -> Dict:
        """The STATS frame body: a JSON-able health snapshot."""
        s = self.stats
        payload = {
            "worker": self.config.worker_id,
            "sessions_open": self.sessions_open,
            "max_sessions": self.config.max_sessions,
            "evict_idle": self.config.evict_idle,
            "draining": self._draining,
            "kernel_batching": self.config.kernel_batching,
            "checkpoint_interval": self.config.checkpoint_interval,
            "sessions_opened": s.sessions_opened,
            "sessions_closed": s.sessions_closed,
            "sessions_shed": s.sessions_shed,
            "sessions_evicted": s.sessions_evicted,
            "sessions_resumed": s.sessions_resumed,
            "sessions_suspended": s.sessions_suspended,
            "checkpoints": s.checkpoints,
            "chunks": s.chunks,
            "samples": s.samples,
            "windows": s.windows,
            "reports": s.reports,
            "bytes_in": s.bytes_in,
            "bytes_out": s.bytes_out,
            "protocol_errors": s.protocol_errors,
            "registry": {
                "lru_hits": self.registry.cache_hits,
                "lru_misses": self.registry.cache_misses,
                "cached": len(self.registry.cached_fingerprints),
            },
            # Which model each open session runs, by full registry spec
            # -- a derived model shows its +cal: provenance here, so an
            # operator can see at a glance which sessions serve
            # calibrated fingerprints.
            "sessions": [
                {
                    "session": sid,
                    "model": state.model_spec,
                    "fingerprint": state.model_fp,
                }
                for sid, state in sorted(self._states.items())
            ],
        }
        if OBS.enabled:
            payload["metrics"] = snapshot_module("repro.serve")
        return payload

    # -- connection handling --------------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
        data: bytes,
    ) -> None:
        async with wlock:
            writer.write(data)
            await writer.drain()
        self.stats.bytes_out += len(data)

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        wlock = asyncio.Lock()
        state: Optional[_SessionState] = None
        try:
            state = await self._handshake(reader, writer, wlock)
            if state is not None:
                state.worker = asyncio.get_running_loop().create_task(
                    self._session_worker(state)
                )
                await self._ingest(reader, state)
                # Wait for the worker to flush its final frames (the
                # summary CLOSE, or nothing if the session aborted).
                with contextlib.suppress(asyncio.CancelledError):
                    await state.worker
        except ProtocolError as error:
            self.stats.protocol_errors += 1
            with contextlib.suppress(Exception):
                await self._send(
                    writer, wlock, error_frame(ERR_BAD_FRAME, str(error))
                )
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except Exception as error:  # keep the server alive, tell the peer
            with contextlib.suppress(Exception):
                await self._send(
                    writer, wlock,
                    error_frame(ERR_INTERNAL, f"internal error: {error}"),
                )
        finally:
            if state is not None:
                await self._reap_session(state)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
    ) -> Optional[_SessionState]:
        """HELLO negotiation and OPEN/RESUME admission; None = turned away."""
        # HELLO: version negotiation comes first on every connection.
        frame = await read_frame(reader)
        if frame is None:
            return None
        self.stats.bytes_in += len(frame) + protocol.HEADER.size
        if frame.type != FrameType.HELLO:
            await self._send(
                writer, wlock,
                error_frame(
                    ERR_BAD_STATE,
                    f"expected HELLO, got {frame.type.name}",
                ),
            )
            return None
        hello = parse_json(frame)
        version = negotiate_version(hello.get("versions", ()))
        if version is None:
            await self._send(
                writer, wlock,
                error_frame(
                    ERR_UNSUPPORTED_VERSION,
                    f"no shared protocol version (server speaks "
                    f"{list(protocol.PROTOCOL_VERSIONS)}, client offered "
                    f"{hello.get('versions')})",
                ),
            )
            return None
        from repro import __version__

        await self._send(
            writer, wlock,
            json_frame(FrameType.HELLO, {
                "version": version,
                "server": f"eddie-serve/{__version__}",
            }),
        )

        # Control phase: STATS any number of times, then OPEN or RESUME.
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return None
            self.stats.bytes_in += len(frame) + protocol.HEADER.size
            if frame.type == FrameType.STATS:
                await self._send(
                    writer, wlock,
                    json_frame(FrameType.STATS, self.stats_payload()),
                )
                continue
            if frame.type == FrameType.OPEN:
                return await self._admit(
                    parse_json(frame), writer, wlock, version
                )
            if frame.type == FrameType.RESUME:
                return await self._admit_resume(
                    parse_json(frame), writer, wlock, version
                )
            await self._send(
                writer, wlock,
                error_frame(
                    ERR_BAD_STATE,
                    f"expected OPEN, RESUME, or STATS, got "
                    f"{frame.type.name}",
                ),
            )
            return None

    def _resumable(self, state: _SessionState) -> bool:
        """Can this session checkpoint for later resumption?"""
        return (
            state.protocol_version >= 2
            and self.config.checkpoint_interval > 0
            and not state.evicted
        )

    @staticmethod
    def _parse_window(payload: Dict) -> int:
        try:
            return max(1, min(1024, int(payload.get("window", 8))))
        except (TypeError, ValueError):
            return 8

    async def _admit(
        self,
        open_payload: Dict,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
        version: int,
    ) -> Optional[_SessionState]:
        spec = open_payload.get("model")
        if not isinstance(spec, str) or not spec:
            await self._send(
                writer, wlock,
                error_frame(ERR_BAD_FRAME, "OPEN needs a 'model' spec"),
            )
            return None
        try:
            t0 = float(open_payload.get("t0", 0.0))
        except (TypeError, ValueError):
            await self._send(
                writer, wlock,
                error_frame(ERR_BAD_FRAME, "OPEN 't0' must be a number"),
            )
            return None
        if self._draining:
            await self._send(
                writer, wlock,
                error_frame(
                    ERR_DRAINING,
                    "server is draining; retry against its successor",
                ),
            )
            return None
        async with self._admission:
            # Shedding: with eviction off, turn the newcomer away with a
            # typed error instead of letting the fleet raise -- surviving
            # sessions never notice.
            if (
                len(self._fleet) >= self.config.max_sessions
                and not self.config.evict_idle
            ):
                self.stats.sessions_shed += 1
                if OBS.enabled:
                    counter("repro.serve", "sessions_shed").inc()
                await self._send(
                    writer, wlock,
                    error_frame(
                        ERR_AT_CAPACITY,
                        f"server is at its {self.config.max_sessions}-"
                        f"session capacity; retry later",
                    ),
                )
                return None
            try:
                model, entry = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self.registry.load, spec
                )
            except RegistryError as error:
                await self._send(
                    writer, wlock, error_frame(error.code, str(error))
                )
                return None
            self._session_seq += 1
            session_id = f"s{self._epoch}-{self._session_seq:06d}"
            # May evict the stalest session (evict_idle=True); the
            # on_evict hook notifies that connection.
            self._fleet.add_session(session_id, model, t0=t0)
        state = _SessionState(
            session_id=session_id,
            queue=asyncio.Queue(maxsize=self.config.queue_depth),
            writer=writer,
            wlock=wlock,
            protocol_version=version,
            window=self._parse_window(open_payload),
            model_fp=entry.fingerprint,
            model_spec=entry.spec,
        )
        ack = {
            "session": session_id,
            "model": {
                "name": entry.name,
                "version": entry.version,
                "spec": entry.spec,
                "fingerprint": entry.fingerprint,
                "program": model.program_name,
                "sample_rate": model.sample_rate,
            },
        }
        if self.config.worker_id is not None:
            ack["worker"] = self.config.worker_id
        if self._resumable(state):
            state.token = secrets.token_hex(16)
            ack["resume"] = {
                "token": state.token,
                "checkpoint_interval": self.config.checkpoint_interval,
            }
        self._states[session_id] = state
        self.stats.sessions_opened += 1
        if OBS.enabled:
            counter("repro.serve", "sessions_opened").inc()
        await self._send(writer, wlock, json_frame(FrameType.OPEN, ack))
        return state

    async def _admit_resume(
        self,
        payload: Dict,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
        version: int,
    ) -> Optional[_SessionState]:
        """Restore a suspended session from its spill file."""

        async def refuse(code: str, message: str) -> None:
            await self._send(writer, wlock, error_frame(code, message))

        if version < 2:
            await refuse(
                ERR_BAD_STATE, "RESUME requires protocol revision >= 2"
            )
            return None
        if self._draining:
            await refuse(
                ERR_DRAINING,
                "server is draining; retry against its successor",
            )
            return None
        if self.config.checkpoint_interval <= 0:
            await refuse(
                ERR_RESUME_REJECTED,
                "checkpointing is disabled on this server",
            )
            return None
        session_id = payload.get("session")
        token = payload.get("token")
        if (
            not isinstance(session_id, str)
            or not session_id
            or not isinstance(token, str)
            or os.sep in session_id
            or session_id.startswith(".")
        ):
            await refuse(
                ERR_BAD_FRAME, "RESUME needs a 'session' id and a 'token'"
            )
            return None
        try:
            delivered = int(payload.get("delivered", 0))
        except (TypeError, ValueError):
            await refuse(ERR_BAD_FRAME, "RESUME 'delivered' must be an int")
            return None
        async with self._admission:
            old = self._states.get(session_id)
            if old is not None:
                # A half-dead connection still owns this id. Kick it:
                # closing its transport runs the abort path, which spills
                # the freshest state before we load it back.
                old.writer.close()
                if old.worker is not None and not old.worker.done():
                    with contextlib.suppress(Exception):
                        await asyncio.wait_for(
                            asyncio.shield(old.worker), timeout=10
                        )
                if old.worker is not None and not old.worker.done():
                    await refuse(
                        ERR_RESUME_REJECTED,
                        f"session {session_id!r} is still active",
                    )
                    return None
            if (
                len(self._fleet) >= self.config.max_sessions
                and not self.config.evict_idle
            ):
                self.stats.sessions_shed += 1
                await refuse(
                    ERR_AT_CAPACITY,
                    f"server is at its {self.config.max_sessions}-"
                    f"session capacity; retry later",
                )
                return None
            path = self._spill_path(session_id)
            if not path.exists() and not self._adopt_spill(session_id):
                await refuse(
                    ERR_UNKNOWN_SESSION,
                    f"no checkpoint for session {session_id!r}",
                )
                return None

            def load_work():
                snap = load_snapshot(path)
                serve_meta = snap.meta.get("serve")
                if not isinstance(serve_meta, dict):
                    raise ConfigurationError(
                        "checkpoint lacks serving metadata"
                    )
                model, entry = self.registry.load(
                    str(serve_meta.get("model", ""))
                )
                monitor = StreamingMonitor.restore(model, snap)
                return serve_meta, model, entry, monitor

            try:
                serve_meta, model, entry, monitor = (
                    await asyncio.get_running_loop().run_in_executor(
                        self._pool, load_work
                    )
                )
            except (ConfigurationError, MonitoringError, RegistryError) as error:
                await refuse(
                    ERR_RESUME_REJECTED,
                    f"cannot restore session {session_id!r}: {error}",
                )
                return None
            if not hmac.compare_digest(
                str(serve_meta.get("token", "")), token
            ):
                await refuse(ERR_RESUME_REJECTED, "resume token mismatch")
                return None
            durable = int(serve_meta.get("seq", 0))
            log = [
                entry_ for entry_ in serve_meta.get("report_log", [])
                if isinstance(entry_, dict)
            ]
            # Reports the client never saw but whose chunks it will NOT
            # replay (they are <= the durable checkpoint): re-deliver
            # from the retained log so nothing is lost or double-scored.
            replayed = sorted(
                (
                    p for p in log
                    if delivered < int(p.get("seq", -1)) <= durable
                ),
                key=lambda p: int(p.get("seq", 0)),
            )
            if len(replayed) != max(0, durable - delivered):
                await refuse(
                    ERR_RESUME_REJECTED,
                    f"client is {durable - delivered} reports behind the "
                    f"retained log; cannot resume exactly-once",
                )
                return None
            window = self._parse_window(payload)
            try:
                self._fleet.attach_session(session_id, monitor)
            except ConfigurationError as error:
                await refuse(ERR_INTERNAL, str(error))
                return None
            state = _SessionState(
                session_id=session_id,
                queue=asyncio.Queue(maxsize=self.config.queue_depth),
                writer=writer,
                wlock=wlock,
                protocol_version=version,
                token=token,
                window=window,
                last_seq=durable,
                durable_seq=durable,
                model_fp=entry.fingerprint,
                model_spec=entry.spec,
            )
            state.report_log.extend(log)
            self._trim_report_log(state)
            self._states[session_id] = state
            self.stats.sessions_resumed += 1
            if OBS.enabled:
                counter("repro.serve", "sessions_resumed").inc()
        resume_ack = {
                "session": session_id,
                "seq": durable,
                "model": {
                    "name": entry.name,
                    "version": entry.version,
                    "spec": entry.spec,
                    "fingerprint": entry.fingerprint,
                    "program": model.program_name,
                    "sample_rate": model.sample_rate,
                },
                "reports": replayed,
        }
        if self.config.worker_id is not None:
            resume_ack["worker"] = self.config.worker_id
        await self._send(
            writer, wlock, json_frame(FrameType.RESUME, resume_ack)
        )
        return state

    async def _ingest(
        self, reader: asyncio.StreamReader, state: _SessionState
    ) -> None:
        """Read loop: socket frames into the session's bounded queue."""
        while True:
            try:
                frame = await read_frame(reader)
            except ProtocolError:
                if state.finalized:
                    return
                raise
            if state.finalized:
                # The worker already took this session down (drain or a
                # fatal sequencing error); nothing consumes the queue.
                return
            if frame is None:
                # Peer vanished without CLOSE: abort without a summary.
                await state.queue.put(("abort", None, None))
                return
            self.stats.bytes_in += len(frame) + protocol.HEADER.size
            if frame.type == FrameType.CHUNK:
                seq, samples = protocol.decode_chunk(frame)
                # Bounded put = the ingestion backpressure point.
                await state.queue.put(("chunk", seq, samples))
            elif frame.type == FrameType.CLOSE:
                await state.queue.put(("close", None, None))
                return
            elif frame.type == FrameType.STATS:
                await self._send(
                    state.writer, state.wlock,
                    json_frame(FrameType.STATS, self.stats_payload()),
                )
            else:
                await self._send(
                    state.writer, state.wlock,
                    error_frame(
                        ERR_BAD_STATE,
                        f"unexpected {frame.type.name} frame mid-session",
                    ),
                )
                await state.queue.put(("abort", None, None))
                return

    # -- checkpoint / spill ---------------------------------------------------

    def _spill_path(self, session_id: str) -> Path:
        return self.spill_dir / f"{session_id}.npz"

    def _adopt_spill(self, session_id: str) -> bool:
        """Claim a sibling worker's checkpoint into our own namespace.

        In a sharded cluster (DESIGN.md D21) each worker spills under
        its own directory. When a worker dies, its sessions resume onto
        a survivor whose own namespace has no spill for them: search
        the fallback namespaces and move the file over -- ``os.replace``
        within one filesystem, so the spill is never owned by two
        workers at once.
        """
        target = self._spill_path(session_id)
        for fallback in self.config.spill_fallback_dirs:
            candidate = Path(fallback) / f"{session_id}.npz"
            if candidate == target or not candidate.exists():
                continue
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(candidate, target)
            except OSError:
                continue
            return True
        return False

    def _drop_spill(self, session_id: str) -> None:
        with contextlib.suppress(OSError):
            self._spill_path(session_id).unlink()

    def _trim_report_log(self, state: _SessionState) -> None:
        cap = state.window + _REPORT_LOG_MARGIN
        while len(state.report_log) > cap:
            state.report_log.popleft()

    async def _checkpoint_session(self, state: _SessionState) -> bool:
        """Spill the session's stream state; True when durable on disk."""
        try:
            session = self._fleet.session(state.session_id)
        except Exception:
            return False
        monitor = session.monitor
        serve_meta = {
            "token": state.token,
            "seq": state.last_seq,
            "window": state.window,
            "model": f"fp:{state.model_fp}",
            "report_log": list(state.report_log),
        }
        path = self._spill_path(state.session_id)

        def work() -> None:
            snap = monitor.snapshot()
            snap.meta["serve"] = serve_meta
            blob = snapshot_to_bytes(snap)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npz"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            finally:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)

        try:
            await asyncio.get_running_loop().run_in_executor(
                self._pool, work
            )
        except Exception:
            return False
        if state.evicted:
            # Eviction raced the pool-thread write: `_on_evict` dropped
            # the spill, then our os.replace landed and resurrected it.
            # An evicted session must stay dead, so undo the write.
            self._drop_spill(state.session_id)
            return False
        state.since_checkpoint = 0
        state.durable_seq = state.last_seq
        self.stats.checkpoints += 1
        if OBS.enabled:
            counter("repro.serve", "checkpoints").inc()
        return True

    async def _ensure_checkpoint(self, state: _SessionState) -> bool:
        """Make the session durable at ``last_seq`` without rewriting.

        Drain and abort both roll a session forward to its last scored
        chunk. When the periodic checkpoint already spilled at exactly
        that sequence (a kernel-batcher round finishing just as drain
        lands is the common race), rewriting the same state would count
        a second checkpoint for one sequence number -- skip it.
        """
        if (
            state.since_checkpoint == 0
            and state.durable_seq == state.last_seq
            and self._spill_path(state.session_id).exists()
        ):
            return True
        return await self._checkpoint_session(state)

    async def _checkpoint_and_ack(self, state: _SessionState) -> bool:
        ok = await self._checkpoint_session(state)
        if ok:
            with contextlib.suppress(ConnectionError, OSError):
                await self._send(
                    state.writer, state.wlock,
                    json_frame(FrameType.CHECKPOINT_ACK, {
                        "session": state.session_id,
                        "seq": state.durable_seq,
                    }),
                )
        return ok

    @staticmethod
    def _flush_queue(state: _SessionState) -> None:
        while True:
            try:
                state.queue.get_nowait()
            except asyncio.QueueEmpty:
                return

    def _suspend_fleet_session(self, state: _SessionState) -> bool:
        try:
            self._fleet.detach_session(state.session_id)
        except Exception:
            return False
        state.suspended = True
        self.stats.sessions_suspended += 1
        if OBS.enabled:
            counter("repro.serve", "sessions_suspended").inc()
        return True

    # -- session worker -------------------------------------------------------

    async def _session_worker(self, state: _SessionState) -> None:
        """Drain the session queue through the DSP pool, emit REPORTs."""
        loop = asyncio.get_running_loop()
        fleet = self._fleet
        lat_hist = (
            histogram("repro.serve", "chunk_latency_ms", _LATENCY_EDGES_MS)
            if OBS.enabled else None
        )
        try:
            while True:
                kind, seq, samples = await state.queue.get()
                if kind == "close":
                    state.finalized = True
                    summary = self._close_fleet_session(state.session_id)
                    self._drop_spill(state.session_id)
                    if summary is not None:
                        await self._send(
                            state.writer, state.wlock,
                            json_frame(
                                FrameType.CLOSE,
                                protocol.summary_to_json(summary),
                            ),
                        )
                    return
                if kind == "abort":
                    state.finalized = True
                    if self._resumable(state):
                        # Roll-forward spill at the last scored chunk, so
                        # a resume recomputes as little as possible.
                        if await self._ensure_checkpoint(state):
                            if self._suspend_fleet_session(state):
                                return
                    self._close_fleet_session(state.session_id)
                    return
                if kind == "drain":
                    await self._drain_session(state)
                    return
                if (
                    state.protocol_version >= 2
                    and seq != state.last_seq + 1
                ):
                    # Exactly-once depends on a gapless chunk sequence;
                    # refuse rather than silently mis-score.
                    state.finalized = True
                    self._flush_queue(state)
                    self.stats.protocol_errors += 1
                    with contextlib.suppress(ConnectionError, OSError):
                        await self._send(
                            state.writer, state.wlock,
                            error_frame(
                                ERR_BAD_FRAME,
                                f"chunk seq {seq} out of order (expected "
                                f"{state.last_seq + 1})",
                            ),
                        )
                    self._close_fleet_session(state.session_id)
                    state.writer.close()
                    return
                started = time.perf_counter()
                try:
                    if self._batcher is not None:
                        results = await self._batcher.submit(
                            state.session_id, samples
                        )
                    else:
                        results = await loop.run_in_executor(
                            self._pool, fleet.feed, state.session_id,
                            samples,
                        )
                except Exception:
                    # The session was evicted (or otherwise closed)
                    # between dequeue and feed; the eviction path already
                    # notified the peer.
                    return
                elapsed_ms = (time.perf_counter() - started) * 1e3
                reports = [r for res in results for r in res.reports]
                windows = sum(len(res.times) for res in results)
                status = results[-1].status if results else "ok"
                self.stats.chunks += 1
                self.stats.samples += len(samples)
                self.stats.windows += windows
                self.stats.reports += len(reports)
                state.reports_sent += len(reports)
                if OBS.enabled:
                    counter("repro.serve", "chunks").inc()
                    counter("repro.serve", "windows").inc(windows)
                    counter("repro.serve", "reports").inc(len(reports))
                    lat_hist.record(elapsed_ms)
                payload = {
                    "seq": seq,
                    "windows": windows,
                    "status": status,
                    "reports": [
                        protocol.report_to_json(r) for r in reports
                    ],
                }
                state.last_seq = seq
                state.since_checkpoint += 1
                if self._resumable(state):
                    state.report_log.append(payload)
                    self._trim_report_log(state)
                await self._send(
                    state.writer, state.wlock,
                    json_frame(FrameType.REPORT, payload),
                )
                if (
                    self._resumable(state)
                    and state.since_checkpoint
                    >= self.config.checkpoint_interval
                ):
                    await self._checkpoint_and_ack(state)
        except (ConnectionError, asyncio.CancelledError):
            self._close_fleet_session(state.session_id)
            raise

    async def _drain_session(self, state: _SessionState) -> None:
        """Suspend one session for the drain path and notify the peer."""
        state.finalized = True
        # Queued-but-unscored chunks are past the checkpoint we are about
        # to take; the client still holds them and replays them on
        # resume. Emptying the queue also unblocks a reader mid-put.
        self._flush_queue(state)
        suspended = False
        if self._resumable(state):
            if await self._ensure_checkpoint(state):
                suspended = self._suspend_fleet_session(state)
        if suspended:
            with contextlib.suppress(ConnectionError, OSError):
                await self._send(
                    state.writer, state.wlock,
                    json_frame(FrameType.CHECKPOINT_ACK, {
                        "session": state.session_id,
                        "seq": state.durable_seq,
                    }),
                )
        else:
            self._close_fleet_session(state.session_id)
        with contextlib.suppress(ConnectionError, OSError):
            await self._send(
                state.writer, state.wlock,
                json_frame(FrameType.STATS, self.stats_payload()),
            )
        with contextlib.suppress(ConnectionError, OSError):
            await self._send(
                state.writer, state.wlock,
                error_frame(
                    ERR_DRAINING,
                    f"session {state.session_id} suspended for drain; "
                    f"resume against this server's successor"
                    if suspended else
                    f"session {state.session_id} closed for drain",
                ),
            )
        state.writer.close()

    def _close_fleet_session(
        self, session_id: str
    ) -> Optional[StreamSummary]:
        try:
            summary = self._fleet.close_session(session_id)
        except Exception:
            return None  # already closed (eviction, suspend, or reap)
        self.stats.sessions_closed += 1
        if OBS.enabled:
            counter("repro.serve", "sessions_closed").inc()
        return summary

    async def _reap_session(self, state: _SessionState) -> None:
        """Last-resort cleanup when a connection ends abnormally."""
        # A RESUME may already have handed this session id to a newer
        # connection; only the current owner may tear the session down.
        owner = self._states.get(state.session_id) is state
        if owner:
            self._states.pop(state.session_id, None)
        worker = state.worker
        if worker is not None and not worker.done():
            try:
                state.queue.put_nowait(("abort", None, None))
            except asyncio.QueueFull:
                worker.cancel()
            try:
                await asyncio.wait_for(worker, timeout=10)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                worker.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, Exception
                ):
                    await worker
            except Exception:
                pass
        if owner and not state.suspended:
            self._close_fleet_session(state.session_id)

    # -- eviction -------------------------------------------------------------

    def _on_evict(self, session_id: str, summary: StreamSummary) -> None:
        """FleetScheduler evicted ``session_id`` to admit a newcomer."""
        self.stats.sessions_evicted += 1
        self.stats.sessions_closed += 1
        if OBS.enabled:
            counter("repro.serve", "sessions_evicted").inc()
        # An evicted session is gone for good; a stale spill must not
        # let it rise from the dead with rolled-back state.
        self._drop_spill(session_id)
        state = self._states.get(session_id)
        if state is None:
            return
        state.evicted = True
        self._loop.create_task(self._notify_evicted(state))

    async def _notify_evicted(self, state: _SessionState) -> None:
        with contextlib.suppress(Exception):
            await self._send(
                state.writer, state.wlock,
                error_frame(
                    ERR_EVICTED,
                    f"session {state.session_id} was evicted as the "
                    f"stalest at capacity",
                ),
            )
        # Closing the transport ends the connection's read loop, which
        # aborts the worker through the normal reap path.
        state.writer.close()


# -- thread-hosted serving (sync callers: tests, benches, CLI clients) --------


class ServerHandle:
    """A server running on its own event-loop thread."""

    def __init__(
        self,
        server: EddieServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    @property
    def stats(self) -> ServerStats:
        return self.server.stats

    def drain(self, timeout: float = 30.0) -> Dict:
        """Checkpoint and suspend every live session; returns final stats."""
        if not self._thread.is_alive():
            return self.server.stats_payload()
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        return future.result(timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        with contextlib.suppress(Exception):
            future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    registry: ModelRegistry,
    config: Optional[ServerConfig] = None,
) -> ServerHandle:
    """Start an :class:`EddieServer` on a dedicated event-loop thread.

    The synchronous entry point tests, benchmarks, and scripts use:
    returns once the socket is bound, so ``handle.address`` is
    immediately connectable. Stop with ``handle.stop()`` (or use it as a
    context manager). ``handle.drain()`` is the graceful half of a
    restart: suspended sessions resume against the next server pointed
    at the same registry.
    """
    started = threading.Event()
    holder: Dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = EddieServer(registry, config=config)
        try:
            loop.run_until_complete(server.start())
        except Exception as error:  # surface bind failures to the caller
            holder["error"] = error
            started.set()
            loop.close()
            return
        holder["server"] = server
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=run, name="eddie-serve-loop", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise ServeError("server failed to start within 30s")
    if "error" in holder:
        raise ServeError(f"server failed to start: {holder['error']}")
    return ServerHandle(holder["server"], holder["loop"], thread)
