"""The asyncio EM-monitoring server: sessions over TCP, DSP in threads.

One accepted connection is one monitoring session. The event loop owns
all connection and frame bookkeeping; the CPU-heavy DSP (STFT, peak
extraction, K-S scoring via :meth:`StreamingMonitor.feed`) runs in a
bounded thread pool, so slow clients never stall the loop and the loop
never stalls the math. numpy releases the GIL across the hot kernels,
so ``worker_threads`` sessions genuinely overlap.

Flow control, inward and outward:

- **Ingestion backpressure**: each session has a bounded
  ``asyncio.Queue`` of decoded chunks. When the DSP falls behind, the
  queue fills, the connection's read loop blocks on ``put``, the kernel
  socket buffer fills, and TCP pushes back on the device -- no unbounded
  buffering anywhere in the path.
- **Slow readers**: REPORT frames go through ``drain()``, so a client
  that stops reading blocks only its own session's worker (and then,
  transitively, its own ingestion).
- **Load shedding**: an OPEN that arrives with the fleet at
  ``max_sessions`` is refused with a typed ``ERROR at_capacity`` frame
  -- the connection is turned away cleanly instead of surfacing
  :class:`FleetScheduler`'s in-process raise -- unless ``evict_idle``
  is set, in which case the scheduler closes the stalest session
  (notifying it with ``ERROR evicted``) and admits the newcomer.

STATS frames are answered at any point after HELLO with a JSON health
snapshot (open sessions, shed/evicted counts, chunk/report totals, and
the ``repro.serve`` metric instruments when observability is enabled).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProtocolError, RegistryError, ServeError
from repro.obs import OBS, counter, histogram, snapshot_module
from repro.serve import protocol
from repro.serve.protocol import (
    ERR_AT_CAPACITY,
    ERR_BAD_FRAME,
    ERR_BAD_STATE,
    ERR_EVICTED,
    ERR_INTERNAL,
    ERR_UNSUPPORTED_VERSION,
    FrameType,
    error_frame,
    json_frame,
    negotiate_version,
    parse_json,
    read_frame,
)
from repro.serve.registry import ModelRegistry
from repro.stream import FleetScheduler, StreamSummary

__all__ = ["EddieServer", "ServerConfig", "ServerHandle", "serve_in_thread"]

_LATENCY_EDGES_MS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                     100.0, 250.0, 1000.0)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`EddieServer`.

    Attributes:
        host: bind address (loopback by default; expose deliberately).
        port: bind port; 0 lets the kernel pick (read ``address`` after
            start).
        max_sessions: fleet capacity; OPENs beyond it are shed (or, with
            ``evict_idle``, displace the stalest session).
        evict_idle: admit over-capacity OPENs by evicting the
            least-recently-fed session instead of shedding the newcomer.
        queue_depth: per-session bound on decoded-but-unscored chunks;
            the ingestion backpressure knob.
        worker_threads: size of the shared DSP thread pool.
        registry_cache: deserialized models kept hot in the registry LRU
            (only used when the server builds its own registry).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 64
    evict_idle: bool = False
    queue_depth: int = 8
    worker_threads: int = 4
    registry_cache: int = 8


@dataclass
class ServerStats:
    """Cumulative serving counters (loop-thread mutated, lock-free)."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    sessions_shed: int = 0
    sessions_evicted: int = 0
    chunks: int = 0
    samples: int = 0
    windows: int = 0
    reports: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    protocol_errors: int = 0


@dataclass
class _SessionState:
    """Per-connection serving state (loop-side only)."""

    session_id: str
    queue: asyncio.Queue
    writer: asyncio.StreamWriter
    wlock: asyncio.Lock
    worker: Optional[asyncio.Task] = None
    evicted: bool = False
    reports_sent: int = 0
    opened_at: float = field(default_factory=time.monotonic)


class EddieServer:
    """Serve EM-monitoring sessions from a model registry over TCP."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._fleet: Optional[FleetScheduler] = None
        self._states: Dict[str, _SessionState] = {}
        self._admission = asyncio.Lock()
        self._session_seq = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("server is already started")
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.worker_threads,
            thread_name_prefix="eddie-serve",
        )
        self._fleet = FleetScheduler(
            max_sessions=cfg.max_sessions,
            evict_idle=cfg.evict_idle,
            on_evict=self._on_evict,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` binds)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def sessions_open(self) -> int:
        return len(self._fleet) if self._fleet is not None else 0

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, abort live sessions, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for state in list(self._states.values()):
            if state.worker is not None and not state.worker.done():
                state.worker.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, Exception
                ):
                    await state.worker
            state.writer.close()
        self._states.clear()
        if self._fleet is not None:
            for session_id in self._fleet.session_ids:
                with contextlib.suppress(Exception):
                    self._fleet.close_session(session_id)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- health ---------------------------------------------------------------

    def stats_payload(self) -> Dict:
        """The STATS frame body: a JSON-able health snapshot."""
        s = self.stats
        payload = {
            "sessions_open": self.sessions_open,
            "max_sessions": self.config.max_sessions,
            "evict_idle": self.config.evict_idle,
            "sessions_opened": s.sessions_opened,
            "sessions_closed": s.sessions_closed,
            "sessions_shed": s.sessions_shed,
            "sessions_evicted": s.sessions_evicted,
            "chunks": s.chunks,
            "samples": s.samples,
            "windows": s.windows,
            "reports": s.reports,
            "bytes_in": s.bytes_in,
            "bytes_out": s.bytes_out,
            "protocol_errors": s.protocol_errors,
            "registry": {
                "lru_hits": self.registry.cache_hits,
                "lru_misses": self.registry.cache_misses,
                "cached": len(self.registry.cached_fingerprints),
            },
        }
        if OBS.enabled:
            payload["metrics"] = snapshot_module("repro.serve")
        return payload

    # -- connection handling --------------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
        data: bytes,
    ) -> None:
        async with wlock:
            writer.write(data)
            await writer.drain()
        self.stats.bytes_out += len(data)

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        wlock = asyncio.Lock()
        state: Optional[_SessionState] = None
        try:
            state = await self._handshake(reader, writer, wlock)
            if state is not None:
                state.worker = asyncio.get_running_loop().create_task(
                    self._session_worker(state)
                )
                await self._ingest(reader, state)
                # Wait for the worker to flush its final frames (the
                # summary CLOSE, or nothing if the session aborted).
                with contextlib.suppress(asyncio.CancelledError):
                    await state.worker
        except ProtocolError as error:
            self.stats.protocol_errors += 1
            with contextlib.suppress(Exception):
                await self._send(
                    writer, wlock, error_frame(ERR_BAD_FRAME, str(error))
                )
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except Exception as error:  # keep the server alive, tell the peer
            with contextlib.suppress(Exception):
                await self._send(
                    writer, wlock,
                    error_frame(ERR_INTERNAL, f"internal error: {error}"),
                )
        finally:
            if state is not None:
                await self._reap_session(state)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
    ) -> Optional[_SessionState]:
        """HELLO negotiation and OPEN admission; None = turned away."""
        # HELLO: version negotiation comes first on every connection.
        frame = await read_frame(reader)
        if frame is None:
            return None
        self.stats.bytes_in += len(frame) + protocol.HEADER.size
        if frame.type != FrameType.HELLO:
            await self._send(
                writer, wlock,
                error_frame(
                    ERR_BAD_STATE,
                    f"expected HELLO, got {frame.type.name}",
                ),
            )
            return None
        hello = parse_json(frame)
        version = negotiate_version(hello.get("versions", ()))
        if version is None:
            await self._send(
                writer, wlock,
                error_frame(
                    ERR_UNSUPPORTED_VERSION,
                    f"no shared protocol version (server speaks "
                    f"{list(protocol.PROTOCOL_VERSIONS)}, client offered "
                    f"{hello.get('versions')})",
                ),
            )
            return None
        from repro import __version__

        await self._send(
            writer, wlock,
            json_frame(FrameType.HELLO, {
                "version": version,
                "server": f"eddie-serve/{__version__}",
            }),
        )

        # Control phase: STATS any number of times, then OPEN.
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return None
            self.stats.bytes_in += len(frame) + protocol.HEADER.size
            if frame.type == FrameType.STATS:
                await self._send(
                    writer, wlock,
                    json_frame(FrameType.STATS, self.stats_payload()),
                )
                continue
            if frame.type == FrameType.OPEN:
                break
            await self._send(
                writer, wlock,
                error_frame(
                    ERR_BAD_STATE,
                    f"expected OPEN or STATS, got {frame.type.name}",
                ),
            )
            return None

        return await self._admit(parse_json(frame), writer, wlock)

    async def _admit(
        self,
        open_payload: Dict,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
    ) -> Optional[_SessionState]:
        spec = open_payload.get("model")
        if not isinstance(spec, str) or not spec:
            await self._send(
                writer, wlock,
                error_frame(ERR_BAD_FRAME, "OPEN needs a 'model' spec"),
            )
            return None
        try:
            t0 = float(open_payload.get("t0", 0.0))
        except (TypeError, ValueError):
            await self._send(
                writer, wlock,
                error_frame(ERR_BAD_FRAME, "OPEN 't0' must be a number"),
            )
            return None
        async with self._admission:
            # Shedding: with eviction off, turn the newcomer away with a
            # typed error instead of letting the fleet raise -- surviving
            # sessions never notice.
            if (
                len(self._fleet) >= self.config.max_sessions
                and not self.config.evict_idle
            ):
                self.stats.sessions_shed += 1
                if OBS.enabled:
                    counter("repro.serve", "sessions_shed").inc()
                await self._send(
                    writer, wlock,
                    error_frame(
                        ERR_AT_CAPACITY,
                        f"server is at its {self.config.max_sessions}-"
                        f"session capacity; retry later",
                    ),
                )
                return None
            try:
                model, entry = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self.registry.load, spec
                )
            except RegistryError as error:
                await self._send(
                    writer, wlock, error_frame(error.code, str(error))
                )
                return None
            self._session_seq += 1
            session_id = f"s{self._session_seq:06d}"
            # May evict the stalest session (evict_idle=True); the
            # on_evict hook notifies that connection.
            self._fleet.add_session(session_id, model, t0=t0)
        state = _SessionState(
            session_id=session_id,
            queue=asyncio.Queue(maxsize=self.config.queue_depth),
            writer=writer,
            wlock=wlock,
        )
        self._states[session_id] = state
        self.stats.sessions_opened += 1
        if OBS.enabled:
            counter("repro.serve", "sessions_opened").inc()
        await self._send(
            writer, wlock,
            json_frame(FrameType.OPEN, {
                "session": session_id,
                "model": {
                    "name": entry.name,
                    "version": entry.version,
                    "fingerprint": entry.fingerprint,
                    "program": model.program_name,
                    "sample_rate": model.sample_rate,
                },
            }),
        )
        return state

    async def _ingest(
        self, reader: asyncio.StreamReader, state: _SessionState
    ) -> None:
        """Read loop: socket frames into the session's bounded queue."""
        while True:
            frame = await read_frame(reader)
            if frame is None:
                # Peer vanished without CLOSE: abort without a summary.
                await state.queue.put(("abort", None, None))
                return
            self.stats.bytes_in += len(frame) + protocol.HEADER.size
            if frame.type == FrameType.CHUNK:
                seq, samples = protocol.decode_chunk(frame)
                # Bounded put = the ingestion backpressure point.
                await state.queue.put(("chunk", seq, samples))
            elif frame.type == FrameType.CLOSE:
                await state.queue.put(("close", None, None))
                return
            elif frame.type == FrameType.STATS:
                await self._send(
                    state.writer, state.wlock,
                    json_frame(FrameType.STATS, self.stats_payload()),
                )
            else:
                await self._send(
                    state.writer, state.wlock,
                    error_frame(
                        ERR_BAD_STATE,
                        f"unexpected {frame.type.name} frame mid-session",
                    ),
                )
                await state.queue.put(("abort", None, None))
                return

    async def _session_worker(self, state: _SessionState) -> None:
        """Drain the session queue through the DSP pool, emit REPORTs."""
        loop = asyncio.get_running_loop()
        fleet = self._fleet
        lat_hist = (
            histogram("repro.serve", "chunk_latency_ms", _LATENCY_EDGES_MS)
            if OBS.enabled else None
        )
        try:
            while True:
                kind, seq, samples = await state.queue.get()
                if kind == "close":
                    summary = self._close_fleet_session(state.session_id)
                    if summary is not None:
                        await self._send(
                            state.writer, state.wlock,
                            json_frame(
                                FrameType.CLOSE,
                                protocol.summary_to_json(summary),
                            ),
                        )
                    return
                if kind == "abort":
                    self._close_fleet_session(state.session_id)
                    return
                started = time.perf_counter()
                try:
                    results = await loop.run_in_executor(
                        self._pool, fleet.feed, state.session_id, samples
                    )
                except Exception:
                    # The session was evicted (or otherwise closed)
                    # between dequeue and feed; the eviction path already
                    # notified the peer.
                    return
                elapsed_ms = (time.perf_counter() - started) * 1e3
                reports = [r for res in results for r in res.reports]
                windows = sum(len(res.times) for res in results)
                status = results[-1].status if results else "ok"
                self.stats.chunks += 1
                self.stats.samples += len(samples)
                self.stats.windows += windows
                self.stats.reports += len(reports)
                state.reports_sent += len(reports)
                if OBS.enabled:
                    counter("repro.serve", "chunks").inc()
                    counter("repro.serve", "windows").inc(windows)
                    counter("repro.serve", "reports").inc(len(reports))
                    lat_hist.record(elapsed_ms)
                await self._send(
                    state.writer, state.wlock,
                    json_frame(FrameType.REPORT, {
                        "seq": seq,
                        "windows": windows,
                        "status": status,
                        "reports": [
                            protocol.report_to_json(r) for r in reports
                        ],
                    }),
                )
        except (ConnectionError, asyncio.CancelledError):
            self._close_fleet_session(state.session_id)
            raise

    def _close_fleet_session(
        self, session_id: str
    ) -> Optional[StreamSummary]:
        try:
            summary = self._fleet.close_session(session_id)
        except Exception:
            return None  # already closed (eviction or reap)
        self.stats.sessions_closed += 1
        if OBS.enabled:
            counter("repro.serve", "sessions_closed").inc()
        return summary

    async def _reap_session(self, state: _SessionState) -> None:
        """Last-resort cleanup when a connection ends abnormally."""
        self._states.pop(state.session_id, None)
        worker = state.worker
        if worker is not None and not worker.done():
            try:
                state.queue.put_nowait(("abort", None, None))
            except asyncio.QueueFull:
                worker.cancel()
            try:
                await asyncio.wait_for(worker, timeout=10)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                worker.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, Exception
                ):
                    await worker
            except Exception:
                pass
        self._close_fleet_session(state.session_id)

    # -- eviction -------------------------------------------------------------

    def _on_evict(self, session_id: str, summary: StreamSummary) -> None:
        """FleetScheduler evicted ``session_id`` to admit a newcomer."""
        self.stats.sessions_evicted += 1
        self.stats.sessions_closed += 1
        if OBS.enabled:
            counter("repro.serve", "sessions_evicted").inc()
        state = self._states.get(session_id)
        if state is None:
            return
        state.evicted = True
        self._loop.create_task(self._notify_evicted(state))

    async def _notify_evicted(self, state: _SessionState) -> None:
        with contextlib.suppress(Exception):
            await self._send(
                state.writer, state.wlock,
                error_frame(
                    ERR_EVICTED,
                    f"session {state.session_id} was evicted as the "
                    f"stalest at capacity",
                ),
            )
        # Closing the transport ends the connection's read loop, which
        # aborts the worker through the normal reap path.
        state.writer.close()


# -- thread-hosted serving (sync callers: tests, benches, CLI clients) --------


class ServerHandle:
    """A server running on its own event-loop thread."""

    def __init__(
        self,
        server: EddieServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    @property
    def stats(self) -> ServerStats:
        return self.server.stats

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        with contextlib.suppress(Exception):
            future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    registry: ModelRegistry,
    config: Optional[ServerConfig] = None,
) -> ServerHandle:
    """Start an :class:`EddieServer` on a dedicated event-loop thread.

    The synchronous entry point tests, benchmarks, and scripts use:
    returns once the socket is bound, so ``handle.address`` is
    immediately connectable. Stop with ``handle.stop()`` (or use it as a
    context manager).
    """
    started = threading.Event()
    holder: Dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = EddieServer(registry, config=config)
        try:
            loop.run_until_complete(server.start())
        except Exception as error:  # surface bind failures to the caller
            holder["error"] = error
            started.set()
            loop.close()
            return
        holder["server"] = server
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=run, name="eddie-serve-loop", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise ServeError("server failed to start within 30s")
    if "error" in holder:
        raise ServeError(f"server failed to start: {holder['error']}")
    return ServerHandle(holder["server"], holder["loop"], thread)
