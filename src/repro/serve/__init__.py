"""repro.serve -- networked EM-monitoring service (DESIGN.md D18).

Four layers, each usable alone:

- :mod:`repro.serve.protocol` -- length-prefixed binary framing for IQ
  chunks and JSON control messages, with protocol-version negotiation;
- :mod:`repro.serve.registry` -- versioned on-disk model registry with
  content addressing and a shared in-memory LRU;
- :mod:`repro.serve.server` -- asyncio TCP server multiplexing sessions
  onto a :class:`~repro.stream.FleetScheduler` with backpressure and
  load shedding;
- :mod:`repro.serve.client` -- synchronous client + replay helper whose
  remote reports are bit-identical to a local
  :class:`~repro.stream.StreamingMonitor` run.

Plus the resilience pieces (DESIGN.md D19): revision-2 peers get
session checkpoint/resume with exactly-once report delivery, clients
reconnect transparently with capped backoff, servers drain gracefully,
and :mod:`repro.serve.chaos` provides the deterministic fault-injection
proxy the resilience suite and recovery benchmark drive it all with.

And the scale-out layer (DESIGN.md D21): :mod:`repro.serve.shard` runs
N worker processes behind a consistent-hash :class:`ShardRouter`, with
per-worker spill namespaces, spill adoption on worker death, rolling
drain, and fleet-wide STATS aggregation.
"""

from repro.serve.chaos import ChaosConfig, ChaosProxy, ChaosStats
from repro.serve.client import EddieClient, replay
from repro.serve.protocol import (
    PROTOCOL_VERSIONS,
    Frame,
    FrameDecoder,
    FrameType,
    decode_chunk,
    encode_chunk,
    encode_frame,
    error_frame,
    json_frame,
    negotiate_version,
    parse_json,
)
from repro.serve.registry import ModelRegistry, RegistryEntry, model_fingerprint
from repro.serve.server import (
    EddieServer,
    ServerConfig,
    ServerHandle,
    ServerStats,
    serve_in_thread,
)
from repro.serve.shard import (
    ShardCluster,
    ShardRouter,
    WorkerSpec,
    merge_stats_payloads,
    place,
)

__all__ = [
    "ChaosConfig",
    "ChaosProxy",
    "ChaosStats",
    "EddieClient",
    "EddieServer",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "ModelRegistry",
    "PROTOCOL_VERSIONS",
    "RegistryEntry",
    "ServerConfig",
    "ServerHandle",
    "ServerStats",
    "ShardCluster",
    "ShardRouter",
    "WorkerSpec",
    "decode_chunk",
    "encode_chunk",
    "encode_frame",
    "error_frame",
    "json_frame",
    "merge_stats_payloads",
    "model_fingerprint",
    "negotiate_version",
    "parse_json",
    "place",
    "replay",
    "serve_in_thread",
]
