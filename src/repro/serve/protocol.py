"""The EDDIE serving wire protocol: length-prefixed binary frames.

One TCP connection carries one monitoring session. Every frame is an
8-byte header (magic ``b"ED"``, frame type, flags, payload length)
followed by the payload. Control frames (HELLO / OPEN / REPORT / CLOSE /
ERROR / STATS) carry canonical JSON; CHUNK frames carry raw IQ samples
behind a small binary header (sequence number + dtype code), so the DSP
hot path never round-trips sample data through JSON.

Session lifecycle on the wire::

    client                          server
    ------                          ------
    HELLO {versions}        ->
                            <-      HELLO {version}        (negotiated)
    OPEN  {model, t0}       ->
                            <-      OPEN  {session, model}  | ERROR
    CHUNK [seq|dtype|IQ]    ->
                            <-      REPORT {seq, reports}   (one per CHUNK)
    ...                             ...
    CLOSE {}                ->
                            <-      CLOSE {summary}

STATS is valid any time after HELLO and is answered immediately with a
STATS frame. ERROR frames carry a machine-readable ``code`` (the
constants below); ``at_capacity`` is the load-shedding rejection.

Protocol revision 2 adds resumability (DESIGN.md D19). A v2 server
periodically checkpoints each session's stream state to durable storage
and acknowledges the checkpoint with ``CHECKPOINT_ACK {seq}`` -- "every
chunk up to ``seq`` is durably scored; you may forget it". A client that
loses its connection reconnects, re-HELLOs, and sends ``RESUME
{session, token, delivered, window}`` instead of OPEN; the server
restores the spilled state and replies with a RESUME frame carrying the
durable sequence number plus any REPORT payloads the client had not yet
seen (at most ``window`` of them -- the client's in-flight bound). The
client then replays only chunks after the durable sequence number:
exactly-once window scoring, exactly-once report delivery. Version
negotiation keeps v1 clients working unchanged against v2 servers (they
simply never see CHECKPOINT_ACK and cannot resume).

Protocol revision 3 adds shard placement (DESIGN.md D21). A revision-3
peer that sends OPEN or RESUME to a shard router may be answered with
``REDIRECT {worker, host, port}`` instead of the session ack: "your
session lives on that worker -- dial it directly and repeat the
request". Clients include an optional ``shard_key`` in OPEN/RESUME so
the router's consistent-hash placement is stable across reconnects
(servers ignore unknown JSON fields, so the key is free against a
single worker). v1/v2 clients never see REDIRECT: the router splices
their connection through to the placed worker instead.

Exactness: JSON floats are emitted with Python ``repr`` semantics and
parse back to the identical double, and CHUNK payloads are raw
little-endian sample bytes, so a replayed capture produces bit-identical
monitor output to a local run (asserted in ``tests/test_serve.py``).
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "CHUNK_HEADER",
    "ERR_AT_CAPACITY",
    "ERR_BAD_FRAME",
    "ERR_BAD_REDIRECT",
    "ERR_BAD_STATE",
    "ERR_DRAINING",
    "ERR_EVICTED",
    "ERR_INTERNAL",
    "ERR_MODEL_CORRUPT",
    "ERR_NO_WORKERS",
    "ERR_RESUME_REJECTED",
    "ERR_UNKNOWN_MODEL",
    "ERR_UNKNOWN_SESSION",
    "ERR_UNSUPPORTED_VERSION",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "MAX_PAYLOAD",
    "PROTOCOL_VERSIONS",
    "decode_chunk",
    "encode_chunk",
    "encode_frame",
    "error_frame",
    "json_frame",
    "negotiate_version",
    "parse_json",
    "parse_redirect",
    "read_frame",
    "recv_frame",
    "report_from_json",
    "report_to_json",
    "send_frame",
    "summary_from_json",
    "summary_to_json",
]

MAGIC = b"ED"
HEADER = struct.Struct(">2sBBI")  # magic, type, flags, payload length
CHUNK_HEADER = struct.Struct(">IB3x")  # seq, dtype code, padding

#: Protocol revisions this build understands, newest last. HELLO
#: negotiation picks the highest revision both ends share. Revision 2
#: adds session resumability (RESUME / CHECKPOINT_ACK); revision 3 adds
#: shard placement (REDIRECT + the optional ``shard_key`` field).
PROTOCOL_VERSIONS: Tuple[int, ...] = (1, 2, 3)

#: Refuse payloads beyond this size (a corrupt length prefix must not
#: make the peer allocate gigabytes). 16 MiB >> any sane IQ chunk.
MAX_PAYLOAD = 16 * 1024 * 1024

# Typed ERROR codes (the ``code`` field of ERROR frame payloads).
ERR_UNSUPPORTED_VERSION = "unsupported_version"
ERR_UNKNOWN_MODEL = "unknown_model"
ERR_MODEL_CORRUPT = "model_corrupt"
ERR_AT_CAPACITY = "at_capacity"
ERR_EVICTED = "evicted"
ERR_BAD_FRAME = "bad_frame"
ERR_BAD_STATE = "bad_state"
ERR_INTERNAL = "internal"
ERR_DRAINING = "draining"
ERR_UNKNOWN_SESSION = "unknown_session"
ERR_RESUME_REJECTED = "resume_rejected"
ERR_BAD_REDIRECT = "bad_redirect"
ERR_NO_WORKERS = "no_workers"


class FrameType(IntEnum):
    HELLO = 1
    OPEN = 2
    CHUNK = 3
    REPORT = 4
    CLOSE = 5
    ERROR = 6
    STATS = 7
    # Protocol revision 2 (resumable sessions).
    RESUME = 8
    CHECKPOINT_ACK = 9
    # Protocol revision 3 (shard placement).
    REDIRECT = 10


# Wire dtype codes for CHUNK payloads. complex64 is the nominal live-SDR
# format; complex128 carries simulation captures without rounding (the
# bit-identity contract); the float types serve power-trace monitoring.
_DTYPE_CODES: Dict[int, np.dtype] = {
    1: np.dtype("<c8"),
    2: np.dtype("<c16"),
    3: np.dtype("<f4"),
    4: np.dtype("<f8"),
}
_CODE_OF_DTYPE = {dt: code for code, dt in _DTYPE_CODES.items()}


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    type: FrameType
    payload: bytes

    def __len__(self) -> int:
        return len(self.payload)


def encode_frame(ftype: FrameType, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + payload) to bytes."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit"
        )
    return HEADER.pack(MAGIC, int(ftype), 0, len(payload)) + payload


def json_frame(ftype: FrameType, obj: Any) -> bytes:
    """Serialize a control frame with a canonical-JSON payload."""
    payload = json.dumps(
        obj, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    return encode_frame(ftype, payload)


def error_frame(code: str, message: str) -> bytes:
    """Serialize a typed ERROR frame."""
    return json_frame(FrameType.ERROR, {"code": code, "message": message})


def parse_json(frame: Frame) -> Dict[str, Any]:
    """The JSON payload of a control frame, as a dict."""
    try:
        obj = json.loads(frame.payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(
            f"{frame.type.name} frame carries invalid JSON: {error}"
        ) from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"{frame.type.name} frame payload must be a JSON object, "
            f"got {type(obj).__name__}"
        )
    return obj


def encode_chunk(seq: int, samples: np.ndarray) -> bytes:
    """Serialize one CHUNK frame: sequence number + dtype-tagged IQ.

    The sample dtype is preserved on the wire (little-endian), so
    complex128 simulation captures replay without rounding while live
    complex64 front ends pay half the bandwidth.
    """
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ProtocolError(
            f"chunk samples must be 1-D, got shape {samples.shape}"
        )
    wire_dtype = samples.dtype.newbyteorder("<")
    code = _CODE_OF_DTYPE.get(wire_dtype)
    if code is None:
        raise ProtocolError(
            f"unsupported chunk dtype {samples.dtype}; use one of "
            f"{sorted(str(d) for d in _CODE_OF_DTYPE)}"
        )
    body = CHUNK_HEADER.pack(seq, code) + np.ascontiguousarray(
        samples.astype(wire_dtype, copy=False)
    ).tobytes()
    return encode_frame(FrameType.CHUNK, body)


def decode_chunk(frame: Frame) -> Tuple[int, np.ndarray]:
    """Parse a CHUNK frame into ``(seq, samples)``."""
    if frame.type != FrameType.CHUNK:
        raise ProtocolError(f"expected CHUNK, got {frame.type.name}")
    if len(frame.payload) < CHUNK_HEADER.size:
        raise ProtocolError("CHUNK frame shorter than its header")
    seq, code = CHUNK_HEADER.unpack_from(frame.payload)
    dtype = _DTYPE_CODES.get(code)
    if dtype is None:
        raise ProtocolError(f"unknown chunk dtype code {code}")
    body = frame.payload[CHUNK_HEADER.size:]
    if len(body) % dtype.itemsize:
        raise ProtocolError(
            f"CHUNK body of {len(body)} bytes is not a whole number of "
            f"{dtype} samples"
        )
    # frombuffer yields a read-only view of the frame; copy so the
    # monitor owns a mutable, native-order array.
    samples = np.frombuffer(body, dtype=dtype).astype(
        dtype.newbyteorder("="), copy=True
    )
    return int(seq), samples


def negotiate_version(client_versions: Any) -> Optional[int]:
    """The highest protocol revision shared with the peer, or None."""
    try:
        offered = {int(v) for v in client_versions}
    except (TypeError, ValueError):
        raise ProtocolError(
            f"HELLO versions must be a list of integers, "
            f"got {client_versions!r}"
        ) from None
    shared = offered & set(PROTOCOL_VERSIONS)
    return max(shared) if shared else None


def parse_redirect(frame: Frame) -> Tuple[str, int, int]:
    """Validate a REDIRECT frame into ``(host, port, worker_id)``.

    Every malformation -- wrong frame type, non-object payload, missing
    or non-string host, out-of-range port, bad worker id -- raises a
    typed :class:`ProtocolError` with ``code='bad_redirect'``, so a
    client can distinguish a corrupt router from a lost connection.
    """
    if frame.type != FrameType.REDIRECT:
        raise ProtocolError(
            f"expected REDIRECT, got {frame.type.name}",
            code=ERR_BAD_REDIRECT,
        )
    try:
        payload = parse_json(frame)
    except ProtocolError as error:
        raise ProtocolError(str(error), code=ERR_BAD_REDIRECT) from None
    host = payload.get("host")
    if not isinstance(host, str) or not host:
        raise ProtocolError(
            f"REDIRECT 'host' must be a non-empty string, got {host!r}",
            code=ERR_BAD_REDIRECT,
        )
    try:
        port = int(payload["port"])
    except (KeyError, TypeError, ValueError):
        raise ProtocolError(
            f"REDIRECT 'port' must be an integer, got "
            f"{payload.get('port')!r}",
            code=ERR_BAD_REDIRECT,
        ) from None
    if not 0 < port < 65536:
        raise ProtocolError(
            f"REDIRECT port {port} is out of range", code=ERR_BAD_REDIRECT
        )
    try:
        worker = int(payload.get("worker", -1))
    except (TypeError, ValueError):
        raise ProtocolError(
            f"REDIRECT 'worker' must be an integer, got "
            f"{payload.get('worker')!r}",
            code=ERR_BAD_REDIRECT,
        ) from None
    return host, port, worker


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte slices, get whole frames.

    Both transports use it -- the asyncio server reads whatever the
    socket delivers, the sync client reads exact lengths -- so framing
    bugs surface in one place.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Append received bytes; return every frame now complete."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        if len(self._buffer) < HEADER.size:
            return None
        magic, ftype, _flags, length = HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise ProtocolError(
                f"bad frame magic {bytes(magic)!r} (not an EDDIE stream, "
                f"or the stream lost sync)"
            )
        if length > MAX_PAYLOAD:
            raise ProtocolError(
                f"frame announces a {length}-byte payload, over the "
                f"{MAX_PAYLOAD}-byte limit"
            )
        if len(self._buffer) < HEADER.size + length:
            return None
        try:
            frame_type = FrameType(ftype)
        except ValueError:
            raise ProtocolError(f"unknown frame type {ftype}") from None
        payload = bytes(self._buffer[HEADER.size:HEADER.size + length])
        del self._buffer[:HEADER.size + length]
        return Frame(frame_type, payload)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


# -- transport helpers --------------------------------------------------------


async def read_frame(reader) -> Optional[Frame]:
    """Read one frame from an asyncio StreamReader.

    Returns None on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on EOF mid-frame or malformed framing.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(error.partial)} of "
            f"{HEADER.size} bytes)"
        ) from None
    decoder = FrameDecoder()
    frames = decoder.feed(header)
    if frames:  # zero-payload frame completed by the header alone
        return frames[0]
    magic, ftype, _flags, length = HEADER.unpack(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-payload ({len(error.partial)} of "
            f"{length} bytes)"
        ) from None
    frames = decoder.feed(payload)
    if not frames:
        raise ProtocolError("internal framing error")  # unreachable
    return frames[0]


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        part = sock.recv(n - len(chunks))
        if not part:
            # Mid-frame EOF is a lost connection, not a malformed frame:
            # typed so a reconnecting client can tell them apart.
            raise ProtocolError(
                f"connection closed after {len(chunks)} of {n} bytes",
                code="connection_closed",
            )
        chunks.extend(part)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> Optional[Frame]:
    """Read one frame from a blocking socket (sync client side).

    Returns None on a clean EOF at a frame boundary.
    """
    try:
        first = sock.recv(1)
    except ConnectionResetError:
        return None
    if not first:
        return None
    header = first + _recv_exactly(sock, HEADER.size - 1)
    decoder = FrameDecoder()
    frames = decoder.feed(header)
    if frames:
        return frames[0]
    _magic, _ftype, _flags, length = HEADER.unpack(header)
    frames = decoder.feed(_recv_exactly(sock, length))
    return frames[0] if frames else None


def send_frame(sock: socket.socket, data: bytes) -> None:
    """Write one already-encoded frame to a blocking socket."""
    sock.sendall(data)


# -- report / summary codecs --------------------------------------------------
# Shared by server and client so both sides agree field-for-field.
# Python's json emits floats with repr semantics and parses them back to
# the identical double, which is what keeps wire reports bit-identical
# to local monitor output.


def report_to_json(report) -> Dict[str, Any]:
    """An :class:`~repro.core.monitor.AnomalyReport` as a JSON object."""
    return {
        "time": report.time,
        "region": report.region,
        "streak": report.streak,
        "kind": report.kind,
    }


def report_from_json(obj: Dict[str, Any]):
    """Rebuild an :class:`AnomalyReport` from its JSON object."""
    from repro.core.monitor import AnomalyReport

    try:
        return AnomalyReport(
            time=float(obj["time"]),
            region=str(obj["region"]),
            streak=int(obj["streak"]),
            kind=str(obj.get("kind", "anomaly")),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed report object: {error}") from None


def summary_to_json(summary) -> Dict[str, Any]:
    """A :class:`~repro.stream.StreamSummary` as a JSON object."""
    return {
        "session_id": summary.session_id,
        "chunks": summary.chunks,
        "samples": summary.samples,
        "windows": summary.windows,
        "reports": [report_to_json(r) for r in summary.reports],
        "unscorable_fraction": summary.unscorable_fraction,
        "status": summary.status,
        "stopped_early": summary.stopped_early,
    }


def summary_from_json(obj: Dict[str, Any]):
    """Rebuild a :class:`StreamSummary` from its JSON object."""
    from repro.stream.engine import StreamSummary

    try:
        return StreamSummary(
            session_id=str(obj["session_id"]),
            chunks=int(obj["chunks"]),
            samples=int(obj["samples"]),
            windows=int(obj["windows"]),
            reports=[report_from_json(r) for r in obj.get("reports", [])],
            unscorable_fraction=float(obj["unscorable_fraction"]),
            status=str(obj["status"]),
            stopped_early=bool(obj["stopped_early"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed summary object: {error}") from None
