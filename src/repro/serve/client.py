"""Synchronous serving client: stream a capture, collect the verdicts.

:class:`EddieClient` speaks the :mod:`repro.serve.protocol` framing over
a blocking socket, which keeps device-side integration trivial (an IoT
probe is a loop around ``capture -> send``, not an event loop). Chunk
sends are pipelined behind a bounded window: up to ``window`` CHUNKs may
be in flight before the client blocks reading REPORTs, so loopback and
LAN round trips overlap with the server's DSP instead of serializing
with it. ``window=1`` degrades to strict request/response -- the shape
the latency benchmark measures.

Resilience (DESIGN.md D19): against a revision-2 server the client
keeps every chunk past the server's last ``CHECKPOINT_ACK`` in a
bounded replay buffer. When the connection dies -- reset, mid-frame
truncation, an I/O deadline, or the server announcing a drain -- it
reconnects with capped exponential backoff plus jitter, sends
``RESUME``, applies any re-delivered reports (deduplicated by chunk
sequence number, so nothing is double-counted), and replays only the
unacknowledged chunks. The stream of reports and the final summary are
bit-identical to an uninterrupted run. Two deadlines are separate
knobs: ``connect_timeout`` governs dialing, ``io_timeout`` every
blocking send/recv; both surface as typed
:class:`~repro.errors.ServeTimeoutError`.

The :meth:`EddieClient.replay` generator is the deployment loop in
miniature: it streams an :class:`~repro.em.scenario.EmTrace` /
:class:`~repro.types.Signal` via ``iter_chunks`` and yields each
:class:`~repro.core.monitor.AnomalyReport` as the server emits it --
bit-identical to a local :class:`~repro.stream.StreamingMonitor` run on
the same trace (``tests/test_serve.py`` pins this).
"""

from __future__ import annotations

import contextlib
import random
import secrets
import socket
import time
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.core.monitor import AnomalyReport
from repro.errors import ProtocolError, ServeError, ServeTimeoutError
from repro.serve.protocol import (
    ERR_AT_CAPACITY,
    ERR_BAD_REDIRECT,
    ERR_DRAINING,
    ERR_RESUME_REJECTED,
    Frame,
    FrameType,
    PROTOCOL_VERSIONS,
    encode_chunk,
    json_frame,
    parse_json,
    parse_redirect,
    recv_frame,
    report_from_json,
    send_frame,
    summary_from_json,
)
from repro.stream.engine import StreamSummary
from repro.types import Signal

__all__ = ["EddieClient", "replay"]

ChunkSource = Union[Signal, np.ndarray, Iterable]


def _as_chunks(source: ChunkSource, chunk_samples: int) -> Iterator:
    """Normalize a trace/signal/array/iterable into sample chunks."""
    if hasattr(source, "iter_chunks"):  # Signal or EmTrace
        return iter(source.iter_chunks(chunk_samples))
    if isinstance(source, np.ndarray):
        return iter(
            Signal(source, 1.0).iter_chunks(chunk_samples)
        )  # rate unused: raw arrays carry no rate to check
    return iter(source)


class EddieClient:
    """One monitoring session against an :class:`EddieServer`.

    Usage::

        with EddieClient(host, port) as client:
            client.open("bitcount@latest", t0=trace.iq.t0)
            for report in client.replay(trace, chunk_samples=4096):
                alert(report)
            summary = client.close()

    Args:
        timeout: legacy single deadline; when given it sets both
            ``connect_timeout`` and ``io_timeout``.
        connect_timeout: deadline for dialing (and redialing) the server.
        io_timeout: deadline for every blocking send/recv once
            connected; expiry raises :class:`ServeTimeoutError`.
        window: chunks in flight before sends block on REPORTs.
        reconnect: transparently resume the session after a lost
            connection (revision-2 servers only).
        max_retries: reconnect attempts per disconnection before giving
            up with ``ServeError(code='resume_failed')``.
        backoff_base / backoff_max: capped exponential backoff between
            reconnect attempts, jittered to avoid thundering herds.
        replay_buffer_chunks: unacknowledged chunks retained for replay;
            overflowing it (a server that stops checkpointing) raises
            ``ServeError(code='replay_overflow')`` rather than silently
            losing resumability.
        shard_key: stable placement key sent in OPEN/RESUME so a shard
            router pins the session to one worker across reconnects
            (DESIGN.md D21); defaults to a fresh random key per
            :meth:`open`. Ignored by standalone servers.
        max_redirects: placement hops tolerated per OPEN/RESUME before
            giving up with ``ServeError(code='bad_redirect')``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        io_timeout: float = 30.0,
        window: int = 8,
        reconnect: bool = True,
        max_retries: int = 6,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        replay_buffer_chunks: int = 256,
        shard_key: Optional[str] = None,
        max_redirects: int = 4,
    ) -> None:
        if window < 1:
            raise ServeError(f"window must be >= 1, got {window}")
        if timeout is not None:
            connect_timeout = io_timeout = float(timeout)
        if replay_buffer_chunks < window:
            raise ServeError(
                f"replay_buffer_chunks ({replay_buffer_chunks}) must be "
                f">= window ({window})"
            )
        self.host = host
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self.io_timeout = float(io_timeout)
        self.window = int(window)
        self.reconnect = bool(reconnect)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.replay_buffer_chunks = int(replay_buffer_chunks)
        self.shard_key = shard_key
        self.max_redirects = int(max_redirects)
        self.worker_id: Optional[int] = None
        self._rng = random.Random()
        self._offer_versions = list(PROTOCOL_VERSIONS)
        # A REDIRECT points the connection at a worker, but (host, port)
        # stays the entry address: every reconnect re-enters through the
        # router so placement can move off a dead worker.
        self._redirect_addr: Optional[Tuple[str, int]] = None
        self._session_key: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self._session: Optional[str] = None
        self._token: Optional[str] = None
        self._model_info: Dict[str, Any] = {}
        self._seq = 0
        self._outstanding: Deque[int] = deque()
        self._buffer: Deque[Tuple[int, bytes]] = deque()
        self._acked = 0
        self._delivered = 0
        self._resumed: List[AnomalyReport] = []
        self._windows = 0
        self._status = "ok"
        self.last_summary: Optional[StreamSummary] = None
        self.protocol_version: Optional[int] = None
        self.reconnects = 0
        self.resume_latencies: List[float] = []

    # -- connection lifecycle -------------------------------------------------

    @property
    def timeout(self) -> float:
        """Legacy alias for ``io_timeout``."""
        return self.io_timeout

    def connect(self) -> "EddieClient":
        """Dial the server and negotiate a protocol version (HELLO)."""
        if self._sock is not None:
            raise ServeError("client is already connected")
        self._dial()
        return self

    def _dial(self) -> None:
        host, port = self._redirect_addr or (self.host, self.port)
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except socket.timeout as exc:
            raise ServeTimeoutError(
                f"connect to {host}:{port} timed out after "
                f"{self.connect_timeout}s"
            ) from exc
        sock.settimeout(self.io_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send_frame(json_frame(FrameType.HELLO, {
            "versions": list(self._offer_versions),
        }))
        reply = self._expect(FrameType.HELLO)
        self.protocol_version = int(parse_json(reply).get("version", 0))

    def __enter__(self) -> "EddieClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disconnect()

    def disconnect(self) -> None:
        """Drop the connection without the CLOSE handshake."""
        self._teardown()
        self._session = None
        self._token = None
        self._redirect_addr = None
        self._buffer.clear()
        self._outstanding.clear()

    def _teardown(self) -> None:
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    # -- session --------------------------------------------------------------

    @property
    def session_id(self) -> Optional[str]:
        return self._session

    @property
    def model_info(self) -> Dict[str, Any]:
        """The registry entry the server bound this session to."""
        return dict(self._model_info)

    @property
    def acked_seq(self) -> int:
        """Highest chunk sequence the server has made durable."""
        return self._acked

    @property
    def unacked_chunks(self) -> int:
        """Chunks currently held in the replay buffer."""
        return len(self._buffer)

    @property
    def resumable(self) -> bool:
        """True when a lost connection can be transparently resumed."""
        return self._can_resume()

    def open(self, model_spec: str, *, t0: float = 0.0) -> Dict[str, Any]:
        """Open a monitoring session for ``model_spec``.

        Raises :class:`ServeError` with the server's typed code when the
        session is refused -- ``code='at_capacity'`` is the load-shed
        signal a probe should back off on.
        """
        self._require_socket()
        if self._session is not None:
            raise ServeError("a session is already open on this client")
        self._session_key = self.shard_key or secrets.token_hex(8)
        ack = self._place_request(FrameType.OPEN, {
            "model": model_spec,
            "t0": t0,
            "window": self.window,
            "shard_key": self._session_key,
        })
        self._session = str(ack.get("session"))
        self.worker_id = ack.get("worker")
        self._model_info = dict(ack.get("model", {}))
        resume = ack.get("resume")
        self._token = (
            str(resume["token"])
            if isinstance(resume, dict) and resume.get("token")
            else None
        )
        self._seq = 0
        self._outstanding.clear()
        self._buffer.clear()
        self._acked = 0
        self._delivered = 0
        self._resumed = []
        self._windows = 0
        self._status = "ok"
        self.last_summary = None
        return ack

    def send(self, samples: Union[Signal, np.ndarray]) -> List[AnomalyReport]:
        """Stream one chunk; return reports that arrived meanwhile.

        Keeps at most ``window`` chunks in flight: when the window is
        full the call blocks reading REPORT frames first, which is how
        server-side backpressure propagates into the caller.
        """
        self._require_session()
        if isinstance(samples, Signal):
            samples = samples.samples
        collected = self._take_resumed()
        while len(self._outstanding) >= self.window:
            collected.extend(self._read_report())
        self._seq += 1
        frame = encode_chunk(self._seq, samples)
        if self._buffering():
            if len(self._buffer) >= self.replay_buffer_chunks:
                raise ServeError(
                    f"replay buffer overflow: {self.replay_buffer_chunks} "
                    f"chunks unacknowledged (the server stopped "
                    f"checkpointing)",
                    code="replay_overflow",
                )
            self._buffer.append((self._seq, frame))
        try:
            self._send_frame(frame)
            self._outstanding.append(self._seq)
        except (ServeError, ConnectionError, OSError) as error:
            # A successful resume re-sends the buffered chunk (it is
            # already in the replay buffer) and rebuilds the window.
            self._handle_disconnect(error)
            collected.extend(self._take_resumed())
        return collected

    def drain(self) -> List[AnomalyReport]:
        """Block until every in-flight chunk has been acknowledged."""
        self._require_session()
        collected = self._take_resumed()
        while self._outstanding:
            collected.extend(self._read_report())
        return collected

    def close(self) -> StreamSummary:
        """Finish the session: drain, CLOSE, return the server summary."""
        self._require_session()
        while True:
            self.drain()
            try:
                self._send_frame(json_frame(FrameType.CLOSE, {}))
                summary = summary_from_json(
                    parse_json(self._expect(FrameType.CLOSE))
                )
                break
            except (ServeError, ConnectionError, OSError) as error:
                self._handle_disconnect(error)
        self.last_summary = summary
        # The summary carries the server's authoritative window total:
        # it includes windows scored while flushing a preprocessing
        # chain's buffered tail at finish, which no per-chunk REPORT
        # frame ever carried.
        self._windows = summary.windows
        self._session = None
        self._token = None
        self._buffer.clear()
        self._outstanding.clear()
        self._resumed = []
        return summary

    def replay(
        self,
        source: ChunkSource,
        *,
        chunk_samples: int = 4096,
    ) -> Iterator[AnomalyReport]:
        """Stream a capture chunk-by-chunk, yielding reports as they come.

        ``source`` may be an :class:`EmTrace`, a :class:`Signal`, a raw
        sample array, or any iterable of chunks. After the generator is
        exhausted the session is closed and ``last_summary`` holds the
        server's :class:`StreamSummary`.
        """
        self._require_session()
        for chunk in _as_chunks(source, chunk_samples):
            for report in self.send(chunk):
                yield report
        for report in self.drain():
            yield report
        self.close()

    # -- health ---------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The server's STATS health snapshot (valid any time)."""
        self._require_socket()
        self._send_frame(json_frame(FrameType.STATS, {}))
        return parse_json(self._expect(FrameType.STATS))

    @property
    def windows_seen(self) -> int:
        """Windows the server has scored for this session so far."""
        return self._windows

    @property
    def status(self) -> str:
        """The session's running status from the latest REPORT."""
        return self._status

    # -- placement ------------------------------------------------------------

    def _place_request(self, ftype: FrameType, payload: Dict) -> Dict:
        """Send an OPEN/RESUME and follow REDIRECT placement hops.

        A shard router answers a revision-3 OPEN/RESUME with the owning
        worker's address; the client re-dials it and repeats the request
        there. Hops are bounded so a misconfigured router cannot bounce
        the client forever.
        """
        for _ in range(self.max_redirects + 1):
            self._send_frame(json_frame(ftype, payload))
            frame = self._expect(ftype, FrameType.REDIRECT)
            if frame.type != FrameType.REDIRECT:
                return parse_json(frame)
            host, port, _worker = parse_redirect(frame)
            self._teardown()
            self._redirect_addr = (host, port)
            self._dial()
        raise ServeError(
            f"placement did not settle after {self.max_redirects} "
            f"redirect hops",
            code=ERR_BAD_REDIRECT,
        )

    # -- reconnection ---------------------------------------------------------

    def _buffering(self) -> bool:
        return self.reconnect and self._token is not None

    def _can_resume(self) -> bool:
        return (
            self.reconnect
            and self._session is not None
            and self._token is not None
            and (self.protocol_version or 0) >= 2
        )

    @staticmethod
    def _disconnected(error: BaseException) -> bool:
        """Is this failure a lost connection (vs. a protocol violation)?"""
        if isinstance(error, ServeTimeoutError):
            return True
        if isinstance(error, ProtocolError):
            return error.code == "connection_closed"
        if isinstance(error, ServeError):
            return error.code == ERR_DRAINING
        return isinstance(error, (ConnectionError, OSError))

    def _handle_disconnect(self, error: BaseException) -> None:
        if not self._disconnected(error) or not self._can_resume():
            raise error
        self._resume(error)

    def _resume(self, cause: BaseException) -> None:
        """Reconnect with backoff, RESUME, replay unacknowledged chunks."""
        started = time.monotonic()
        self._teardown()
        last: BaseException = cause
        for attempt in range(self.max_retries):
            delay = min(
                self.backoff_max, self.backoff_base * (2 ** attempt)
            )
            time.sleep(delay * (0.5 + 0.5 * self._rng.random()))
            try:
                # Re-enter through the entry address: against a shard
                # router the session may have been re-placed onto a
                # surviving worker, and only the router knows where.
                self._redirect_addr = None
                self._dial()
                if (self.protocol_version or 0) < 2:
                    raise ServeError(
                        "server no longer speaks a resumable protocol "
                        "revision",
                        code=ERR_RESUME_REJECTED,
                    )
                resume_payload = {
                    "session": self._session,
                    "token": self._token,
                    "delivered": self._delivered,
                    "window": self.window,
                }
                if self._session_key is not None:
                    resume_payload["shard_key"] = self._session_key
                ack = self._place_request(FrameType.RESUME, resume_payload)
                if ack.get("worker") is not None:
                    self.worker_id = ack.get("worker")
                durable = int(ack.get("seq", 0))
                # The ack doubles as a checkpoint ack: prune the buffer.
                self._on_checkpoint_ack({"seq": durable})
                self._model_info = dict(
                    ack.get("model", self._model_info)
                )
                # Reports the server scored durably but we never saw.
                for payload in ack.get("reports", []):
                    self._resumed.extend(self._apply_report(payload))
                # Replay everything past the durable checkpoint. Reports
                # for chunks we already saw scored come back identical
                # (bit-identity) and are suppressed by _apply_report.
                self._outstanding.clear()
                for seq, frame in self._buffer:
                    self._send_frame(frame)
                    self._outstanding.append(seq)
            except (ServeTimeoutError, ProtocolError) as error:
                self._teardown()
                if self._disconnected(error):
                    last = error
                    continue
                raise
            except ServeError as error:
                self._teardown()
                if error.code in (ERR_DRAINING, ERR_AT_CAPACITY):
                    last = error
                    continue
                raise
            except (ConnectionError, OSError) as error:
                self._teardown()
                last = error
                continue
            self.reconnects += 1
            self.resume_latencies.append(time.monotonic() - started)
            return
        raise ServeError(
            f"could not resume session {self._session} after "
            f"{self.max_retries} attempts: {last}",
            code="resume_failed",
        ) from last

    def _take_resumed(self) -> List[AnomalyReport]:
        out = self._resumed
        self._resumed = []
        return out

    # -- frame plumbing -------------------------------------------------------

    def _require_socket(self) -> None:
        if self._sock is None:
            raise ServeError("client is not connected; call connect()")

    def _require_session(self) -> None:
        self._require_socket()
        if self._session is None:
            raise ServeError("no open session; call open() first")

    def _send_frame(self, data: bytes) -> None:
        try:
            send_frame(self._sock, data)
        except socket.timeout as exc:
            raise ServeTimeoutError(
                f"send timed out after {self.io_timeout}s"
            ) from exc

    def _recv(self) -> Frame:
        while True:
            try:
                frame = recv_frame(self._sock)
            except socket.timeout as exc:
                raise ServeTimeoutError(
                    f"no server frame within {self.io_timeout}s"
                ) from exc
            if frame is None:
                raise ProtocolError(
                    "server closed the connection", code="connection_closed"
                )
            if frame.type == FrameType.CHECKPOINT_ACK:
                self._on_checkpoint_ack(parse_json(frame))
                continue
            return frame

    def _on_checkpoint_ack(self, payload: Dict) -> None:
        try:
            seq = int(payload.get("seq", 0))
        except (TypeError, ValueError):
            return
        if seq > self._acked:
            self._acked = seq
            while self._buffer and self._buffer[0][0] <= seq:
                self._buffer.popleft()

    def _expect(self, *ftypes: FrameType) -> Frame:
        while True:
            frame = self._recv()
            if frame.type == FrameType.ERROR:
                err = parse_json(frame)
                raise ServeError(
                    str(err.get("message", "server error")),
                    code=str(err.get("code", "internal")),
                )
            if (
                frame.type == FrameType.STATS
                and FrameType.STATS not in ftypes
            ):
                # Unsolicited health broadcast (the drain farewell).
                continue
            if frame.type not in ftypes:
                raise ProtocolError(
                    f"expected {'/'.join(t.name for t in ftypes)}, "
                    f"got {frame.type.name}"
                )
            return frame

    def _apply_report(self, payload: Dict) -> List[AnomalyReport]:
        try:
            seq = int(payload.get("seq", 0))
        except (TypeError, ValueError):
            raise ProtocolError("REPORT without a valid seq") from None
        if seq <= self._delivered:
            # A replayed re-score of a chunk whose report we already
            # delivered: bit-identical by construction, so drop it --
            # this is what makes recovery exactly-once.
            return []
        self._delivered = seq
        self._windows += int(payload.get("windows", 0))
        self._status = str(payload.get("status", self._status))
        return [report_from_json(r) for r in payload.get("reports", [])]

    def _read_report(self) -> List[AnomalyReport]:
        while True:
            try:
                payload = parse_json(self._expect(FrameType.REPORT))
            except (ServeError, ConnectionError, OSError) as error:
                self._handle_disconnect(error)
                out = self._take_resumed()
                if out or not self._outstanding:
                    return out
                continue
            seq = payload.get("seq")
            if not self._outstanding or seq != self._outstanding[0]:
                raise ProtocolError(
                    f"REPORT for chunk {seq!r} arrived out of order "
                    f"(expected "
                    f"{self._outstanding[0] if self._outstanding else None})"
                )
            self._outstanding.popleft()
            return self._apply_report(payload)


def replay(
    host: str,
    port: int,
    model_spec: str,
    source: ChunkSource,
    *,
    chunk_samples: int = 4096,
    window: int = 8,
    timeout: float = 30.0,
) -> Tuple[List[AnomalyReport], StreamSummary]:
    """One-call replay: open a session, stream ``source``, close.

    Returns ``(reports, summary)``; ``reports`` is exactly what a local
    :class:`~repro.stream.StreamingMonitor` would have produced on the
    same chunking.
    """
    t0 = 0.0
    if hasattr(source, "iq"):  # EmTrace
        t0 = source.iq.t0
    elif isinstance(source, Signal):
        t0 = source.t0
    with EddieClient(host, port, timeout=timeout, window=window) as client:
        client.open(model_spec, t0=t0)
        reports = list(client.replay(source, chunk_samples=chunk_samples))
        return reports, client.last_summary
