"""Synchronous serving client: stream a capture, collect the verdicts.

:class:`EddieClient` speaks the :mod:`repro.serve.protocol` framing over
a blocking socket, which keeps device-side integration trivial (an IoT
probe is a loop around ``capture -> send``, not an event loop). Chunk
sends are pipelined behind a bounded window: up to ``window`` CHUNKs may
be in flight before the client blocks reading REPORTs, so loopback and
LAN round trips overlap with the server's DSP instead of serializing
with it. ``window=1`` degrades to strict request/response -- the shape
the latency benchmark measures.

The :meth:`EddieClient.replay` generator is the deployment loop in
miniature: it streams an :class:`~repro.em.scenario.EmTrace` /
:class:`~repro.types.Signal` via ``iter_chunks`` and yields each
:class:`~repro.core.monitor.AnomalyReport` as the server emits it --
bit-identical to a local :class:`~repro.stream.StreamingMonitor` run on
the same trace (``tests/test_serve.py`` pins this).
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.monitor import AnomalyReport
from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import (
    Frame,
    FrameType,
    PROTOCOL_VERSIONS,
    encode_chunk,
    json_frame,
    parse_json,
    recv_frame,
    report_from_json,
    send_frame,
    summary_from_json,
)
from repro.stream.engine import StreamSummary
from repro.types import Signal

__all__ = ["EddieClient", "replay"]

ChunkSource = Union[Signal, np.ndarray, Iterable]


def _as_chunks(source: ChunkSource, chunk_samples: int) -> Iterator:
    """Normalize a trace/signal/array/iterable into sample chunks."""
    if hasattr(source, "iter_chunks"):  # Signal or EmTrace
        return iter(source.iter_chunks(chunk_samples))
    if isinstance(source, np.ndarray):
        return iter(
            Signal(source, 1.0).iter_chunks(chunk_samples)
        )  # rate unused: raw arrays carry no rate to check
    return iter(source)


class EddieClient:
    """One monitoring session against an :class:`EddieServer`.

    Usage::

        with EddieClient(host, port) as client:
            client.open("bitcount@latest", t0=trace.iq.t0)
            for report in client.replay(trace, chunk_samples=4096):
                alert(report)
            summary = client.close()
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        window: int = 8,
    ) -> None:
        if window < 1:
            raise ServeError(f"window must be >= 1, got {window}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.window = int(window)
        self._sock: Optional[socket.socket] = None
        self._session: Optional[str] = None
        self._model_info: Dict[str, Any] = {}
        self._seq = 0
        self._outstanding: deque = deque()
        self._windows = 0
        self._status = "ok"
        self.last_summary: Optional[StreamSummary] = None
        self.protocol_version: Optional[int] = None

    # -- connection lifecycle -------------------------------------------------

    def connect(self) -> "EddieClient":
        """Dial the server and negotiate a protocol version (HELLO)."""
        if self._sock is not None:
            raise ServeError("client is already connected")
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        send_frame(self._sock, json_frame(FrameType.HELLO, {
            "versions": list(PROTOCOL_VERSIONS),
        }))
        reply = self._expect(FrameType.HELLO)
        self.protocol_version = int(parse_json(reply).get("version", 0))
        return self

    def __enter__(self) -> "EddieClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disconnect()

    def disconnect(self) -> None:
        """Drop the connection without the CLOSE handshake."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._session = None

    # -- session --------------------------------------------------------------

    @property
    def session_id(self) -> Optional[str]:
        return self._session

    @property
    def model_info(self) -> Dict[str, Any]:
        """The registry entry the server bound this session to."""
        return dict(self._model_info)

    def open(self, model_spec: str, *, t0: float = 0.0) -> Dict[str, Any]:
        """Open a monitoring session for ``model_spec``.

        Raises :class:`ServeError` with the server's typed code when the
        session is refused -- ``code='at_capacity'`` is the load-shed
        signal a probe should back off on.
        """
        self._require_socket()
        if self._session is not None:
            raise ServeError("a session is already open on this client")
        send_frame(self._sock, json_frame(FrameType.OPEN, {
            "model": model_spec,
            "t0": t0,
        }))
        ack = parse_json(self._expect(FrameType.OPEN))
        self._session = str(ack.get("session"))
        self._model_info = dict(ack.get("model", {}))
        self._seq = 0
        self._outstanding.clear()
        self._windows = 0
        self._status = "ok"
        self.last_summary = None
        return ack

    def send(self, samples: Union[Signal, np.ndarray]) -> List[AnomalyReport]:
        """Stream one chunk; return reports that arrived meanwhile.

        Keeps at most ``window`` chunks in flight: when the window is
        full the call blocks reading REPORT frames first, which is how
        server-side backpressure propagates into the caller.
        """
        self._require_session()
        if isinstance(samples, Signal):
            samples = samples.samples
        collected: List[AnomalyReport] = []
        while len(self._outstanding) >= self.window:
            collected.extend(self._read_report())
        self._seq += 1
        send_frame(self._sock, encode_chunk(self._seq, samples))
        self._outstanding.append(self._seq)
        return collected

    def drain(self) -> List[AnomalyReport]:
        """Block until every in-flight chunk has been acknowledged."""
        self._require_session()
        collected: List[AnomalyReport] = []
        while self._outstanding:
            collected.extend(self._read_report())
        return collected

    def close(self) -> StreamSummary:
        """Finish the session: drain, CLOSE, return the server summary."""
        self._require_session()
        self.drain()
        send_frame(self._sock, json_frame(FrameType.CLOSE, {}))
        summary = summary_from_json(
            parse_json(self._expect(FrameType.CLOSE))
        )
        self.last_summary = summary
        self._session = None
        return summary

    def replay(
        self,
        source: ChunkSource,
        *,
        chunk_samples: int = 4096,
    ) -> Iterator[AnomalyReport]:
        """Stream a capture chunk-by-chunk, yielding reports as they come.

        ``source`` may be an :class:`EmTrace`, a :class:`Signal`, a raw
        sample array, or any iterable of chunks. After the generator is
        exhausted the session is closed and ``last_summary`` holds the
        server's :class:`StreamSummary`.
        """
        self._require_session()
        for chunk in _as_chunks(source, chunk_samples):
            for report in self.send(chunk):
                yield report
        for report in self.drain():
            yield report
        self.close()

    # -- health ---------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The server's STATS health snapshot (valid any time)."""
        self._require_socket()
        send_frame(self._sock, json_frame(FrameType.STATS, {}))
        return parse_json(self._expect(FrameType.STATS))

    @property
    def windows_seen(self) -> int:
        """Windows the server has scored for this session so far."""
        return self._windows

    @property
    def status(self) -> str:
        """The session's running status from the latest REPORT."""
        return self._status

    # -- frame plumbing -------------------------------------------------------

    def _require_socket(self) -> None:
        if self._sock is None:
            raise ServeError("client is not connected; call connect()")

    def _require_session(self) -> None:
        self._require_socket()
        if self._session is None:
            raise ServeError("no open session; call open() first")

    def _recv(self) -> Frame:
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError(
                "server closed the connection", code="connection_closed"
            )
        return frame

    def _expect(self, ftype: FrameType) -> Frame:
        frame = self._recv()
        if frame.type == FrameType.ERROR:
            err = parse_json(frame)
            raise ServeError(
                str(err.get("message", "server error")),
                code=str(err.get("code", "internal")),
            )
        if frame.type != ftype:
            raise ProtocolError(
                f"expected {ftype.name}, got {frame.type.name}"
            )
        return frame

    def _read_report(self) -> List[AnomalyReport]:
        payload = parse_json(self._expect(FrameType.REPORT))
        seq = payload.get("seq")
        if not self._outstanding or seq != self._outstanding[0]:
            raise ProtocolError(
                f"REPORT for chunk {seq!r} arrived out of order "
                f"(expected {self._outstanding[0] if self._outstanding else None})"
            )
        self._outstanding.popleft()
        self._windows += int(payload.get("windows", 0))
        self._status = str(payload.get("status", self._status))
        return [report_from_json(r) for r in payload.get("reports", [])]


def replay(
    host: str,
    port: int,
    model_spec: str,
    source: ChunkSource,
    *,
    chunk_samples: int = 4096,
    window: int = 8,
    timeout: float = 30.0,
) -> Tuple[List[AnomalyReport], StreamSummary]:
    """One-call replay: open a session, stream ``source``, close.

    Returns ``(reports, summary)``; ``reports`` is exactly what a local
    :class:`~repro.stream.StreamingMonitor` would have produced on the
    same chunking.
    """
    t0 = 0.0
    if hasattr(source, "iq"):  # EmTrace
        t0 = source.iq.t0
    elif isinstance(source, Signal):
        t0 = source.t0
    with EddieClient(host, port, timeout=timeout, window=window) as client:
        client.open(model_spec, t0=t0)
        reports = list(client.replay(source, chunk_samples=chunk_samples))
        return reports, client.last_summary
