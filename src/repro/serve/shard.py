"""Sharded multi-worker serving (DESIGN.md D21): router + placement.

One :class:`EddieServer` is one asyncio loop feeding one thread pool --
a single-core ceiling. This module scales the serving layer across N
worker processes (or threads, for tests) behind one entry address:

- :func:`place` -- rendezvous (highest-random-weight) hashing of a
  session's shard key over the live worker set. Deterministic,
  order-independent, balanced within ~sqrt statistics, and minimally
  disruptive: removing a worker re-places only that worker's keys.
- :class:`ShardRouter` -- the asyncio frontend every client dials.
  STATS fans out to the workers and merges their snapshots exactly
  (:func:`merge_stats_payloads`); OPEN/RESUME is placed by shard key
  and either answered with a ``REDIRECT`` (revision-3 clients, who
  re-dial the owning worker and talk to it directly -- zero router
  cost on the chunk hot path) or spliced through byte-for-byte
  (revision-1/2 clients, who cannot know about shards).
- :class:`ShardCluster` -- N workers plus a router as one handle.
  Workers share the read-only model registry but checkpoint into
  per-worker spill namespaces (``<spill root>/wNN``); every worker
  lists its siblings' namespaces as fallbacks, so when a worker dies
  its sessions RESUME onto a survivor which *adopts* the orphaned
  spill. ``mode='process'`` spawns real worker processes (SIGTERM
  drains gracefully -- the rolling-restart path); ``mode='thread'``
  hosts workers on event-loop threads in-process (fast, for tests).

Bit-identity is preserved end to end: placement only decides *where* a
session's monitor lives, never how its windows are scored, so a sharded
replay equals a single-worker replay equals a local
:class:`~repro.stream.StreamingMonitor` run (``tests/test_serve_sharded.py``).
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError
from repro.serve import protocol
from repro.serve.protocol import (
    ERR_NO_WORKERS,
    FrameType,
    error_frame,
    json_frame,
    negotiate_version,
    parse_json,
    read_frame,
)
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServerConfig, serve_in_thread

__all__ = [
    "ShardCluster",
    "ShardRouter",
    "WorkerSpec",
    "merge_stats_payloads",
    "place",
]


# -- consistent-hash placement ------------------------------------------------


def place(key: str, worker_ids: Sequence[int]) -> int:
    """The worker that owns ``key``, by rendezvous (HRW) hashing.

    Every candidate worker is scored with
    ``sha256(f"{worker_id}|{key}")`` and the highest score wins. The
    winner is a pure function of (key, candidate set): any router
    replica computes the same owner without coordination, and removing
    one worker re-places only the keys that worker owned -- the other
    assignments are untouched (unlike modulo hashing, which reshuffles
    nearly everything).
    """
    if not worker_ids:
        raise ServeError("no workers to place onto", code=ERR_NO_WORKERS)
    best_id: Optional[int] = None
    best_score = b""
    for worker_id in worker_ids:
        score = hashlib.sha256(
            f"{int(worker_id)}|{key}".encode("utf-8")
        ).digest()
        if best_id is None or score > best_score:
            best_id, best_score = int(worker_id), score
    return best_id


@dataclass(frozen=True)
class WorkerSpec:
    """One worker's slot and dial address."""

    worker_id: int
    host: str
    port: int

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)


# -- fleet-wide STATS merge ---------------------------------------------------

# Per-worker counters and capacities that sum across the fleet.
_SUM_KEYS = frozenset({
    "sessions_open", "max_sessions", "sessions_opened", "sessions_closed",
    "sessions_shed", "sessions_evicted", "sessions_resumed",
    "sessions_suspended", "checkpoints", "chunks", "samples", "windows",
    "reports", "bytes_in", "bytes_out", "protocol_errors",
})
# Config echoes that are uniform across workers: first one wins.
_FIRST_KEYS = frozenset({
    "evict_idle", "kernel_batching", "checkpoint_interval",
})


def _merge_metric_snapshots(snaps: List[Dict]) -> Dict[str, Dict]:
    """Merge ``snapshot_module()`` dicts without touching the registry.

    Counters sum exactly; gauges take the last set value; histograms
    pool bins / count / sum and extremize min / max. Pure -- unlike
    :func:`repro.obs.merge_snapshot`, nothing is folded into this
    process's live instruments.
    """
    out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snaps:
        for name, value in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            prior = out["gauges"].get(name)
            if prior is None or value.get("set"):
                out["gauges"][name] = dict(value)
        for name, value in snap.get("histograms", {}).items():
            prior = out["histograms"].get(name)
            if prior is None:
                out["histograms"][name] = {
                    "edges": list(value["edges"]),
                    "bins": list(value["bins"]),
                    "count": int(value["count"]),
                    "sum": float(value["sum"]),
                    "min": value["min"],
                    "max": value["max"],
                }
                continue
            if list(value["edges"]) != prior["edges"]:
                continue  # incompatible edges: keep the first worker's
            prior["bins"] = [
                a + b for a, b in zip(prior["bins"], value["bins"])
            ]
            prior["count"] += int(value["count"])
            prior["sum"] += float(value["sum"])
            for side, pick in (("min", min), ("max", max)):
                if value[side] is not None:
                    prior[side] = (
                        value[side] if prior[side] is None
                        else pick(prior[side], value[side])
                    )
    return out


def merge_stats_payloads(payloads: Sequence[Dict]) -> Dict:
    """Fold per-worker STATS payloads into one fleet-wide snapshot.

    Counter totals are exact sums of the worker values (asserted in
    ``tests/test_serve_sharded.py``); ``draining`` is true when any
    worker drains; the registry LRU block sums; the per-worker payloads
    ride along under ``"workers"`` so nothing is lost in aggregation.
    """
    merged: Dict[str, Any] = {"workers": [], "worker_count": len(payloads)}
    registry_sums: Dict[str, int] = {}
    metric_snaps: List[Dict] = []
    sessions: List[Dict] = []
    draining = False
    for payload in payloads:
        merged["workers"].append(dict(payload))
        draining = draining or bool(payload.get("draining"))
        for session in payload.get("sessions", ()):
            if isinstance(session, dict):
                tagged = dict(session)
                if payload.get("worker") is not None:
                    tagged.setdefault("worker", payload["worker"])
                sessions.append(tagged)
        for key, value in payload.items():
            if key in _SUM_KEYS and isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            elif key in _FIRST_KEYS and key not in merged:
                merged[key] = value
        for key, value in payload.get("registry", {}).items():
            if isinstance(value, (int, float)):
                registry_sums[key] = registry_sums.get(key, 0) + value
        if isinstance(payload.get("metrics"), dict):
            metric_snaps.append(payload["metrics"])
    for key in _SUM_KEYS:
        merged.setdefault(key, 0)
    merged["draining"] = draining
    merged["registry"] = registry_sums
    merged["sessions"] = sorted(
        sessions, key=lambda s: str(s.get("session", ""))
    )
    if metric_snaps:
        merged["metrics"] = _merge_metric_snapshots(metric_snaps)
    return merged


# -- the shard router ---------------------------------------------------------


@dataclass
class RouterStats:
    """Cumulative router counters (loop-thread mutated)."""

    connections: int = 0
    redirects: int = 0
    splices: int = 0
    stats_fanouts: int = 0
    placement_failures: int = 0
    dead_workers_skipped: int = 0


class ShardRouter:
    """The cluster's entry point: places sessions, aggregates STATS.

    The router never touches IQ samples on the steady-state path:
    revision-3 clients are redirected to their worker after one control
    round trip, and even spliced (v1/v2) connections cost only a byte
    pump, never a decode. Placement consults a short-TTL liveness probe
    so sessions stop landing on a dead worker within ``probe_ttl``
    seconds of its demise.
    """

    def __init__(
        self,
        workers: Sequence[WorkerSpec],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        probe_timeout: float = 1.0,
        probe_ttl: float = 1.0,
    ) -> None:
        if not workers:
            raise ServeError(
                "a shard router needs at least one worker",
                code=ERR_NO_WORKERS,
            )
        self.workers: List[WorkerSpec] = list(workers)
        self.host = host
        self.port = port
        self.probe_timeout = float(probe_timeout)
        self.probe_ttl = float(probe_ttl)
        self.stats = RouterStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._round_robin = 0
        # worker_id -> (alive?, probed-at); entries expire after
        # probe_ttl so a restarted worker comes back into rotation.
        self._liveness: Dict[int, Tuple[bool, float]] = {}

    # -- lifecycle --

    async def start(self) -> None:
        if self._server is not None:
            raise ServeError("router is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise ServeError("router is not started")
        return self._server.sockets[0].getsockname()[:2]

    def worker_spec(self, worker_id: int) -> WorkerSpec:
        for spec in self.workers:
            if spec.worker_id == worker_id:
                return spec
        raise ServeError(f"unknown worker {worker_id}")

    # -- liveness --

    def invalidate_worker(self, worker_id: int) -> None:
        """Drop the cached liveness verdict (a dial just failed)."""
        self._liveness.pop(worker_id, None)

    async def _probe(self, spec: WorkerSpec) -> bool:
        cached = self._liveness.get(spec.worker_id)
        now = time.monotonic()
        if cached is not None and now - cached[1] < self.probe_ttl:
            return cached[0]
        alive = True
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*spec.address),
                timeout=self.probe_timeout,
            )
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        except (OSError, asyncio.TimeoutError):
            alive = False
        self._liveness[spec.worker_id] = (alive, now)
        if not alive:
            self.stats.dead_workers_skipped += 1
        return alive

    async def _live_workers(self) -> List[WorkerSpec]:
        verdicts = await asyncio.gather(
            *(self._probe(spec) for spec in self.workers)
        )
        return [s for s, ok in zip(self.workers, verdicts) if ok]

    # -- placement --

    async def _place_session(self, payload: Dict) -> WorkerSpec:
        """The worker that should own this OPEN/RESUME."""
        live = await self._live_workers()
        if not live:
            raise ServeError(
                "no live workers behind this router", code=ERR_NO_WORKERS
            )
        key = payload.get("shard_key") or payload.get("session")
        if not isinstance(key, str) or not key:
            # A keyless OPEN (old client, new session) has no placement
            # to preserve: spread it round-robin over the live set.
            self._round_robin += 1
            return live[self._round_robin % len(live)]
        owner = place(key, [s.worker_id for s in live])
        return next(s for s in live if s.worker_id == owner)

    # -- connection handling --

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.stats.connections += 1
        try:
            await self._serve_peer(reader, writer)
        except (ConnectionError, asyncio.TimeoutError, OSError):
            pass
        except protocol.ProtocolError as error:
            with contextlib.suppress(Exception):
                writer.write(error_frame(protocol.ERR_BAD_FRAME, str(error)))
                await writer.drain()
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    async def _serve_peer(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        frame = await read_frame(reader)
        if frame is None:
            return
        if frame.type != FrameType.HELLO:
            await self._send(writer, error_frame(
                protocol.ERR_BAD_STATE,
                f"expected HELLO, got {frame.type.name}",
            ))
            return
        hello = parse_json(frame)
        version = negotiate_version(hello.get("versions", ()))
        if version is None:
            await self._send(writer, error_frame(
                protocol.ERR_UNSUPPORTED_VERSION,
                f"no shared protocol version (router speaks "
                f"{list(protocol.PROTOCOL_VERSIONS)}, client offered "
                f"{hello.get('versions')})",
            ))
            return
        from repro import __version__

        await self._send(writer, json_frame(FrameType.HELLO, {
            "version": version,
            "server": f"eddie-shard-router/{__version__}",
        }))
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            if frame.type == FrameType.STATS:
                await self._send(writer, json_frame(
                    FrameType.STATS, await self.cluster_stats()
                ))
                continue
            if frame.type in (FrameType.OPEN, FrameType.RESUME):
                payload = parse_json(frame)
                try:
                    spec = await self._place_session(payload)
                except ServeError as error:
                    self.stats.placement_failures += 1
                    await self._send(
                        writer, error_frame(error.code, str(error))
                    )
                    return
                if version >= 3:
                    self.stats.redirects += 1
                    await self._send(writer, json_frame(FrameType.REDIRECT, {
                        "worker": spec.worker_id,
                        "host": spec.host,
                        "port": spec.port,
                    }))
                    # The client re-dials the worker; this connection is
                    # done (it may also send another OPEN/RESUME after a
                    # failed dial, so keep reading).
                    continue
                await self._splice(reader, writer, frame, spec, version)
                return
            await self._send(writer, error_frame(
                protocol.ERR_BAD_STATE,
                f"expected OPEN, RESUME, or STATS, got {frame.type.name}",
            ))
            return

    async def _splice(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        first_frame: protocol.Frame,
        spec: WorkerSpec,
        version: int,
    ) -> None:
        """Proxy a pre-revision-3 connection through to its worker.

        The router re-handshakes with the worker at exactly the
        client's negotiated revision, forwards the buffered OPEN/RESUME,
        then pumps raw bytes both ways -- the client never learns the
        cluster exists.
        """
        try:
            worker_reader, worker_writer = await asyncio.wait_for(
                asyncio.open_connection(*spec.address),
                timeout=self.probe_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            self.invalidate_worker(spec.worker_id)
            await self._send(client_writer, error_frame(
                ERR_NO_WORKERS,
                f"worker {spec.worker_id} died during placement; retry",
            ))
            return
        self.stats.splices += 1
        try:
            worker_writer.write(json_frame(FrameType.HELLO, {
                "versions": [version],
            }))
            await worker_writer.drain()
            reply = await read_frame(worker_reader)
            if reply is None or reply.type != FrameType.HELLO:
                # Forward the worker's refusal (an ERROR frame) verbatim.
                if reply is not None:
                    await self._send(client_writer, protocol.encode_frame(
                        reply.type, reply.payload
                    ))
                return
            worker_writer.write(protocol.encode_frame(
                first_frame.type, first_frame.payload
            ))
            await worker_writer.drain()

            async def pump(src: asyncio.StreamReader,
                           dst: asyncio.StreamWriter) -> None:
                while True:
                    data = await src.read(65536)
                    if not data:
                        break
                    dst.write(data)
                    await dst.drain()
                with contextlib.suppress(Exception):
                    if dst.can_write_eof():
                        dst.write_eof()

            await asyncio.gather(
                pump(client_reader, worker_writer),
                pump(worker_reader, client_writer),
                return_exceptions=True,
            )
        finally:
            worker_writer.close()
            with contextlib.suppress(Exception):
                await worker_writer.wait_closed()

    # -- fleet-wide stats --

    async def _worker_stats(self, spec: WorkerSpec) -> Optional[Dict]:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*spec.address),
                timeout=self.probe_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            self.invalidate_worker(spec.worker_id)
            return None
        try:
            writer.write(json_frame(FrameType.HELLO, {"versions": [2]}))
            writer.write(json_frame(FrameType.STATS, {}))
            await writer.drain()
            hello = await read_frame(reader)
            if hello is None or hello.type != FrameType.HELLO:
                return None
            stats = await read_frame(reader)
            if stats is None or stats.type != FrameType.STATS:
                return None
            return parse_json(stats)
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def cluster_stats(self) -> Dict:
        """Fan STATS out to every worker; merge into one snapshot."""
        self.stats.stats_fanouts += 1
        results = await asyncio.gather(
            *(self._worker_stats(spec) for spec in self.workers)
        )
        payloads = [p for p in results if p is not None]
        merged = merge_stats_payloads(payloads)
        merged["router"] = {
            "workers_configured": len(self.workers),
            "workers_responding": len(payloads),
            "connections": self.stats.connections,
            "redirects": self.stats.redirects,
            "splices": self.stats.splices,
            "stats_fanouts": self.stats.stats_fanouts,
            "placement_failures": self.stats.placement_failures,
        }
        return merged


class RouterHandle:
    """A :class:`ShardRouter` running on its own event-loop thread."""

    def __init__(
        self,
        router: ShardRouter,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.router = router
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.router.address

    def cluster_stats(self, timeout: float = 30.0) -> Dict:
        future = asyncio.run_coroutine_threadsafe(
            self.router.cluster_stats(), self._loop
        )
        return future.result(timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.router.stop(), self._loop
        )
        with contextlib.suppress(Exception):
            future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


def route_in_thread(
    workers: Sequence[WorkerSpec],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    probe_timeout: float = 1.0,
    probe_ttl: float = 1.0,
) -> RouterHandle:
    """Start a :class:`ShardRouter` on a dedicated event-loop thread."""
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        router = ShardRouter(
            workers, host=host, port=port,
            probe_timeout=probe_timeout, probe_ttl=probe_ttl,
        )
        try:
            loop.run_until_complete(router.start())
        except Exception as error:
            holder["error"] = error
            started.set()
            loop.close()
            return
        holder["router"] = router
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=run, name="eddie-shard-router", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise ServeError("router failed to start within 30s")
    if "error" in holder:
        raise ServeError(f"router failed to start: {holder['error']}")
    return RouterHandle(holder["router"], holder["loop"], thread)


# -- worker processes ---------------------------------------------------------


def _worker_process_main(
    registry_root: str,
    config_kwargs: Dict,
    conn,
) -> None:
    """Entry point of one spawned worker process.

    Binds the server, reports the bound address back over ``conn``, and
    runs until SIGTERM -- which triggers a graceful drain (checkpoint +
    suspend every session) before exit, the rolling-restart half of
    DESIGN.md D21. SIGKILL is the chaos path: no drain, the periodic
    checkpoints alone must carry the sessions (and do -- the survivor
    adopts the spills).
    """
    import asyncio as _asyncio

    from repro.serve.server import EddieServer

    # A terminal Ctrl-C signals the whole foreground process group; the
    # parent coordinates shutdown by SIGTERM-ing each worker, so a
    # worker must not die messily on the stray SIGINT before that.
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)

    registry = ModelRegistry(registry_root)
    config = ServerConfig(**config_kwargs)

    async def run() -> None:
        server = EddieServer(registry, config=config)
        try:
            await server.start()
        except Exception as error:
            conn.send(("error", repr(error)))
            conn.close()
            return
        conn.send(("ready", server.address))
        conn.close()
        stop = _asyncio.Event()
        loop = _asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        await stop.wait()
        await server.drain()
        await server.stop()

    _asyncio.run(run())


# -- the cluster handle -------------------------------------------------------


@dataclass
class _WorkerSlot:
    spec: WorkerSpec
    config: ServerConfig
    handle: Any = None  # ServerHandle (thread mode) or Process
    alive: bool = True
    pipe: Any = field(default=None, repr=False)


class ShardCluster:
    """N serving workers behind one :class:`ShardRouter` entry address.

    ::

        cluster = ShardCluster(registry, workers=4).start()
        host, port = cluster.address          # dial this
        ...
        cluster.drain_worker(2)               # rolling restart, no loss
        cluster.kill_worker(1)                # chaos: sessions resume
        stats = cluster.stats()               # fleet-wide merged STATS
        cluster.stop()

    ``mode='thread'`` hosts each worker on an in-process event-loop
    thread (one GIL -- fine for conformance tests); ``mode='process'``
    spawns real processes so the DSP scales across cores (the
    ``eddie serve --workers N`` and benchmark path).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        workers: int = 2,
        mode: str = "thread",
        config: Optional[ServerConfig] = None,
        host: str = "127.0.0.1",
        router_port: int = 0,
        spill_root: Optional[str] = None,
        probe_timeout: float = 1.0,
        probe_ttl: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ServeError(f"need at least 1 worker, got {workers}")
        if mode not in ("thread", "process"):
            raise ServeError(f"unknown cluster mode {mode!r}")
        self.registry = registry
        self.n_workers = int(workers)
        self.mode = mode
        self.base_config = config or ServerConfig()
        self.host = host
        self.router_port = router_port
        self.probe_timeout = float(probe_timeout)
        self.probe_ttl = float(probe_ttl)
        self.spill_root = Path(
            spill_root if spill_root is not None
            else registry.root / ".sessions"
        )
        self._slots: List[_WorkerSlot] = []
        self._router: Optional[RouterHandle] = None

    # -- lifecycle --

    def _worker_config(self, worker_id: int, port: int = 0) -> ServerConfig:
        spill = self.spill_root / f"w{worker_id:02d}"
        siblings = tuple(
            str(self.spill_root / f"w{k:02d}")
            for k in range(self.n_workers) if k != worker_id
        )
        import dataclasses

        return dataclasses.replace(
            self.base_config,
            host=self.host,
            port=port,
            worker_id=worker_id,
            spill_dir=str(spill),
            spill_fallback_dirs=siblings,
        )

    def start(self) -> "ShardCluster":
        if self._router is not None:
            raise ServeError("cluster is already started")
        self.spill_root.mkdir(parents=True, exist_ok=True)
        try:
            for worker_id in range(self.n_workers):
                self._slots.append(self._start_worker(worker_id))
            self._router = route_in_thread(
                [slot.spec for slot in self._slots],
                host=self.host,
                port=self.router_port,
                probe_timeout=self.probe_timeout,
                probe_ttl=self.probe_ttl,
            )
        except Exception:
            self.stop()
            raise
        return self

    def _start_worker(self, worker_id: int, port: int = 0) -> _WorkerSlot:
        config = self._worker_config(worker_id, port)
        Path(config.spill_dir).mkdir(parents=True, exist_ok=True)
        if self.mode == "thread":
            handle = serve_in_thread(self.registry, config)
            host, bound = handle.address
            return _WorkerSlot(
                spec=WorkerSpec(worker_id, host, bound),
                config=config, handle=handle,
            )
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        kwargs = {
            f.name: getattr(config, f.name)
            for f in config.__dataclass_fields__.values()
        }
        proc = ctx.Process(
            target=_worker_process_main,
            args=(str(self.registry.root), kwargs, child_conn),
            name=f"eddie-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(60):
            proc.kill()
            raise ServeError(f"worker {worker_id} did not bind within 60s")
        status, detail = parent_conn.recv()
        if status != "ready":
            proc.join(5)
            raise ServeError(f"worker {worker_id} failed to start: {detail}")
        host, bound = detail
        return _WorkerSlot(
            spec=WorkerSpec(worker_id, host, bound),
            config=config, handle=proc, pipe=parent_conn,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The router's entry ``(host, port)`` -- what clients dial."""
        if self._router is None:
            raise ServeError("cluster is not started")
        return self._router.address

    @property
    def worker_addresses(self) -> List[Tuple[int, str, int]]:
        return [
            (s.spec.worker_id, s.spec.host, s.spec.port)
            for s in self._slots
        ]

    def worker_handle(self, worker_id: int):
        """The underlying ServerHandle (thread mode) or Process."""
        return self._slot(worker_id).handle

    def _slot(self, worker_id: int) -> _WorkerSlot:
        for slot in self._slots:
            if slot.spec.worker_id == worker_id:
                return slot
        raise ServeError(f"unknown worker {worker_id}")

    # -- fault / restart operations --

    def kill_worker(self, worker_id: int) -> None:
        """Hard-kill one worker: no drain, no checkpoint, no goodbye."""
        slot = self._slot(worker_id)
        if self.mode == "thread":
            slot.handle.stop()
        else:
            slot.handle.kill()
            slot.handle.join(10)
        slot.alive = False
        if self._router is not None:
            self._router.router.invalidate_worker(worker_id)

    def drain_worker(self, worker_id: int, timeout: float = 30.0) -> None:
        """Gracefully drain one worker (the rolling-restart step):
        every session is checkpointed and suspended before it exits."""
        slot = self._slot(worker_id)
        if self.mode == "thread":
            slot.handle.drain(timeout)
            slot.handle.stop()
        else:
            slot.handle.terminate()  # SIGTERM -> drain in the child
            slot.handle.join(timeout)
            if slot.handle.is_alive():
                slot.handle.kill()
                slot.handle.join(5)
        slot.alive = False
        if self._router is not None:
            self._router.router.invalidate_worker(worker_id)

    # -- observability --

    def stats(self, timeout: float = 30.0) -> Dict:
        """The fleet-wide merged STATS snapshot, via the router."""
        if self._router is None:
            raise ServeError("cluster is not started")
        return self._router.cluster_stats(timeout)

    def stop(self) -> None:
        """Stop the router and every worker. Idempotent."""
        if self._router is not None:
            with contextlib.suppress(Exception):
                self._router.stop()
            self._router = None
        for slot in self._slots:
            if not slot.alive:
                continue
            with contextlib.suppress(Exception):
                if self.mode == "thread":
                    slot.handle.stop()
                else:
                    slot.handle.terminate()
                    slot.handle.join(10)
                    if slot.handle.is_alive():
                        slot.handle.kill()
                        slot.handle.join(5)
            slot.alive = False
        self._slots.clear()

    def __enter__(self) -> "ShardCluster":
        if self._router is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
