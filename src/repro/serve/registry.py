"""Versioned on-disk model registry with a shared in-memory LRU.

Fleet-scale serving stands or falls on giving many probes the *same*
reference model without bespoke per-device plumbing (PAPERS.md, the
synthetic-fingerprinting line of work). The registry is that shared
source of truth:

- **Layout**: ``<root>/<name>/v{NNNNN}.npz`` (the model, via
  :mod:`repro.serialize`'s lossless codec) plus a ``.json`` sidecar with
  the publish metadata, so listing never deserializes reference arrays.
- **Addressing**: ``name`` (latest), ``name@latest``, ``name@N``, or a
  content address ``fp:<hex-prefix>`` over the model fingerprint --
  the same canonical SHA-256 hashing :mod:`repro.cache` uses, covering
  config, region profiles, and reference arrays.
- **Integrity**: publish records both the full model fingerprint and the
  config fingerprint; load recomputes the model fingerprint and
  :func:`repro.serialize.load_model` independently verifies the config
  fingerprint, so a corrupted or mislabeled artifact is refused instead
  of silently mis-monitoring a fleet.
- **Atomicity**: artifacts and sidecars are written to a temp file in
  the destination directory and ``os.replace``-d, so concurrent
  publishers and a live server sharing one registry directory never see
  torn entries.
- **LRU**: deserialized :class:`~repro.core.model.EddieModel` instances
  are cached by fingerprint and shared by reference across sessions
  (per-region sorted references precompute once per model, not per
  device) -- the same sharing :class:`~repro.stream.FleetScheduler`
  relies on in-process.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.model import EddieModel
from repro.errors import RegistryError
from repro.obs import OBS, record_count
from repro.serialize import config_fingerprint, load_model, save_model

__all__ = ["ModelRegistry", "RegistryEntry", "ParsedSpec", "parse_spec"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{5})\.npz$")
# Derived (calibrated) artifacts live beside their base version, tagged
# with a 12-hex label of the derived model's own content fingerprint.
# _VERSION_RE deliberately does not match them: `name@latest` always
# resolves to a *base* version, never silently to somebody's derivation.
_DERIVED_RE = re.compile(r"^v(\d{5})\+cal-([0-9a-f]{12})\.npz$")
_CAL_LABEL_LEN = 12
_HEX_RE = re.compile(r"^[0-9a-fA-F]+$")
_VERSION_PART_RE = re.compile(r"^v?(\d+)$")


@dataclass(frozen=True)
class ParsedSpec:
    """A model spec, parsed: exactly one of ``fingerprint`` / ``name``.

    Grammar (DESIGN.md D23)::

        spec        := "fp:" HEX            (>= 6 hex digits)
                     | name version? cal?
        version     := "@latest" | "@" INT | "@v" INT
        cal         := "+cal:" HEX          (>= 6 hex digits)

    ``version is None`` means "latest". Fingerprint specs cannot carry a
    version or a calibration suffix -- a content address is already
    exact.
    """

    name: Optional[str] = None
    version: Optional[int] = None
    fingerprint: Optional[str] = None
    cal: Optional[str] = None

    def __str__(self) -> str:
        if self.fingerprint is not None:
            return f"fp:{self.fingerprint}"
        spec = str(self.name)
        if self.version is not None:
            spec += f"@{self.version}"
        if self.cal is not None:
            spec += f"+cal:{self.cal}"
        return spec


def _bad_spec(spec: object, why: str) -> RegistryError:
    return RegistryError(
        f"invalid model spec {spec!r}: {why}", code="bad_spec"
    )


def parse_spec(spec: str) -> ParsedSpec:
    """Parse a model spec string, or raise a typed ``bad_spec`` error.

    Never raises anything but :class:`~repro.errors.RegistryError` --
    malformed input from the CLI or a network peer must surface as a
    typed refusal, not a traceback.
    """
    if not isinstance(spec, str):
        raise _bad_spec(spec, "spec must be a string")
    if not spec:
        raise _bad_spec(spec, "spec is empty")
    if spec.startswith("fp:"):
        prefix = spec[3:]
        if len(prefix) < 6:
            raise _bad_spec(
                spec, "fingerprint prefix too short (use >= 6 hex digits)"
            )
        if not _HEX_RE.match(prefix):
            raise _bad_spec(spec, "fingerprint prefix is not hex")
        return ParsedSpec(fingerprint=prefix.lower())
    body, plus, cal_part = spec.partition("+")
    cal: Optional[str] = None
    if plus:
        if not cal_part.startswith("cal:"):
            raise _bad_spec(spec, "only '+cal:HEX' suffixes are supported")
        cal = cal_part[4:]
        if len(cal) < 6:
            raise _bad_spec(
                spec, "calibration label too short (use >= 6 hex digits)"
            )
        if len(cal) > _CAL_LABEL_LEN:
            raise _bad_spec(
                spec,
                f"calibration label longer than {_CAL_LABEL_LEN} hex digits",
            )
        if not _HEX_RE.match(cal):
            raise _bad_spec(spec, "calibration label is not hex")
        cal = cal.lower()
    name, at, version_part = body.partition("@")
    if not _NAME_RE.match(name):
        raise _bad_spec(spec, "bad model name")
    version: Optional[int] = None
    if at:
        if version_part != "latest":
            match = _VERSION_PART_RE.match(version_part)
            if not match:
                raise _bad_spec(spec, f"bad version {version_part!r}")
            version = int(match.group(1))
            if version < 1:
                raise _bad_spec(spec, "version must be >= 1")
    return ParsedSpec(name=name, version=version, cal=cal)


def model_fingerprint(model: EddieModel) -> str:
    """Content address of a trained model (config + profiles + arrays)."""
    from repro.cache import fingerprint

    return fingerprint("eddie-model", model)


@dataclass(frozen=True)
class RegistryEntry:
    """One published model version (base, or a ``+cal:`` derivation).

    ``cal`` is the derivation label (12 hex digits of the derived
    model's own fingerprint) and ``base_fingerprint`` the full content
    address of the base model it was calibrated from; both are empty for
    base versions.
    """

    name: str
    version: int
    fingerprint: str
    path: Path
    meta: Dict = field(default_factory=dict, compare=False)
    cal: str = ""
    base_fingerprint: str = ""

    @property
    def is_derived(self) -> bool:
        return bool(self.cal)

    @property
    def spec(self) -> str:
        if self.cal:
            return f"{self.name}@{self.version}+cal:{self.cal}"
        return f"{self.name}@{self.version}"


class ModelRegistry:
    """Publish/resolve/load trained models under a registry directory."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        cache_size: int = 8,
    ) -> None:
        if cache_size < 0:
            raise RegistryError(
                f"cache_size must be >= 0, got {cache_size}",
                code="internal",
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache_size = int(cache_size)
        self._lru: "OrderedDict[str, EddieModel]" = OrderedDict()
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- publishing -----------------------------------------------------------

    def publish(
        self,
        model: EddieModel,
        name: Optional[str] = None,
        *,
        version: Optional[int] = None,
    ) -> RegistryEntry:
        """Write one model version; returns its entry.

        ``name`` defaults to the model's program name; ``version``
        defaults to one past the latest published version (1 for a new
        name). Publishing an explicit version that already exists is an
        error -- published versions are immutable.
        """
        if model.calibration is not None:
            raise RegistryError(
                "calibrated models are published with publish_derived(), "
                "which records their base lineage",
                code="internal",
            )
        name = name if name is not None else model.program_name
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, "
                f"'.', '_', '-'",
                code="internal",
            )
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        existing = self._versions(name)
        if version is None:
            version = (max(existing) + 1) if existing else 1
        elif version in existing:
            raise RegistryError(
                f"{name}@{version} is already published; versions are "
                f"immutable",
                code="internal",
            )
        elif version < 1:
            raise RegistryError(
                f"version must be >= 1, got {version}", code="internal"
            )
        path = model_dir / f"v{version:05d}.npz"
        meta = {
            "name": name,
            "version": version,
            "fingerprint": model_fingerprint(model),
            "config_fingerprint": config_fingerprint(model.config),
            "program_name": model.program_name,
            "sample_rate": model.sample_rate,
            "regions": len(model.profiles),
            "created_at": time.time(),
        }
        self._atomic_write(path, lambda tmp: save_model(model, tmp))
        self._atomic_write(
            path.with_suffix(".json"),
            lambda tmp: tmp.write_text(
                json.dumps(meta, indent=2, sort_keys=True)
            ),
        )
        if OBS.enabled:
            record_count("repro.serve.registry", "published")
        return RegistryEntry(
            name=name,
            version=version,
            fingerprint=meta["fingerprint"],
            path=path,
            meta=meta,
        )

    def publish_derived(
        self,
        model: EddieModel,
        base: Union[str, RegistryEntry],
    ) -> RegistryEntry:
        """Publish a calibrated derivation beside its base version.

        ``base`` is the published base entry (or a spec resolving to
        one). The derived artifact is stored as
        ``<name>/v{NNNNN}+cal-{LABEL}.npz`` where ``LABEL`` is the first
        12 hex digits of the derived model's own content fingerprint,
        and resolves as ``name@N+cal:LABEL``. The sidecar records the
        base fingerprint and the full calibration provenance; load
        refuses the derivation if either was tampered with or the base
        is no longer published.
        """
        if model.calibration is None:
            raise RegistryError(
                "publish_derived() needs a calibrated model (no "
                "calibration provenance attached)",
                code="internal",
            )
        base_entry = base if isinstance(base, RegistryEntry) else (
            self.resolve(base)
        )
        if base_entry.is_derived:
            raise RegistryError(
                f"{base_entry.spec}: cannot derive from a derivation; "
                f"calibrate from the base model",
                code="internal",
            )
        if model.calibration.base_fingerprint != base_entry.fingerprint:
            raise RegistryError(
                f"model was calibrated from "
                f"fp:{model.calibration.base_fingerprint[:12]}, not from "
                f"{base_entry.spec} "
                f"(fp:{base_entry.fingerprint[:12]})",
                code="internal",
            )
        fingerprint = model_fingerprint(model)
        label = fingerprint[:_CAL_LABEL_LEN]
        path = (
            self.root / base_entry.name
            / f"v{base_entry.version:05d}+cal-{label}.npz"
        )
        if path.exists():
            raise RegistryError(
                f"{base_entry.spec}+cal:{label} is already published; "
                f"derivations are immutable",
                code="internal",
            )
        meta = {
            "name": base_entry.name,
            "version": base_entry.version,
            "cal": label,
            "fingerprint": fingerprint,
            "config_fingerprint": config_fingerprint(model.config),
            "base_fingerprint": base_entry.fingerprint,
            "base_spec": base_entry.spec,
            "calibration": model.calibration.to_dict(),
            "program_name": model.program_name,
            "sample_rate": model.sample_rate,
            "regions": len(model.profiles),
            "created_at": time.time(),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, lambda tmp: save_model(model, tmp))
        self._atomic_write(
            path.with_suffix(".json"),
            lambda tmp: tmp.write_text(
                json.dumps(meta, indent=2, sort_keys=True)
            ),
        )
        if OBS.enabled:
            record_count("repro.serve.registry", "published_derived")
        return RegistryEntry(
            name=base_entry.name,
            version=base_entry.version,
            fingerprint=fingerprint,
            path=path,
            meta=meta,
            cal=label,
            base_fingerprint=base_entry.fingerprint,
        )

    @staticmethod
    def _atomic_write(path: Path, writer) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=path.suffix
        )
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            writer(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    # -- listing / resolution -------------------------------------------------

    def _versions(self, name: str) -> List[int]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        versions = []
        for entry in model_dir.iterdir():
            match = _VERSION_RE.match(entry.name)
            if match:
                versions.append(int(match.group(1)))
        return sorted(versions)

    def _derived_labels(self, name: str, version: int) -> List[str]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        labels = []
        for entry in model_dir.iterdir():
            match = _DERIVED_RE.match(entry.name)
            if match and int(match.group(1)) == version:
                labels.append(match.group(2))
        return sorted(labels)

    def _entry(
        self, name: str, version: int, cal: str = ""
    ) -> RegistryEntry:
        if cal:
            path = self.root / name / f"v{version:05d}+cal-{cal}.npz"
        else:
            path = self.root / name / f"v{version:05d}.npz"
        sidecar = path.with_suffix(".json")
        meta: Dict = {}
        if sidecar.exists():
            try:
                meta = json.loads(sidecar.read_text())
            except (OSError, json.JSONDecodeError):
                meta = {}
        return RegistryEntry(
            name=name,
            version=version,
            fingerprint=str(meta.get("fingerprint", "")),
            path=path,
            meta=meta,
            cal=cal,
            base_fingerprint=str(meta.get("base_fingerprint", "")),
        )

    def list_entries(self) -> List[RegistryEntry]:
        """Every published version (base versions, then each version's
        derivations), sorted by (name, version, cal)."""
        entries: List[RegistryEntry] = []
        for model_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for version in self._versions(model_dir.name):
                entries.append(self._entry(model_dir.name, version))
                for label in self._derived_labels(model_dir.name, version):
                    entries.append(
                        self._entry(model_dir.name, version, label)
                    )
        return entries

    def resolve(self, spec: str) -> RegistryEntry:
        """Resolve a model spec to its entry.

        Accepts ``name``, ``name@latest``, ``name@N``, ``fp:HEX``, and
        calibrated derivations ``name[@N]+cal:HEX``. Malformed specs
        raise a typed ``bad_spec`` :class:`RegistryError`; well-formed
        specs that match nothing raise ``unknown_model``.
        """
        parsed = parse_spec(spec)
        if parsed.fingerprint is not None:
            return self._resolve_fingerprint(parsed.fingerprint)
        name = str(parsed.name)
        versions = self._versions(name)
        if not versions:
            raise RegistryError(f"no model named {name!r} in {self.root}")
        if parsed.version is None:
            version = versions[-1]
        elif parsed.version not in versions:
            raise RegistryError(
                f"{name}@{parsed.version} is not published (have "
                f"{', '.join(map(str, versions))})"
            )
        else:
            version = parsed.version
        if parsed.cal is None:
            return self._entry(name, version)
        labels = [
            label
            for label in self._derived_labels(name, version)
            if label.startswith(parsed.cal)
        ]
        if not labels:
            raise RegistryError(
                f"{name}@{version} has no derivation matching "
                f"+cal:{parsed.cal}"
            )
        if len(labels) > 1:
            raise RegistryError(
                f"+cal:{parsed.cal} is ambiguous under {name}@{version} "
                f"({len(labels)} derivations); use a longer label"
            )
        return self._entry(name, version, labels[0])

    def _resolve_fingerprint(self, prefix: str) -> RegistryEntry:
        matches = [
            e for e in self.list_entries()
            if e.fingerprint.startswith(prefix)
        ]
        if not matches:
            raise RegistryError(f"no published model matches fp:{prefix}")
        distinct = {e.fingerprint for e in matches}
        if len(distinct) > 1:
            raise RegistryError(
                f"fp:{prefix} is ambiguous ({len(distinct)} distinct "
                f"models); use a longer prefix"
            )
        # Identical content published under several names/versions:
        # any entry serves; pick the newest deterministically.
        return max(matches, key=lambda e: (e.name, e.version, e.cal))

    # -- loading --------------------------------------------------------------

    def load(self, spec: str) -> Tuple[EddieModel, RegistryEntry]:
        """Resolve and deserialize a model, via the shared LRU.

        A hit returns the *same* :class:`EddieModel` instance earlier
        sessions got -- model state is immutable during monitoring, and
        sharing it is what keeps per-session memory at just the stream
        state. A miss deserializes, verifies the content fingerprint
        against the sidecar, and caches.
        """
        entry = self.resolve(spec)
        with self._lock:
            model = self._lru.get(entry.fingerprint)
            if model is not None:
                self._lru.move_to_end(entry.fingerprint)
                self.cache_hits += 1
                if OBS.enabled:
                    record_count("repro.serve.registry", "lru_hits")
                return model, entry
            self.cache_misses += 1
        if OBS.enabled:
            record_count("repro.serve.registry", "lru_misses")
        if not entry.fingerprint:
            # Publish always records the fingerprint atomically, so an
            # entry without one means the sidecar was lost or torn --
            # refuse rather than serve an unverifiable artifact.
            raise RegistryError(
                f"{entry.spec}: no recorded content fingerprint (missing "
                f"or corrupt sidecar); republish the model",
                code="model_corrupt",
            )
        try:
            model = load_model(entry.path)
        except FileNotFoundError:
            raise RegistryError(
                f"{entry.spec}: artifact file is missing"
            ) from None
        except Exception as error:
            raise RegistryError(
                f"{entry.spec}: failed to load ({error})",
                code="model_corrupt",
            ) from error
        if model_fingerprint(model) != entry.fingerprint:
            raise RegistryError(
                f"{entry.spec}: content fingerprint mismatch (corrupted "
                f"or mislabeled artifact)",
                code="model_corrupt",
            )
        if entry.is_derived:
            # A derivation's lineage must check out end to end: the
            # artifact itself carries (digest-verified) calibration
            # provenance, the sidecar pins the same base fingerprint,
            # and that base must still be published here.
            if model.calibration is None:
                raise RegistryError(
                    f"{entry.spec}: derivation artifact carries no "
                    f"calibration provenance (tampered or mislabeled)",
                    code="model_corrupt",
                )
            if model.calibration.base_fingerprint != entry.base_fingerprint:
                raise RegistryError(
                    f"{entry.spec}: base fingerprint mismatch between "
                    f"artifact and sidecar (tampered derivation)",
                    code="model_corrupt",
                )
            base_published = any(
                not e.is_derived
                and e.fingerprint == entry.base_fingerprint
                for e in self.list_entries()
            )
            if not base_published:
                raise RegistryError(
                    f"{entry.spec}: base model "
                    f"fp:{entry.base_fingerprint[:12]} is not published "
                    f"here; refusing the orphaned derivation",
                )
        elif model.calibration is not None:
            raise RegistryError(
                f"{entry.spec}: base entry resolves to a calibrated "
                f"artifact (mislabeled derivation)",
                code="model_corrupt",
            )
        if self.cache_size:
            with self._lock:
                self._lru[entry.fingerprint] = model
                self._lru.move_to_end(entry.fingerprint)
                while len(self._lru) > self.cache_size:
                    self._lru.popitem(last=False)
        return model, entry

    @property
    def cached_fingerprints(self) -> List[str]:
        with self._lock:
            return list(self._lru)
