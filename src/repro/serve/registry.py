"""Versioned on-disk model registry with a shared in-memory LRU.

Fleet-scale serving stands or falls on giving many probes the *same*
reference model without bespoke per-device plumbing (PAPERS.md, the
synthetic-fingerprinting line of work). The registry is that shared
source of truth:

- **Layout**: ``<root>/<name>/v{NNNNN}.npz`` (the model, via
  :mod:`repro.serialize`'s lossless codec) plus a ``.json`` sidecar with
  the publish metadata, so listing never deserializes reference arrays.
- **Addressing**: ``name`` (latest), ``name@latest``, ``name@N``, or a
  content address ``fp:<hex-prefix>`` over the model fingerprint --
  the same canonical SHA-256 hashing :mod:`repro.cache` uses, covering
  config, region profiles, and reference arrays.
- **Integrity**: publish records both the full model fingerprint and the
  config fingerprint; load recomputes the model fingerprint and
  :func:`repro.serialize.load_model` independently verifies the config
  fingerprint, so a corrupted or mislabeled artifact is refused instead
  of silently mis-monitoring a fleet.
- **Atomicity**: artifacts and sidecars are written to a temp file in
  the destination directory and ``os.replace``-d, so concurrent
  publishers and a live server sharing one registry directory never see
  torn entries.
- **LRU**: deserialized :class:`~repro.core.model.EddieModel` instances
  are cached by fingerprint and shared by reference across sessions
  (per-region sorted references precompute once per model, not per
  device) -- the same sharing :class:`~repro.stream.FleetScheduler`
  relies on in-process.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.model import EddieModel
from repro.errors import RegistryError
from repro.obs import OBS, record_count
from repro.serialize import config_fingerprint, load_model, save_model

__all__ = ["ModelRegistry", "RegistryEntry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{5})\.npz$")


def model_fingerprint(model: EddieModel) -> str:
    """Content address of a trained model (config + profiles + arrays)."""
    from repro.cache import fingerprint

    return fingerprint("eddie-model", model)


@dataclass(frozen=True)
class RegistryEntry:
    """One published model version."""

    name: str
    version: int
    fingerprint: str
    path: Path
    meta: Dict = field(default_factory=dict, compare=False)

    @property
    def spec(self) -> str:
        return f"{self.name}@{self.version}"


class ModelRegistry:
    """Publish/resolve/load trained models under a registry directory."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        cache_size: int = 8,
    ) -> None:
        if cache_size < 0:
            raise RegistryError(
                f"cache_size must be >= 0, got {cache_size}",
                code="internal",
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache_size = int(cache_size)
        self._lru: "OrderedDict[str, EddieModel]" = OrderedDict()
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- publishing -----------------------------------------------------------

    def publish(
        self,
        model: EddieModel,
        name: Optional[str] = None,
        *,
        version: Optional[int] = None,
    ) -> RegistryEntry:
        """Write one model version; returns its entry.

        ``name`` defaults to the model's program name; ``version``
        defaults to one past the latest published version (1 for a new
        name). Publishing an explicit version that already exists is an
        error -- published versions are immutable.
        """
        name = name if name is not None else model.program_name
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, "
                f"'.', '_', '-'",
                code="internal",
            )
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        existing = self._versions(name)
        if version is None:
            version = (max(existing) + 1) if existing else 1
        elif version in existing:
            raise RegistryError(
                f"{name}@{version} is already published; versions are "
                f"immutable",
                code="internal",
            )
        elif version < 1:
            raise RegistryError(
                f"version must be >= 1, got {version}", code="internal"
            )
        path = model_dir / f"v{version:05d}.npz"
        meta = {
            "name": name,
            "version": version,
            "fingerprint": model_fingerprint(model),
            "config_fingerprint": config_fingerprint(model.config),
            "program_name": model.program_name,
            "sample_rate": model.sample_rate,
            "regions": len(model.profiles),
            "created_at": time.time(),
        }
        self._atomic_write(path, lambda tmp: save_model(model, tmp))
        self._atomic_write(
            path.with_suffix(".json"),
            lambda tmp: tmp.write_text(
                json.dumps(meta, indent=2, sort_keys=True)
            ),
        )
        if OBS.enabled:
            record_count("repro.serve.registry", "published")
        return RegistryEntry(
            name=name,
            version=version,
            fingerprint=meta["fingerprint"],
            path=path,
            meta=meta,
        )

    @staticmethod
    def _atomic_write(path: Path, writer) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=path.suffix
        )
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            writer(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    # -- listing / resolution -------------------------------------------------

    def _versions(self, name: str) -> List[int]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        versions = []
        for entry in model_dir.iterdir():
            match = _VERSION_RE.match(entry.name)
            if match:
                versions.append(int(match.group(1)))
        return sorted(versions)

    def _entry(self, name: str, version: int) -> RegistryEntry:
        path = self.root / name / f"v{version:05d}.npz"
        sidecar = path.with_suffix(".json")
        meta: Dict = {}
        if sidecar.exists():
            try:
                meta = json.loads(sidecar.read_text())
            except (OSError, json.JSONDecodeError):
                meta = {}
        return RegistryEntry(
            name=name,
            version=version,
            fingerprint=str(meta.get("fingerprint", "")),
            path=path,
            meta=meta,
        )

    def list_entries(self) -> List[RegistryEntry]:
        """Every published version, sorted by (name, version)."""
        entries: List[RegistryEntry] = []
        for model_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for version in self._versions(model_dir.name):
                entries.append(self._entry(model_dir.name, version))
        return entries

    def resolve(self, spec: str) -> RegistryEntry:
        """Resolve ``name``, ``name@latest``, ``name@N``, or ``fp:HEX``."""
        if not isinstance(spec, str) or not spec:
            raise RegistryError(f"invalid model spec {spec!r}")
        if spec.startswith("fp:"):
            return self._resolve_fingerprint(spec[3:])
        name, _, version_part = spec.partition("@")
        if not _NAME_RE.match(name):
            raise RegistryError(f"invalid model spec {spec!r}")
        versions = self._versions(name)
        if not versions:
            raise RegistryError(f"no model named {name!r} in {self.root}")
        if version_part in ("", "latest"):
            return self._entry(name, versions[-1])
        try:
            version = int(version_part.lstrip("v"))
        except ValueError:
            raise RegistryError(
                f"invalid version {version_part!r} in spec {spec!r}"
            ) from None
        if version not in versions:
            raise RegistryError(
                f"{name}@{version} is not published (have "
                f"{', '.join(map(str, versions))})"
            )
        return self._entry(name, version)

    def _resolve_fingerprint(self, prefix: str) -> RegistryEntry:
        prefix = prefix.lower()
        if len(prefix) < 6:
            raise RegistryError(
                f"fingerprint prefix {prefix!r} too short (use >= 6 hex "
                f"digits)"
            )
        matches = [
            e for e in self.list_entries()
            if e.fingerprint.startswith(prefix)
        ]
        if not matches:
            raise RegistryError(f"no published model matches fp:{prefix}")
        distinct = {e.fingerprint for e in matches}
        if len(distinct) > 1:
            raise RegistryError(
                f"fp:{prefix} is ambiguous ({len(distinct)} distinct "
                f"models); use a longer prefix"
            )
        # Identical content published under several names/versions:
        # any entry serves; pick the newest deterministically.
        return max(matches, key=lambda e: (e.name, e.version))

    # -- loading --------------------------------------------------------------

    def load(self, spec: str) -> Tuple[EddieModel, RegistryEntry]:
        """Resolve and deserialize a model, via the shared LRU.

        A hit returns the *same* :class:`EddieModel` instance earlier
        sessions got -- model state is immutable during monitoring, and
        sharing it is what keeps per-session memory at just the stream
        state. A miss deserializes, verifies the content fingerprint
        against the sidecar, and caches.
        """
        entry = self.resolve(spec)
        with self._lock:
            model = self._lru.get(entry.fingerprint)
            if model is not None:
                self._lru.move_to_end(entry.fingerprint)
                self.cache_hits += 1
                if OBS.enabled:
                    record_count("repro.serve.registry", "lru_hits")
                return model, entry
            self.cache_misses += 1
        if OBS.enabled:
            record_count("repro.serve.registry", "lru_misses")
        if not entry.fingerprint:
            # Publish always records the fingerprint atomically, so an
            # entry without one means the sidecar was lost or torn --
            # refuse rather than serve an unverifiable artifact.
            raise RegistryError(
                f"{entry.spec}: no recorded content fingerprint (missing "
                f"or corrupt sidecar); republish the model",
                code="model_corrupt",
            )
        try:
            model = load_model(entry.path)
        except FileNotFoundError:
            raise RegistryError(
                f"{entry.spec}: artifact file is missing"
            ) from None
        except Exception as error:
            raise RegistryError(
                f"{entry.spec}: failed to load ({error})",
                code="model_corrupt",
            ) from error
        if model_fingerprint(model) != entry.fingerprint:
            raise RegistryError(
                f"{entry.spec}: content fingerprint mismatch (corrupted "
                f"or mislabeled artifact)",
                code="model_corrupt",
            )
        if self.cache_size:
            with self._lock:
                self._lru[entry.fingerprint] = model
                self._lru.move_to_end(entry.fingerprint)
                while len(self._lru) > self.cache_size:
                    self._lru.popitem(last=False)
        return model, entry

    @property
    def cached_fingerprints(self) -> List[str]:
        with self._lock:
            return list(self._lru)
