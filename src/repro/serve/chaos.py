"""Deterministic network-fault injection for serving resilience tests.

:class:`ChaosProxy` is an in-process TCP proxy that sits between an
:class:`~repro.serve.client.EddieClient` and an
:class:`~repro.serve.server.EddieServer` and misbehaves on purpose:

- **resets** -- the connection is torn down with RST (``SO_LINGER`` 0),
  the failure a crashed middlebox or NAT timeout produces;
- **truncations** -- half of a buffered read is forwarded, then RST, so
  the victim sees a mid-frame EOF;
- **stalls** -- forwarding halts for ``stall_seconds`` and then the
  connection is reset: the half-open black hole that exercises I/O
  deadlines;
- **delays** -- a latency spike of ``delay_seconds`` before forwarding.

Faults are rolled per forwarded buffer from a ``random.Random`` seeded
by ``(seed, connection index, direction)`` -- string seeding hashes via
SHA-512, so a given seed reproduces the same fault schedule on any
platform or process. The first ``grace_bytes`` of each direction are
always forwarded faithfully, which lets handshakes succeed so faults
land mid-stream where they hurt. :meth:`ChaosProxy.kill_connections`
is the scripted counterpart: it resets every live connection at a
moment the test chooses.

The proxy is what ``tests/test_serve_resilience.py`` and the
``bench_serve.py`` recovery benchmark drive their kill/resume scenarios
with (DESIGN.md D19): a replay through a misbehaving proxy must produce
bit-identical results to a local run, with zero windows lost or scored
twice.
"""

from __future__ import annotations

import contextlib
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ServeError

__all__ = ["ChaosConfig", "ChaosProxy", "ChaosStats"]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault mix for one :class:`ChaosProxy`.

    Rates are per forwarded buffer (after ``grace_bytes``) and must sum
    to at most 1; the remainder is faithful forwarding.
    """

    reset_rate: float = 0.0
    truncate_rate: float = 0.0
    stall_rate: float = 0.0
    delay_rate: float = 0.0
    stall_seconds: float = 0.25
    delay_seconds: float = 0.005
    grace_bytes: int = 65536
    buffer_bytes: int = 16384

    def __post_init__(self) -> None:
        rates = (
            self.reset_rate, self.truncate_rate,
            self.stall_rate, self.delay_rate,
        )
        if any(rate < 0 for rate in rates):
            raise ServeError("chaos fault rates must be >= 0")
        if sum(rates) > 1.0:
            raise ServeError(
                f"chaos fault rates sum to {sum(rates):.3f} > 1"
            )
        if self.buffer_bytes < 1:
            raise ServeError("buffer_bytes must be >= 1")


@dataclass
class ChaosStats:
    """What the proxy actually did (thread-incremented, advisory)."""

    connections: int = 0
    resets: int = 0
    truncations: int = 0
    stalls: int = 0
    delays: int = 0
    kills: int = 0
    bytes_forwarded: int = 0


class ChaosProxy:
    """A misbehaving TCP proxy in front of an upstream server."""

    def __init__(
        self,
        upstream: Tuple[str, int],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ChaosConfig] = None,
        seed: int = 0,
    ) -> None:
        self.upstream = (upstream[0], int(upstream[1]))
        self.config = config or ChaosConfig()
        self.seed = int(seed)
        self.stats = ChaosStats()
        self._host = host
        self._port = int(port)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._conn_index = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ChaosProxy":
        if self._listener is not None:
            raise ServeError("chaos proxy is already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(16)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """Where clients should connect instead of the real server."""
        if self._listener is None:
            raise ServeError("chaos proxy is not started")
        return self._listener.getsockname()[:2]

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
            self._listener = None
        self.kill_connections()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- scripted faults ------------------------------------------------------

    def kill_connections(self) -> int:
        """Reset every live proxied connection; returns how many."""
        with self._lock:
            pairs = list(self._pairs)
            self._pairs.clear()
        for pair in pairs:
            self.stats.kills += 1
            self._destroy(pair)
        return len(pairs)

    # -- plumbing -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            try:
                server = socket.create_connection(self.upstream, timeout=5)
            except OSError:
                with contextlib.suppress(OSError):
                    client.close()
                continue
            for sock in (client, server):
                with contextlib.suppress(OSError):
                    sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
            pair = (client, server)
            with self._lock:
                self._conn_index += 1
                index = self._conn_index
                self._pairs.append(pair)
            self.stats.connections += 1
            for src, dst, direction in (
                (client, server, "up"), (server, client, "down")
            ):
                threading.Thread(
                    target=self._pump,
                    args=(pair, src, dst, f"{index}|{direction}"),
                    name=f"chaos-pump-{index}-{direction}",
                    daemon=True,
                ).start()

    def _pump(
        self,
        pair: Tuple[socket.socket, socket.socket],
        src: socket.socket,
        dst: socket.socket,
        tag: str,
    ) -> None:
        cfg = self.config
        rng = random.Random(f"{self.seed}|{tag}")
        forwarded = 0
        try:
            while True:
                data = src.recv(cfg.buffer_bytes)
                if not data:
                    # Clean half-close: propagate EOF, keep the other
                    # direction flowing.
                    with contextlib.suppress(OSError):
                        dst.shutdown(socket.SHUT_WR)
                    return
                if forwarded >= cfg.grace_bytes:
                    action = self._roll(rng)
                    if action == "reset":
                        self.stats.resets += 1
                        self._remove_and_destroy(pair)
                        return
                    if action == "truncate":
                        self.stats.truncations += 1
                        with contextlib.suppress(OSError):
                            dst.sendall(data[: max(1, len(data) // 2)])
                        self._remove_and_destroy(pair)
                        return
                    if action == "stall":
                        self.stats.stalls += 1
                        time.sleep(cfg.stall_seconds)
                        self._remove_and_destroy(pair)
                        return
                    if action == "delay":
                        self.stats.delays += 1
                        time.sleep(cfg.delay_seconds)
                dst.sendall(data)
                forwarded += len(data)
                self.stats.bytes_forwarded += len(data)
        except OSError:
            self._remove_and_destroy(pair)

    def _roll(self, rng: random.Random) -> Optional[str]:
        cfg = self.config
        roll = rng.random()
        edge = 0.0
        for rate, action in (
            (cfg.reset_rate, "reset"),
            (cfg.truncate_rate, "truncate"),
            (cfg.stall_rate, "stall"),
            (cfg.delay_rate, "delay"),
        ):
            edge += rate
            if roll < edge:
                return action
        return None

    def _remove_and_destroy(
        self, pair: Tuple[socket.socket, socket.socket]
    ) -> None:
        with self._lock:
            if pair in self._pairs:
                self._pairs.remove(pair)
        self._destroy(pair)

    @staticmethod
    def _destroy(pair: Tuple[socket.socket, socket.socket]) -> None:
        for sock in pair:
            with contextlib.suppress(OSError):
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            with contextlib.suppress(OSError):
                sock.close()
