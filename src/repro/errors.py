"""Exception hierarchy shared across the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AnalysisError(ReproError):
    """A static analysis (CFG, dominators, loops, regions) failed.

    Typically the input program violates a structural assumption, e.g. the
    entry block is unreachable or a loop is irreducible.
    """


class SimulationError(ReproError):
    """The architectural simulator could not execute the program."""


class SignalError(ReproError):
    """A signal-processing step received malformed input."""


class TrainingError(ReproError):
    """EDDIE training could not build a usable model."""


class MonitoringError(ReproError):
    """EDDIE monitoring was invoked with an unusable model or trace."""
