"""Exception hierarchy shared across the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AnalysisError(ReproError):
    """A static analysis (CFG, dominators, loops, regions) failed.

    Typically the input program violates a structural assumption, e.g. the
    entry block is unreachable or a loop is irreducible.
    """


class SimulationError(ReproError):
    """The architectural simulator could not execute the program."""


class SignalError(ReproError):
    """A signal-processing step received malformed input."""


class TrainingError(ReproError):
    """EDDIE training could not build a usable model."""


class MonitoringError(ReproError):
    """EDDIE monitoring was invoked with an unusable model or trace."""


class ServeError(ReproError):
    """A serving-layer failure (protocol, registry, or remote session).

    Carries a machine-readable ``code`` so clients can react to the
    server's typed ERROR frames (e.g. ``'at_capacity'`` for load
    shedding) without parsing the human-readable message.
    """

    def __init__(self, message: str, *, code: str = "internal") -> None:
        super().__init__(message)
        self.code = code


class ServeTimeoutError(ServeError):
    """A serving-layer I/O deadline expired (connect or per-operation).

    Raised instead of a raw ``socket.timeout`` so callers can
    distinguish "the server is slow or gone" from a protocol violation
    and react (back off, reconnect) without catching OS-level types.
    """

    def __init__(self, message: str, *, code: str = "timeout") -> None:
        super().__init__(message, code=code)


class ProtocolError(ServeError):
    """A malformed, truncated, or out-of-order wire frame."""

    def __init__(self, message: str, *, code: str = "bad_frame") -> None:
        super().__init__(message, code=code)


class RegistryError(ServeError):
    """A model-registry lookup or publish failed."""

    def __init__(self, message: str, *, code: str = "unknown_model") -> None:
        super().__init__(message, code=code)
