"""One-call EM monitoring scenario: program -> core -> channel -> receiver.

:class:`EmScenario` is the synthetic counterpart of the paper's real-IoT
setup (Section 5.1): the program runs on the core model, its power waveform
amplitude-modulates the clock carrier, the emission crosses the near-field
channel, and the receiver captures IQ samples -- together with the
ground-truth timeline the training instrumentation would record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.simulator import SimulationResult, Simulator
from repro.em.channel import ChannelModel
from repro.em.faults import FaultInjector
from repro.em.modulation import am_modulate
from repro.em.receiver import Receiver
from repro.obs import span
from repro.types import FaultSpan, RegionTimeline, Signal

__all__ = ["EmTrace", "EmScenario"]


@dataclass
class EmTrace:
    """One captured EM monitoring trace with its ground truth.

    ``fault_spans`` is the acquisition-fault ground truth emitted by the
    scenario's :class:`~repro.em.faults.FaultInjector` (empty for clean
    captures): which stretches of the IQ stream were corrupted by the
    front end rather than produced by the program.
    """

    iq: Signal
    timeline: RegionTimeline
    injected_spans: List[Tuple[float, float]]
    instr_count: int
    injected_instr_count: int
    inputs: Dict[str, float]
    fault_spans: List[FaultSpan] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.iq.duration

    def contains_injection(self, start: float, end: float) -> bool:
        """Whether [start, end) overlaps any injected span."""
        return any(s < end and start < e for s, e in self.injected_spans)

    def contains_fault(self, start: float, end: float) -> bool:
        """Whether [start, end) overlaps any acquisition-fault span."""
        return any(f.overlaps(start, end) for f in self.fault_spans)

    def iter_chunks(self, chunk_samples: int):
        """Yield the captured IQ as consecutive :class:`Signal` chunks.

        The streaming-ingestion view of a capture -- what a live receiver
        delivering ``chunk_samples`` at a time would hand a
        :class:`~repro.stream.StreamingMonitor`.
        """
        return self.iq.iter_chunks(chunk_samples)


@dataclass
class EmScenario:
    """A reusable program-on-device EM capture setup.

    The underlying :class:`~repro.arch.simulator.Simulator` is exposed as
    ``.simulator`` so injections can be configured exactly as for power
    traces.
    """

    simulator: Simulator
    channel: ChannelModel = field(default_factory=ChannelModel)
    receiver: Receiver = field(default_factory=Receiver)
    mod_depth: float = 0.5
    carrier_offset_hz: float = 0.0
    faults: Optional[FaultInjector] = None

    @classmethod
    def build(
        cls,
        program,
        core: Optional[CoreConfig] = None,
        channel: Optional[ChannelModel] = None,
        receiver: Optional[Receiver] = None,
        mod_depth: float = 0.5,
        carrier_offset_hz: float = 0.0,
        faults: Optional[FaultInjector] = None,
    ) -> "EmScenario":
        """Construct a scenario from a program and a core config."""
        core = core or CoreConfig.iot_inorder()
        return cls(
            simulator=Simulator(program, core),
            channel=channel or ChannelModel(),
            receiver=receiver or Receiver(),
            mod_depth=mod_depth,
            carrier_offset_hz=carrier_offset_hz,
            faults=faults,
        )

    @property
    def machine(self):
        """The program's region-level state machine."""
        return self.simulator.machine

    def capture(
        self,
        seed: Optional[int] = None,
        inputs: Optional[Mapping[str, float]] = None,
    ) -> EmTrace:
        """Run the program once and capture its EM emanations."""
        rng = np.random.default_rng(seed)
        with span("em.capture"):
            result: SimulationResult = self.simulator.run(rng=rng, inputs=inputs)
            emission = am_modulate(
                result.power,
                mod_depth=self.mod_depth,
                carrier_offset_hz=self.carrier_offset_hz,
            )
            received = self.channel.apply(emission, rng)
            iq = self.receiver.capture(received)
            fault_spans: List[FaultSpan] = []
            if self.faults is not None:
                iq, fault_spans = self.faults.inject(iq, rng=rng)
        return EmTrace(
            iq=iq,
            timeline=result.timeline,
            injected_spans=result.injected_spans,
            instr_count=result.instr_count,
            injected_instr_count=result.injected_instr_count,
            inputs=result.inputs,
            fault_spans=fault_spans,
        )

    def capture_chunks(
        self,
        chunk_samples: int,
        seed: Optional[int] = None,
        inputs: Optional[Mapping[str, float]] = None,
    ):
        """Capture one run and yield its IQ in ``chunk_samples`` pieces.

        The source feed for streaming sessions: pass the iterator as a
        :meth:`~repro.stream.FleetScheduler.add_session` ``source`` to
        replay a device's capture chunk by chunk.
        """
        return self.capture(seed=seed, inputs=inputs).iter_chunks(chunk_samples)
