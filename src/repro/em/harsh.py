"""Harsh RF environments: the scenario matrix the SVD front end targets.

The paper's captures happen centimeters from the die in a quiet lab, so
its channel needs little more than mild AWGN. Fielded deployments are
uglier -- *Detecting Code Injections in Noisy Environments Through EM
Signal Analysis and SVD Denoising* (arXiv 2212.05643) names the three
regimes this module models:

- **strong narrowband interferers** (broadcast stations, neighboring
  clocks) landing inside the monitored band at amplitudes comparable to
  the emission itself,
- **a co-located second emitting device** whose own loop structure puts
  quasi-periodic sidebands into the band -- interference that *looks*
  like program activity, the worst case for a peak tracker,
- **low-SNR distance sweeps**: backing the probe off the die collapses
  the near-field coupling, burying the sidebands in receiver noise.

:func:`harsh_matrix` enumerates named points across all three;
``benchmarks/bench_denoise.py`` runs EDDIE over each point ungated,
FIR-gated, and SVD-denoised and records who still detects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.em.channel import ChannelModel, Interferer
from repro.errors import SignalError
from repro.types import Signal

__all__ = [
    "CoEmitter",
    "HarshChannel",
    "HarshPoint",
    "low_snr_sweep",
    "distance_sweep",
    "interferer_bank",
    "co_device_points",
    "harsh_matrix",
]


@dataclass(frozen=True)
class CoEmitter:
    """A co-located second device emitting its own loop-structured field.

    Modeled exactly like the monitored device's emission (DESIGN.md D2):
    a carrier at ``carrier_offset_hz`` amplitude-modulated by a
    quasi-periodic activity envelope -- ``harmonics`` cosine lines at
    multiples of ``loop_hz`` with ``1/k`` rolloff, random phases per
    capture. Unlike a CW :class:`~repro.em.channel.Interferer`, its
    sidebands move and cluster the way real program peaks do.

    Attributes:
        loop_hz: the other device's loop repetition frequency.
        amplitude: carrier amplitude at the victim's antenna (the
            monitored emission's carrier is 1.0 by construction).
        carrier_offset_hz: where the other clock lands in baseband.
        harmonics: number of sideband pairs.
        mod_depth: envelope swing of the other device's activity.
    """

    loop_hz: float
    amplitude: float = 0.5
    carrier_offset_hz: float = 0.0
    harmonics: int = 3
    mod_depth: float = 0.8

    def __post_init__(self) -> None:
        if self.loop_hz <= 0:
            raise SignalError(f"loop_hz must be positive, got {self.loop_hz}")
        if self.amplitude < 0:
            raise SignalError(
                f"amplitude must be >= 0, got {self.amplitude}"
            )
        if self.harmonics < 1:
            raise SignalError(
                f"harmonics must be >= 1, got {self.harmonics}"
            )
        if not 0 < self.mod_depth <= 1:
            raise SignalError(
                f"mod_depth must be in (0, 1], got {self.mod_depth}"
            )

    def waveform(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """The emitter's complex baseband field over timestamps ``t``."""
        carrier_phase = rng.uniform(0, 2 * np.pi)
        envelope = np.ones(len(t))
        for k in range(1, self.harmonics + 1):
            phase = rng.uniform(0, 2 * np.pi)
            envelope += (self.mod_depth / k) * np.cos(
                2 * np.pi * k * self.loop_hz * t + phase
            )
        carrier = np.exp(
            2j * np.pi * self.carrier_offset_hz * t + 1j * carrier_phase
        )
        return self.amplitude * carrier * envelope


@dataclass(frozen=True)
class HarshChannel(ChannelModel):
    """:class:`~repro.em.channel.ChannelModel` plus co-located emitters.

    The base channel's semantics are unchanged -- ``snr_db`` still
    measures thermal noise against the *monitored* device's coupled
    power, so a co-emitter degrades the environment without silently
    redefining what "10 dB SNR" means. Co-emitter fields add after the
    base channel (gain, CW interferers, AWGN) has been applied.
    """

    co_emitters: Tuple[CoEmitter, ...] = ()

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        received = super().apply(signal, rng)
        if not self.co_emitters:
            return received
        out = np.array(received.samples, dtype=complex)
        t = received.t0 + np.arange(len(out)) / received.sample_rate
        for emitter in self.co_emitters:
            out += emitter.waveform(t, rng)
        return Signal(out, received.sample_rate, received.t0)


@dataclass(frozen=True)
class HarshPoint:
    """One named cell of the harsh-environment scenario matrix."""

    name: str
    channel: HarshChannel
    #: regime label: ``'low_snr'``, ``'interferer'``, or ``'co_device'``.
    regime: str = "low_snr"
    #: monotone badness within the regime (sorting/severity key only).
    severity: float = 0.0


def low_snr_sweep(
    snr_dbs: Sequence[float] = (15.0, 10.0, 6.0, 3.0, 0.0),
) -> Tuple[HarshPoint, ...]:
    """Points of decreasing receiver-input SNR (fixed geometry)."""
    return tuple(
        HarshPoint(
            name=f"snr_{snr:g}dB",
            channel=HarshChannel(snr_db=float(snr)),
            regime="low_snr",
            severity=-float(snr),
        )
        for snr in snr_dbs
    )


def distance_sweep(
    distances_mm: Sequence[float] = (5.0, 10.0, 20.0, 40.0),
    *,
    ref_mm: float = 5.0,
    snr_at_ref_db: float = 25.0,
    rolloff_db_per_decade: float = 30.0,
) -> Tuple[HarshPoint, ...]:
    """Back the probe off the die: coupling and SNR fall together.

    Near-field coupling rolls off steeply with distance; the default 30
    dB/decade sits between the far-field 20 and the magnetostatic 60,
    which keeps a 3-octave sweep inside the range where detection
    plausibly transitions rather than cliff-dropping at the second
    point. Both the coupling gain and the SNR follow the rolloff, so the
    absolute signal level *and* its margin over the noise shrink.
    """
    points = []
    for d in distances_mm:
        if d <= 0:
            raise SignalError(f"distance must be positive, got {d}")
        decades = math.log10(d / ref_mm)
        snr = snr_at_ref_db - rolloff_db_per_decade * decades
        gain = 10.0 ** (-rolloff_db_per_decade * decades / 20.0)
        points.append(
            HarshPoint(
                name=f"dist_{d:g}mm",
                channel=HarshChannel(coupling_gain=gain, snr_db=snr),
                regime="low_snr",
                severity=float(d),
            )
        )
    return tuple(points)


def interferer_bank(
    sample_rate: float,
    amplitudes: Sequence[float] = (1.0, 2.0),
    *,
    snr_db: float = 8.0,
    freq_fractions: Sequence[float] = (0.30, 0.37, 0.44),
) -> Tuple[HarshPoint, ...]:
    """Strong CW interferers plus degraded SNR (one point per amplitude).

    ``freq_fractions`` place the tones as fractions of the sample rate
    (inside the sampled band but above the loop-sideband region, so a
    band-limiting gate *can* excise them while a peak tracker without one
    gets its top peaks displaced). The paper's own channel tolerates
    ~0.08-amplitude tones; "strong" here means tones comparable to or
    exceeding the unit-amplitude emission carrier, and the default 8 dB
    SNR makes the point hostile on both axes at once.
    """
    if sample_rate <= 0:
        raise SignalError(
            f"sample_rate must be positive, got {sample_rate}"
        )
    points = []
    for amp in amplitudes:
        tones = tuple(
            Interferer(freq_hz=frac * sample_rate, amplitude=float(amp))
            for frac in freq_fractions
        )
        points.append(
            HarshPoint(
                name=f"interf_{amp:g}x",
                channel=HarshChannel(snr_db=snr_db, interferers=tones),
                regime="interferer",
                severity=float(amp),
            )
        )
    return tuple(points)


def co_device_points(
    sample_rate: float,
    amplitudes: Sequence[float] = (0.6, 1.0),
    *,
    snr_db: float = 20.0,
    loop_fraction: float = 0.013,
    carrier_fraction: float = 0.29,
) -> Tuple[HarshPoint, ...]:
    """A second emitting device sharing the bench (one point per level).

    The co-device's loop frequency defaults to ~1.3% of the sample rate
    -- the same order as the monitored programs' loop sidebands -- and
    its clock lands well inside the band, so its harmonics interleave
    with the peaks EDDIE tracks.
    """
    if sample_rate <= 0:
        raise SignalError(
            f"sample_rate must be positive, got {sample_rate}"
        )
    points = []
    for amp in amplitudes:
        emitter = CoEmitter(
            loop_hz=loop_fraction * sample_rate,
            amplitude=float(amp),
            carrier_offset_hz=carrier_fraction * sample_rate,
        )
        points.append(
            HarshPoint(
                name=f"codev_{amp:g}x",
                channel=HarshChannel(snr_db=snr_db, co_emitters=(emitter,)),
                regime="co_device",
                severity=float(amp),
            )
        )
    return tuple(points)


def harsh_matrix(
    sample_rate: float,
    *,
    snr_dbs: Sequence[float] = (10.0, 6.0, 3.0, 0.0, -3.0),
    interferer_amplitudes: Sequence[float] = (1.0, 2.0),
    co_device_amplitudes: Sequence[float] = (0.6, 1.0),
) -> Tuple[HarshPoint, ...]:
    """The full named scenario matrix across all three harsh regimes.

    The default grid is chosen so each preprocessing tier has a regime
    where it is decisive: band-gating recovers the interferer and
    co-device points (tone/carrier excision) and the moderate-SNR
    points, while the 0 and -3 dB tail additionally needs the SVD
    subspace projection (``benchmarks/bench_denoise.py``).
    """
    return (
        low_snr_sweep(snr_dbs)
        + interferer_bank(sample_rate, interferer_amplitudes)
        + co_device_points(sample_rate, co_device_amplitudes)
    )
