"""AM modulation of the clock carrier by processor activity.

Physically, switching activity draws current whose magnitude follows the
power waveform ``p(t)``; the resulting field near the clock frequency is
``(A + m * p(t)) * cos(2 pi f_clock t)``. Mixed down to complex baseband
(the receiver's view after tuning to the clock), this is simply
``(A + m * p~(t)) * exp(2 pi j f_off t)``, where ``f_off`` is the small
residual offset between the transmitter clock and the receiver's tuner,
and ``p~`` is the normalized activity waveform.

Generating directly at baseband avoids simulating a GHz passband waveform
(DESIGN.md decision D2); the spectrum around the carrier -- the only thing
EDDIE looks at -- is identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.types import Signal

__all__ = ["am_modulate", "normalize_activity"]


def normalize_activity(power: np.ndarray) -> np.ndarray:
    """Scale a power waveform to zero mean and (robust) unit magnitude.

    Scaling by the raw maximum would let rare spikes (cache-miss refills,
    syscalls) squeeze the ordinary loop activity -- and with it the
    sidebands EDDIE depends on -- down toward the noise floor. Instead the
    waveform is scaled by the 99th percentile of its magnitude and clipped
    to [-1, 1], which keeps typical loop modulation near full depth
    regardless of outliers. Normalization affects only amplitudes; the
    peak *frequencies* EDDIE tests are untouched.
    """
    centered = power - power.mean()
    scale = float(np.percentile(np.abs(centered), 99.0))
    if scale == 0:
        return np.zeros_like(centered)
    return np.clip(centered / scale, -1.0, 1.0)


def am_modulate(
    power: Signal,
    carrier_amp: float = 1.0,
    mod_depth: float = 0.5,
    carrier_offset_hz: float = 0.0,
) -> Signal:
    """Amplitude-modulate the clock carrier with a power waveform.

    Args:
        power: the sampled processor power trace (real-valued).
        carrier_amp: amplitude of the unmodulated carrier.
        mod_depth: modulation index (0..1]; the activity contributes at
            most ``mod_depth * carrier_amp`` of envelope swing.
        carrier_offset_hz: residual tuning offset of the receiver; places
            the carrier line at this baseband frequency (useful to keep the
            carrier visibly distinct from DC, as in the paper's Figure 1).

    Returns:
        A complex baseband :class:`Signal` at the same sample rate.
    """
    if not 0.0 < mod_depth <= 1.0:
        raise SignalError(f"mod_depth must be in (0, 1], got {mod_depth}")
    if carrier_amp <= 0:
        raise SignalError(f"carrier_amp must be positive, got {carrier_amp}")
    if np.iscomplexobj(power.samples):
        raise SignalError("power waveform must be real-valued")

    activity = normalize_activity(np.asarray(power.samples, dtype=float))
    envelope = carrier_amp * (1.0 + mod_depth * activity)
    if carrier_offset_hz:
        t = np.arange(len(envelope)) / power.sample_rate
        carrier = np.exp(2j * np.pi * carrier_offset_hz * t)
        samples = envelope * carrier
    else:
        samples = envelope.astype(complex)
    return Signal(samples, power.sample_rate, power.t0)
