"""EM emanation substrate: what the paper's antenna + oscilloscope measured.

The paper's physical observation (Section 2) is that processor activity
amplitude-modulates periodic signals -- above all the clock -- so a loop
with per-iteration period T puts sidebands at ``f_clock +/- 1/T`` into the
radiated spectrum (their Figure 1). Since we have no SDR hardware, this
package synthesizes the equivalent received signal:

- :mod:`repro.em.modulation` -- AM modulation of the clock carrier by the
  simulated power waveform, generated directly at complex baseband
  (DESIGN.md D2),
- :mod:`repro.em.channel` -- AWGN, narrowband interferers, and antenna
  coupling loss,
- :mod:`repro.em.harsh` -- the harsh-environment scenario matrix (strong
  interferers, co-located emitters, low-SNR distance sweeps) exercised
  by the SVD denoising front end (DESIGN.md D22),
- :mod:`repro.em.receiver` -- an SDR-like front end (gain, band-limiting,
  decimation),
- :mod:`repro.em.faults` -- acquisition fault injection (overflow gaps,
  saturation bursts, AGC gain steps, impulsive interference, dead
  channels) with ground-truth fault logs,
- :mod:`repro.em.scenario` -- one-call pipeline: run a program on a core,
  emanate, propagate, receive.
"""

from repro.em.channel import ChannelModel
from repro.em.harsh import (
    CoEmitter,
    HarshChannel,
    HarshPoint,
    co_device_points,
    distance_sweep,
    harsh_matrix,
    interferer_bank,
    low_snr_sweep,
)
from repro.em.faults import (
    DeadChannelFault,
    FaultInjector,
    GainStepFault,
    ImpulseNoiseFault,
    SampleDropFault,
    SaturationFault,
    standard_fault_mix,
)
from repro.em.modulation import am_modulate
from repro.em.receiver import OverflowCounter, Receiver, saturate
from repro.em.scenario import EmScenario, EmTrace

__all__ = [
    "am_modulate",
    "ChannelModel",
    "HarshChannel",
    "CoEmitter",
    "HarshPoint",
    "low_snr_sweep",
    "distance_sweep",
    "interferer_bank",
    "co_device_points",
    "harsh_matrix",
    "Receiver",
    "OverflowCounter",
    "saturate",
    "EmScenario",
    "EmTrace",
    "FaultInjector",
    "SampleDropFault",
    "SaturationFault",
    "GainStepFault",
    "ImpulseNoiseFault",
    "DeadChannelFault",
    "standard_fault_mix",
]
