"""Acquisition fault injection (the robustness layer's ground truth side).

Real low-cost SDR capture fails in ways an ideal receiver never does:
USRP-style overflow gaps when the host can't drain the stream, ADC
saturation bursts when a nearby transmitter keys up, gain steps when the
AGC reacts, impulsive wideband interference, and dead stretches when the
front end drops out entirely. EDDIE's Section 5.1 low-cost-receiver claim
only survives deployment if the monitor degrades gracefully through these
events instead of reporting an anomaly at every hiccup.

This module corrupts captured :class:`~repro.types.Signal`\\ s with
scheduled or stochastic faults, and -- crucially -- emits a ground-truth
:class:`~repro.types.FaultSpan` log for every corrupted stretch, so
benchmarks can score fault-overlapping windows separately from clean ones
(see ``benchmarks/bench_fault_robustness.py``).

Saturation reuses :func:`repro.em.receiver.saturate` so an injected burst
clips exactly as an overdriven ADC does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.em.receiver import saturate
from repro.errors import SignalError
from repro.obs import OBS, record_count
from repro.types import FaultSpan, Signal

__all__ = [
    "AcquisitionFault",
    "SampleDropFault",
    "SaturationFault",
    "GainStepFault",
    "ImpulseNoiseFault",
    "DeadChannelFault",
    "FaultInjector",
    "standard_fault_mix",
]


def _poisson_spans(
    duration: float,
    rate_per_s: float,
    mean_duration_s: float,
    rng: np.random.Generator,
    min_duration_s: float = 0.0,
) -> List[Tuple[float, float]]:
    """Sample fault occurrences: Poisson arrivals, exponential lengths.

    Returned spans are relative to the start of the signal, clipped to
    ``[0, duration]``, merged when they overlap, and time-ordered.
    """
    if rate_per_s <= 0 or duration <= 0:
        return []
    n = int(rng.poisson(rate_per_s * duration))
    if n == 0:
        return []
    starts = np.sort(rng.uniform(0.0, duration, size=n))
    lengths = np.maximum(
        rng.exponential(mean_duration_s, size=n), min_duration_s
    )
    spans: List[Tuple[float, float]] = []
    for start, length in zip(starts, lengths):
        end = min(duration, start + length)
        if end <= start:
            continue
        if spans and start <= spans[-1][1]:
            spans[-1] = (spans[-1][0], max(spans[-1][1], end))
        else:
            spans.append((start, end))
    return spans


@dataclass(frozen=True)
class AcquisitionFault:
    """Base class: one fault type with a stochastic or fixed schedule.

    Attributes:
        rate_per_s: mean fault occurrences per second (Poisson arrivals).
        mean_duration_s: mean length of one fault event (exponential).
        schedule: explicit ``(t_start_rel, t_end_rel)`` spans relative to
            the signal start; when non-empty it replaces the stochastic
            schedule entirely (for deterministic tests and benches).
    """

    rate_per_s: float = 1.0
    mean_duration_s: float = 1e-4
    schedule: Tuple[Tuple[float, float], ...] = ()

    kind = "fault"

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise SignalError(f"rate_per_s must be >= 0, got {self.rate_per_s}")
        if self.mean_duration_s <= 0:
            raise SignalError(
                f"mean_duration_s must be positive, got {self.mean_duration_s}"
            )
        for start, end in self.schedule:
            if end < start:
                raise SignalError(
                    f"scheduled span ({start}, {end}) ends before it starts"
                )

    def spans_for(
        self, signal: Signal, rng: np.random.Generator
    ) -> List[Tuple[float, float]]:
        """Relative corrupted spans for this capture."""
        if self.schedule:
            duration = signal.duration
            return [
                (max(0.0, s), min(duration, e))
                for s, e in self.schedule
                if s < duration and e > 0.0
            ]
        return _poisson_spans(
            signal.duration, self.rate_per_s, self.mean_duration_s, rng
        )

    def apply(
        self, signal: Signal, rng: np.random.Generator
    ) -> Tuple[Signal, List[FaultSpan]]:
        """Corrupt ``signal``; return the new signal and the fault log."""
        spans = self.spans_for(signal, rng)
        if not spans:
            return signal, []
        samples = np.array(signal.samples, copy=True)
        rate = signal.sample_rate
        logged: List[FaultSpan] = []
        for start, end in spans:
            i0 = max(0, int(round(start * rate)))
            i1 = min(len(samples), int(round(end * rate)))
            if i1 <= i0:
                continue
            magnitude = self._corrupt(samples, i0, i1, rng)
            logged.append(
                FaultSpan(
                    kind=self.kind,
                    t_start=signal.t0 + i0 / rate,
                    t_end=signal.t0 + i1 / rate,
                    magnitude=magnitude,
                )
            )
        return Signal(samples, rate, signal.t0), logged

    # Subclasses corrupt samples[i0:i1] in place and return the magnitude.
    def _corrupt(
        self, samples: np.ndarray, i0: int, i1: int, rng: np.random.Generator
    ) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class SampleDropFault(AcquisitionFault):
    """USRP-style overflow: the host misses a stretch of the stream.

    ``fill='zero'`` (the default) models a driver that zero-fills the gap
    to keep timestamps aligned -- the gap is visible as a run of exact
    zeros. ``fill='hold'`` repeats the last good sample (some cheap
    front ends latch), which is harder to see but still kills the
    spectrum. Either way the span is logged with a timestamp
    discontinuity marker in ``magnitude`` (the number of lost samples).
    """

    fill: str = "zero"
    kind = "drop"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fill not in ("zero", "hold"):
            raise SignalError(f"unknown fill mode {self.fill!r}")

    def _corrupt(self, samples, i0, i1, rng):
        if self.fill == "zero":
            samples[i0:i1] = 0
        else:
            samples[i0:i1] = samples[i0 - 1] if i0 > 0 else 0
        return float(i1 - i0)


@dataclass(frozen=True)
class SaturationFault(AcquisitionFault):
    """ADC saturation burst: a strong in-band transient rails the ADC.

    The affected stretch is overdriven by ``drive`` and clipped at
    ``full_scale`` through the receiver's own saturation model, producing
    the same flat-topped samples an overloaded front end records.
    """

    drive: float = 20.0
    full_scale: float = 4.0
    kind = "saturation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.drive <= 1.0:
            raise SignalError(f"drive must exceed 1, got {self.drive}")
        if self.full_scale <= 0:
            raise SignalError(
                f"full_scale must be positive, got {self.full_scale}"
            )

    def _corrupt(self, samples, i0, i1, rng):
        clipped, _ = saturate(samples[i0:i1] * self.drive, self.full_scale)
        samples[i0:i1] = clipped
        return self.drive


@dataclass(frozen=True)
class GainStepFault(AcquisitionFault):
    """AGC gain step: the front-end gain jumps, then settles back.

    During the span the signal is scaled by a factor drawn uniformly from
    ``+/- step_db`` (in dB, never exactly 0 dB); afterwards the AGC has
    recovered. The K-S statistics see every spectral line's power move at
    once.
    """

    step_db: float = 12.0
    kind = "gain_step"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.step_db <= 0:
            raise SignalError(f"step_db must be positive, got {self.step_db}")

    def _corrupt(self, samples, i0, i1, rng):
        sign = 1.0 if rng.random() < 0.5 else -1.0
        db = sign * rng.uniform(0.25 * self.step_db, self.step_db)
        factor = 10.0 ** (db / 20.0)
        samples[i0:i1] = samples[i0:i1] * factor
        return factor


@dataclass(frozen=True)
class ImpulseNoiseFault(AcquisitionFault):
    """Impulsive wideband interference: a broadband burst rides on top.

    Adds white noise at ``amplitude`` times the signal's RMS over the
    span -- the motor-brush / ignition / switching-supply transient that
    Miller et al. identify as the dominant corruption in noisy
    deployments.
    """

    amplitude: float = 8.0
    mean_duration_s: float = 2e-5
    kind = "impulse"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.amplitude <= 0:
            raise SignalError(
                f"amplitude must be positive, got {self.amplitude}"
            )

    def _corrupt(self, samples, i0, i1, rng):
        rms = float(np.sqrt(np.mean(np.abs(samples) ** 2)))
        scale = self.amplitude * (rms if rms > 0 else 1.0)
        n = i1 - i0
        if np.iscomplexobj(samples):
            burst = scale * (
                rng.standard_normal(n) + 1j * rng.standard_normal(n)
            ) / np.sqrt(2.0)
        else:
            burst = scale * rng.standard_normal(n)
        samples[i0:i1] = samples[i0:i1] + burst
        return self.amplitude


@dataclass(frozen=True)
class DeadChannelFault(AcquisitionFault):
    """Dead channel: the front end drops out and records nothing.

    Unlike a drop gap (a short buffering hiccup) a dead stretch is long --
    an antenna cable wiggle, a USB renegotiation -- and the monitor must
    suspend rather than score through it.
    """

    rate_per_s: float = 0.2
    mean_duration_s: float = 2e-3
    kind = "dead"

    def _corrupt(self, samples, i0, i1, rng):
        samples[i0:i1] = 0
        return float(i1 - i0)


@dataclass(frozen=True)
class FaultInjector:
    """Composable pipeline of acquisition faults.

    Applies every fault in order to the captured signal and returns the
    merged, time-ordered ground-truth log. Deterministic under a fixed
    ``seed`` (or an explicitly passed RNG), so benches can replay the
    exact same fault pattern against gated and ungated monitors.
    """

    faults: Tuple[AcquisitionFault, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, AcquisitionFault):
                raise SignalError(
                    f"FaultInjector takes AcquisitionFault instances, got "
                    f"{type(f).__name__}"
                )

    def inject(
        self, signal: Signal, rng: Optional[np.random.Generator] = None
    ) -> Tuple[Signal, List[FaultSpan]]:
        """Corrupt one captured signal; returns (signal, fault log)."""
        if rng is None:
            rng = np.random.default_rng(self.seed)
        log: List[FaultSpan] = []
        for fault in self.faults:
            signal, spans = fault.apply(signal, rng)
            log.extend(spans)
        log.sort(key=lambda s: (s.t_start, s.t_end))
        if OBS.enabled and log:
            kinds: dict = {}
            for fault_span in log:
                kinds[fault_span.kind] = kinds.get(fault_span.kind, 0) + 1
            for kind, count in kinds.items():
                record_count("em.faults", f"spans.{kind}", count)
        return signal, log

    def __bool__(self) -> bool:
        return bool(self.faults)


def standard_fault_mix(
    drop_rate_per_s: float,
    clip_rate_per_s: float,
    mean_duration_s: float = 2e-4,
    seed: Optional[int] = None,
) -> FaultInjector:
    """The bench's canonical mix: sample-drop gaps plus saturation bursts."""
    faults: List[AcquisitionFault] = []
    if drop_rate_per_s > 0:
        faults.append(
            SampleDropFault(
                rate_per_s=drop_rate_per_s, mean_duration_s=mean_duration_s
            )
        )
    if clip_rate_per_s > 0:
        faults.append(
            SaturationFault(
                rate_per_s=clip_rate_per_s, mean_duration_s=mean_duration_s
            )
        )
    return FaultInjector(faults=tuple(faults), seed=seed)
