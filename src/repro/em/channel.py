"""Propagation channel: coupling loss, thermal noise, narrowband interference.

The paper's probe sits directly above the processor package, so the channel
is short-range near-field coupling: a flat gain, additive white Gaussian
noise from the receive chain, and the narrowband interferers (radio
stations, other clocks) that the authors call out as a source of STS
variation the statistics must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SignalError
from repro.types import Signal

__all__ = ["Interferer", "ChannelModel"]


@dataclass(frozen=True)
class Interferer:
    """One narrowband (CW) interferer at a fixed baseband frequency."""

    freq_hz: float
    amplitude: float

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise SignalError(f"interferer amplitude must be >= 0, got {self.amplitude}")


@dataclass(frozen=True)
class ChannelModel:
    """Near-field channel from the processor to the receiver input.

    Attributes:
        coupling_gain: flat amplitude gain of the antenna coupling.
        snr_db: signal-to-noise ratio at the receiver input, measured
            against the (post-coupling) signal power. ``None`` disables
            noise (the paper's simulator setup "has no signal noise").
        interferers: CW tones added to the received signal.
    """

    coupling_gain: float = 1.0
    snr_db: Optional[float] = 25.0
    interferers: Tuple[Interferer, ...] = ()

    def __post_init__(self) -> None:
        if self.coupling_gain <= 0:
            raise SignalError(f"coupling gain must be positive, got {self.coupling_gain}")

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        """Propagate ``signal`` through the channel."""
        samples = signal.samples * self.coupling_gain
        out = np.array(samples, dtype=complex)

        if self.interferers:
            t = signal.t0 + np.arange(len(out)) / signal.sample_rate
            for interferer in self.interferers:
                phase = rng.uniform(0, 2 * np.pi)
                out += interferer.amplitude * np.exp(
                    2j * np.pi * interferer.freq_hz * t + 1j * phase
                )

        if self.snr_db is not None:
            signal_power = float(np.mean(np.abs(samples) ** 2))
            noise_power = signal_power / (10.0 ** (self.snr_db / 10.0))
            # Complex AWGN: half the power in each quadrature.
            scale = np.sqrt(noise_power / 2.0)
            noise = rng.normal(0, scale, len(out)) + 1j * rng.normal(0, scale, len(out))
            out += noise

        return Signal(out, signal.sample_rate, signal.t0)

    @classmethod
    def noiseless(cls) -> "ChannelModel":
        """An ideal channel (used for simulator-power experiments)."""
        return cls(snr_db=None)
