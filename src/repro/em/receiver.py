"""SDR-like receiver front end.

Models the relevant behaviour of the paper's acquisition chain (Keysight
scope or USRP B200-mini): front-end gain, optional band-limiting around the
carrier with decimation, and quantization. The output is the IQ stream that
EDDIE's STFT consumes.

The saturation model lives in :func:`saturate` so the fault layer
(:mod:`repro.em.faults`) and the real front end clip identically: a
saturation burst injected by a fault produces the same flat-topped samples
an overdriven ADC would, and both report overflow counts the same way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import signal as sp_signal

from repro.errors import SignalError
from repro.obs import OBS, record_count
from repro.types import Signal

__all__ = ["Receiver", "OverflowCounter", "saturate"]


def saturate(values: np.ndarray, full_scale: float) -> Tuple[np.ndarray, int]:
    """Clip real or complex samples to ``[-full_scale, full_scale]``.

    For complex input, I and Q clip independently (as the two ADC chains
    do). Returns ``(clipped, n_overflow)`` where ``n_overflow`` counts the
    samples whose I or Q rail hit the rails -- the USRP-style overflow
    counter.
    """
    if full_scale <= 0:
        raise SignalError(f"full_scale must be positive, got {full_scale}")
    if np.iscomplexobj(values):
        over = (np.abs(values.real) > full_scale) | (
            np.abs(values.imag) > full_scale
        )
        clipped = (
            np.clip(values.real, -full_scale, full_scale)
            + 1j * np.clip(values.imag, -full_scale, full_scale)
        )
    else:
        over = np.abs(values) > full_scale
        clipped = np.clip(values, -full_scale, full_scale)
    return clipped, int(over.sum())


class OverflowCounter:
    """Mutable overflow tally a frozen :class:`Receiver` can report into."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, n: int) -> None:
        self.count += int(n)

    def reset(self) -> None:
        self.count = 0

    def __repr__(self) -> str:
        return f"OverflowCounter(count={self.count})"


@dataclass(frozen=True)
class Receiver:
    """Receiver front-end configuration.

    Attributes:
        gain: linear front-end gain.
        decimation: integer decimation factor; >1 band-limits the signal to
            the inner ``1/decimation`` of the band with an anti-alias FIR
            before downsampling. The FIR's group delay is compensated so
            the decimated stream stays aligned with the ground-truth
            timeline.
        adc_bits: quantizer resolution; ``None`` for ideal (float) capture.
        adc_full_scale: full-scale amplitude of the quantizer.
        agc: normalize the block RMS level toward the ADC's sweet spot
            (half full scale) before quantization, as a cheap SDR's
            automatic gain control does. Reduces saturation but introduces
            gain steps at block boundaries. *Deprecated:* use
            :class:`repro.dsp.AgcStage` on ``EddieConfig.frontend``
            instead -- the stage form runs on the shared preprocessing
            chain (streaming, checkpointable, fingerprinted into the
            model).
        agc_block: AGC adaptation block length in samples (deprecated
            with ``agc``).
        dc_offset: additive DC at the mixer output (cheap direct-conversion
            SDRs have a notorious DC spike).
        iq_imbalance_db: gain imbalance between the I and Q chains in dB;
            produces an image of every spectral component mirrored about
            the tuning frequency.
        lo_drift_hz_per_s: linear local-oscillator drift; slowly smears
            every spectral line over the capture.
        overflow_counter: optional :class:`OverflowCounter` hook; every
            capture adds the number of ADC-railed samples to it, like an
            SDR driver's "O" counter.

    The impairment defaults are zero (ideal capture, the Keysight-scope
    setting); nonzero values model the paper's <$800 USRP / <$100 custom
    receiver claim (Section 5.1), exercised by
    ``benchmarks/bench_receiver_robustness.py``.
    """

    gain: float = 1.0
    decimation: int = 1
    adc_bits: Optional[int] = None
    adc_full_scale: float = 4.0
    agc: bool = False
    agc_block: int = 4096
    dc_offset: complex = 0.0
    iq_imbalance_db: float = 0.0
    lo_drift_hz_per_s: float = 0.0
    overflow_counter: Optional[OverflowCounter] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise SignalError(f"gain must be positive, got {self.gain}")
        if self.decimation < 1:
            raise SignalError(f"decimation must be >= 1, got {self.decimation}")
        if self.adc_bits is not None and not 2 <= self.adc_bits <= 24:
            raise SignalError(f"adc_bits must be 2..24, got {self.adc_bits}")
        if self.adc_full_scale <= 0:
            raise SignalError(
                f"adc_full_scale must be positive, got {self.adc_full_scale}"
            )
        if self.agc_block < 2:
            raise SignalError(f"agc_block must be >= 2, got {self.agc_block}")
        if self.iq_imbalance_db < 0:
            raise SignalError("iq_imbalance_db must be >= 0")
        if self.agc:
            warnings.warn(
                "Receiver(agc=True) is deprecated; put an AgcStage on "
                "EddieConfig.frontend instead (repro.dsp.AgcStage with "
                "target=0.5*adc_full_scale and block_samples=agc_block "
                "reproduces it on the shared preprocessing chain)",
                DeprecationWarning,
                stacklevel=2,
            )

    def capture(self, signal: Signal) -> Signal:
        """Apply the front end to a received signal."""
        samples = signal.samples * self.gain
        rate = signal.sample_rate

        if self.lo_drift_hz_per_s and np.iscomplexobj(samples):
            t = signal.t0 + np.arange(len(samples)) / rate
            # Instantaneous offset f(t) = drift * t; phase = pi * drift * t^2.
            samples = samples * np.exp(1j * np.pi * self.lo_drift_hz_per_s * t**2)

        if self.iq_imbalance_db and np.iscomplexobj(samples):
            # Q-chain gain error epsilon: y = I + j*(1+eps)*Q, equivalently
            # a scaled image of the conjugate signal.
            epsilon = 10.0 ** (self.iq_imbalance_db / 20.0) - 1.0
            samples = samples + 1j * epsilon * samples.imag

        if self.dc_offset:
            samples = samples + self.dc_offset

        if self.decimation > 1:
            # Anti-alias low-pass at the post-decimation Nyquist. The
            # 65-tap linear-phase FIR delays the stream by (65-1)/2 = 32
            # samples; feed 32 trailing zeros through the filter and drop
            # the first 32 outputs so the IQ stream stays aligned with the
            # ground-truth timeline after decimation.
            cutoff = 0.8 / self.decimation  # fraction of input Nyquist
            taps = sp_signal.firwin(65, cutoff)
            delay = (len(taps) - 1) // 2
            padded = np.concatenate(
                [samples, np.zeros(delay, dtype=samples.dtype)]
            )
            samples = sp_signal.lfilter(taps, 1.0, padded)[delay:]
            samples = samples[:: self.decimation]
            rate = rate / self.decimation

        if self.agc:
            samples = self._apply_agc(samples)

        if self.adc_bits is not None:
            step = 2.0 * self.adc_full_scale / (1 << self.adc_bits)
            samples, n_over = saturate(samples, self.adc_full_scale)
            if self.overflow_counter is not None:
                self.overflow_counter.add(n_over)
            if OBS.enabled and n_over:
                record_count("em.receiver", "adc_overflows", n_over)
            samples = np.round(samples / step) * step

        if OBS.enabled:
            record_count("em.receiver", "captures")
        return Signal(samples, rate, signal.t0)

    def _apply_agc(self, samples: np.ndarray) -> np.ndarray:
        """Block AGC: scale each block's RMS toward half the ADC range."""
        target = 0.5 * self.adc_full_scale
        out = samples.copy()
        adjusted = 0
        for start in range(0, len(out), self.agc_block):
            block = out[start: start + self.agc_block]
            rms = float(np.sqrt(np.mean(np.abs(block) ** 2)))
            if rms > 0:
                out[start: start + self.agc_block] = block * (target / rms)
                adjusted += 1
        if OBS.enabled and adjusted:
            record_count("em.receiver", "agc_adjustments", adjusted)
        return out
