"""SDR-like receiver front end.

Models the relevant behaviour of the paper's acquisition chain (Keysight
scope or USRP B200-mini): front-end gain, optional band-limiting around the
carrier with decimation, and quantization. The output is the IQ stream that
EDDIE's STFT consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import signal as sp_signal

from repro.errors import SignalError
from repro.types import Signal

__all__ = ["Receiver"]


@dataclass(frozen=True)
class Receiver:
    """Receiver front-end configuration.

    Attributes:
        gain: linear front-end gain.
        decimation: integer decimation factor; >1 band-limits the signal to
            the inner ``1/decimation`` of the band with an anti-alias FIR
            before downsampling.
        adc_bits: quantizer resolution; ``None`` for ideal (float) capture.
        adc_full_scale: full-scale amplitude of the quantizer.
        dc_offset: additive DC at the mixer output (cheap direct-conversion
            SDRs have a notorious DC spike).
        iq_imbalance_db: gain imbalance between the I and Q chains in dB;
            produces an image of every spectral component mirrored about
            the tuning frequency.
        lo_drift_hz_per_s: linear local-oscillator drift; slowly smears
            every spectral line over the capture.

    The impairment defaults are zero (ideal capture, the Keysight-scope
    setting); nonzero values model the paper's <$800 USRP / <$100 custom
    receiver claim (Section 5.1), exercised by
    ``benchmarks/bench_receiver_robustness.py``.
    """

    gain: float = 1.0
    decimation: int = 1
    adc_bits: Optional[int] = None
    adc_full_scale: float = 4.0
    dc_offset: complex = 0.0
    iq_imbalance_db: float = 0.0
    lo_drift_hz_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise SignalError(f"gain must be positive, got {self.gain}")
        if self.decimation < 1:
            raise SignalError(f"decimation must be >= 1, got {self.decimation}")
        if self.adc_bits is not None and not 2 <= self.adc_bits <= 24:
            raise SignalError(f"adc_bits must be 2..24, got {self.adc_bits}")
        if self.iq_imbalance_db < 0:
            raise SignalError("iq_imbalance_db must be >= 0")

    def capture(self, signal: Signal) -> Signal:
        """Apply the front end to a received signal."""
        samples = signal.samples * self.gain
        rate = signal.sample_rate

        if self.lo_drift_hz_per_s and np.iscomplexobj(samples):
            t = signal.t0 + np.arange(len(samples)) / rate
            # Instantaneous offset f(t) = drift * t; phase = pi * drift * t^2.
            samples = samples * np.exp(1j * np.pi * self.lo_drift_hz_per_s * t**2)

        if self.iq_imbalance_db and np.iscomplexobj(samples):
            # Q-chain gain error epsilon: y = I + j*(1+eps)*Q, equivalently
            # a scaled image of the conjugate signal.
            epsilon = 10.0 ** (self.iq_imbalance_db / 20.0) - 1.0
            samples = samples + 1j * epsilon * samples.imag

        if self.dc_offset:
            samples = samples + self.dc_offset

        if self.decimation > 1:
            # Anti-alias low-pass at the post-decimation Nyquist.
            cutoff = 0.8 / self.decimation  # fraction of input Nyquist
            taps = sp_signal.firwin(65, cutoff)
            samples = sp_signal.lfilter(taps, 1.0, samples)
            samples = samples[:: self.decimation]
            rate = rate / self.decimation

        if self.adc_bits is not None:
            step = 2.0 * self.adc_full_scale / (1 << self.adc_bits)
            if np.iscomplexobj(samples):
                real = self._quantize(samples.real, step)
                imag = self._quantize(samples.imag, step)
                samples = real + 1j * imag
            else:
                samples = self._quantize(samples, step)

        return Signal(samples, rate, signal.t0)

    def _quantize(self, values: np.ndarray, step: float) -> np.ndarray:
        clipped = np.clip(values, -self.adc_full_scale, self.adc_full_scale)
        return np.round(clipped / step) * step
