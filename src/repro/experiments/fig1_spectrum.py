"""Figure 1: spectrum of an AM-modulated loop activity.

The paper's Figure 1 shows three peaks: the clock carrier in the middle
(1.008 GHz) and one sideband on each side at +- 2.64 MHz -- the loop's
per-iteration frequency (T ~ 379 ns).

We run one tight loop through the EM scenario with a nonzero receiver
tuning offset so the carrier sits mid-band, take an (unfolded, two-sided)
spectrum, and verify the sideband geometry: ``F1R - Fc == Fc - F1L ==
1/T`` where T is the measured per-iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.simulator import Simulator
from repro.core.stft import stft
from repro.em.channel import ChannelModel
from repro.em.modulation import am_modulate
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import Scale
from repro.programs.workloads import sharp_loop_program

__all__ = ["Fig1Result", "run", "format"]


@dataclass
class Fig1Result:
    carrier_hz: float
    left_sideband_hz: float
    right_sideband_hz: float
    iteration_period_s: float
    iteration_freq_hz: float
    spectrum_db: List[Tuple[float, float]]  # (freq, dB) series around carrier

    @property
    def left_offset(self) -> float:
        return self.carrier_hz - self.left_sideband_hz

    @property
    def right_offset(self) -> float:
        return self.right_sideband_hz - self.carrier_hz


def run(scale: Scale, jobs=1) -> Fig1Result:
    core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
    program = sharp_loop_program(trips=20000, body_size=150)
    simulator = Simulator(program, core)
    result = simulator.run(seed=scale.seed)

    # Measured per-iteration period of the loop.
    loop_iv = next(iv for iv in result.timeline if iv.region.startswith("loop:"))
    # trips are fixed at 20000 for this program.
    period = loop_iv.duration / 20000
    f_iter = 1.0 / period

    carrier_offset = core.sample_rate / 4  # put the carrier mid-band
    iq = am_modulate(result.power, carrier_offset_hz=carrier_offset)
    rng = np.random.default_rng(scale.seed)
    received = ChannelModel(snr_db=30.0).apply(iq, rng)

    loop_sig = received.slice_time(loop_iv.t_start + 1e-4, loop_iv.t_end - 1e-4)
    spectra = stft(loop_sig, window_samples=4096, overlap=0.5, fold=False,
                   detrend=False)
    mean_power = spectra.power.mean(axis=0)
    freqs = spectra.freqs

    carrier_idx = int(np.argmax(mean_power))
    carrier_hz = float(freqs[carrier_idx])

    def sideband(side: int) -> float:
        """Strongest bin at least half an iteration-frequency away."""
        if side > 0:
            mask = freqs > carrier_hz + 0.5 * f_iter
        else:
            mask = freqs < carrier_hz - 0.5 * f_iter
        idx = np.argmax(np.where(mask, mean_power, -np.inf))
        return float(freqs[idx])

    band = np.abs(freqs - carrier_hz) < 2.5 * f_iter
    db = 10 * np.log10(np.maximum(mean_power, 1e-300))
    series = list(zip(freqs[band].tolist(), db[band].tolist()))

    return Fig1Result(
        carrier_hz=carrier_hz,
        left_sideband_hz=sideband(-1),
        right_sideband_hz=sideband(+1),
        iteration_period_s=period,
        iteration_freq_hz=f_iter,
        spectrum_db=series[:: max(1, len(series) // 60)],
    )


def format(result: Fig1Result) -> str:
    table = format_table(
        "Figure 1: spectrum of an AM-modulated loop activity",
        ["Feature", "Frequency (kHz)", "Offset from carrier (kHz)"],
        [
            ["F1L (left sideband)", result.left_sideband_hz / 1e3,
             -result.left_offset / 1e3],
            ["Fclock (carrier)", result.carrier_hz / 1e3, 0.0],
            ["F1R (right sideband)", result.right_sideband_hz / 1e3,
             result.right_offset / 1e3],
            ["1/T (loop iteration rate)", result.iteration_freq_hz / 1e3, "-"],
        ],
    )
    series = format_series(
        "Spectrum around the carrier (dB)",
        "freq (kHz)",
        {"power (dB)": [(f / 1e3, p) for f, p in result.spectrum_db]},
        digits=1,
    )
    return table + "\n\n" + series
