"""Shared sweep for Figures 5 and 7: contamination rate of loop iterations.

Section 5.4: inject 8 memory + 8 integer instructions into a fraction
("contamination rate") of a target loop's iterations, from 100% down to
10%. Figure 5 reports the false-negative rate at fixed detection latency;
Figure 7 reports the detection latency needed as contamination falls.

Expected shape: FN rises as contamination falls (dramatically for GSM,
mildly for Bitcount); detection latency rises as contamination falls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import aggregate_metrics, rejection_false_negative_rate
from repro.experiments.report import format_series
from repro.experiments.runner import (
    Scale,
    build_detector,
    capture_traces,
    parallel_map,
)
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix

__all__ = ["ContaminationResult", "run", "format_fig5", "format_fig7"]

_PROGRAMS = ("basicmath", "bitcount", "gsm", "patricia", "susan")
_RATES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
# Figure 5 fixes the latency budget (a small n) so FN differences show.
_FIXED_N = 12


@dataclass
class ContaminationResult:
    # benchmark -> [(contamination %, FN %)]
    false_negatives: Dict[str, List[Tuple[float, float]]]
    # benchmark -> [(contamination %, latency ms)]
    latencies: Dict[str, List[Tuple[float, Optional[float]]]]


def _benchmark_curves(
    task: Tuple[str, Scale, str]
) -> Tuple[List[Tuple[float, float]], List[Tuple[float, Optional[float]]]]:
    """FN and latency curves for one benchmark (process-pool worker)."""
    name, scale, source = task
    # 8 memory + 8 integer instructions (Section 5.4). The memory accesses
    # stay cache-resident: the stealthy attacker of this experiment spreads
    # tiny amounts of work, so the per-iteration footprint must not add
    # (highly visible) miss stalls -- those are Figure 10's variable.
    payload = injection_mix(8, 8, footprint=16 * 1024)
    detector = build_detector(BENCHMARKS[name](), scale, source=source)
    simulator = (
        detector.source.simulator
        if hasattr(detector.source, "simulator")
        else detector.source
    )
    target = INJECTION_LOOPS[name]
    fn_points: List[Tuple[float, float]] = []
    lat_points: List[Tuple[float, Optional[float]]] = []
    for rate in _RATES:
        simulator.set_loop_injection(target, payload, rate)
        traces = capture_traces(
            detector,
            [scale.injected_seed(int(rate * 100) + k)
             for k in range(scale.injected_runs)],
        )
        simulator.clear_injections()

        # Figure 5: test-level FN (injection-containing groups the K-S
        # test accepted) at a fixed small group size.
        fixed = detector.with_group_size(_FIXED_N)
        window_s = (
            fixed.model.config.window_samples / fixed.model.sample_rate
        )
        fn_values = []
        for trace in traces:
            report = fixed.monitor(trace)
            fn = rejection_false_negative_rate(
                report.result, trace.injected_spans, window_s,
                fixed.model.hop_duration,
            )
            if fn is not None:
                fn_values.append(fn)
        fn_points.append(
            (rate * 100,
             float(np.mean(fn_values)) if fn_values else 100.0)
        )

        # Figure 7: latency of the trained (per-region n) detector.
        trained = aggregate_metrics(
            [detector.monitor(t).metrics for t in traces]
        )
        lat_points.append(
            (rate * 100,
             trained.detection_latency * 1e3
             if trained.detection_latency is not None else None)
        )
    return fn_points, lat_points


def run(scale: Scale, source: str = "power", jobs=1) -> ContaminationResult:
    tasks = [(name, scale, source) for name in _PROGRAMS]
    results = parallel_map(_benchmark_curves, tasks, jobs)
    false_negatives = {
        name: fn for name, (fn, _) in zip(_PROGRAMS, results)
    }
    latencies = {name: lat for name, (_, lat) in zip(_PROGRAMS, results)}
    return ContaminationResult(false_negatives=false_negatives, latencies=latencies)


def format_fig5(result: ContaminationResult) -> str:
    return format_series(
        "Figure 5: false-negative rate vs contamination rate "
        f"(fixed group size n={_FIXED_N})",
        "contamination (%)",
        {name: pts for name, pts in result.false_negatives.items()},
        digits=1,
    )


def format_fig7(result: ContaminationResult) -> str:
    return format_series(
        "Figure 7: detection latency vs contamination rate (trained n)",
        "contamination (%)",
        {name: pts for name, pts in result.latencies.items()},
    )
