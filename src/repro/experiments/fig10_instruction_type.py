"""Figure 10: effect of the injected instruction type.

Section 5.7: injecting 8 adds (purely on-chip) vs 4 adds + 4 stores that
randomly miss the caches (off-chip activity). Off-chip activity makes the
injection more visible -- detected at shorter latency -- but the on-chip
injection is still detected, just needing more latency. The paper also
notes MUL/DIV behave like ADD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.report import format_series
from repro.experiments.runner import (
    Scale,
    build_detector,
    capture_traces,
    parallel_map,
    sweep_group_sizes,
)
from repro.programs.workloads import injection_mix, multi_peak_loop_program

__all__ = ["Fig10Result", "run", "format"]

def _sweep_sizes(scale: Scale):
    """Group sizes swept; capped so n stays below the (scaled-down) region
    dwell time -- a group spanning multiple regions is meaningless."""
    sizes = [n for n in scale.group_sizes if n <= 32]
    return sizes or [min(scale.group_sizes)]


@dataclass
class Fig10Result:
    # label -> [(latency_ms, TPR %)]
    curves: Dict[str, List[Tuple[float, float]]]


# Payload factories by label, in figure order; offset seeds each label's
# monitored runs into its own namespace.
_PAYLOADS = (
    ("on-chip (8 adds)", lambda: injection_mix(8, 0)),
    ("off-chip and on-chip (4 adds + 4 missing stores)",
     lambda: injection_mix(4, 4, footprint=1 << 22)),
)


def _payload_curve(task) -> List[Tuple[float, float]]:
    """TPR-vs-latency curve for one payload type (process-pool worker)."""
    scale, offset = task
    label, payload_factory = _PAYLOADS[offset]
    del label
    # A loop with several timing modes: the mode spread hides the small
    # on-chip shift at small n, while the off-chip payload's miss jitter
    # stands out immediately -- reproducing the paper's latency gap.
    detector = build_detector(
        multi_peak_loop_program(trips=12000), scale, source="em"
    )
    simulator = detector.source.simulator
    hop = detector.model.hop_duration
    simulator.set_loop_injection("L", payload_factory(), 1.0)
    traces = capture_traces(
        detector,
        [scale.injected_seed(500 * offset + k)
         for k in range(scale.injected_runs)],
    )
    simulator.clear_injections()
    by_n = sweep_group_sizes(detector, traces, _sweep_sizes(scale))
    return [
        (n * hop * 1e3,
         metrics.true_positive_rate
         if metrics.true_positive_rate is not None else 0.0)
        for n, metrics in sorted(by_n.items())
    ]


def run(scale: Scale, jobs=1) -> Fig10Result:
    results = parallel_map(
        _payload_curve,
        [(scale, offset) for offset in range(len(_PAYLOADS))],
        jobs,
    )
    return Fig10Result(
        curves={label: pts
                for (label, _), pts in zip(_PAYLOADS, results)}
    )


def format(result: Fig10Result) -> str:
    return format_series(
        "Figure 10: TPR vs latency by injected instruction type",
        "latency (ms)",
        {label: pts for label, pts in result.curves.items()},
        digits=1,
    )
