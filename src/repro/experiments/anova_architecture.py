"""Section 5.3's architecture-sensitivity study (N-way ANOVA, 51 configs).

The paper simulates 51 core configurations (in-order: 3 issue widths x 2
pipeline depths; OOO: 3 widths x 3 depths x 5 ROB sizes), runs 3
benchmarks on each, and uses N-way ANOVA on EDDIE's results. Findings:

- core kind matters: OOO needs significantly more latency;
- for in-order cores, neither width nor depth is significant;
- for OOO cores, width and ROB size are not significant, but pipeline
  depth has a weak but significant effect on latency (deeper pipeline =>
  bigger mispredict penalty => more timing variation in branchy loops);
- the depth effect fades as the injection gets larger.

Reproduction: response = mean selected group size per benchmark/config
expressed as latency; three ANOVA tables (combined / in-order / OOO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.config import CoreConfig, architecture_sweep
from repro.core.stats.anova import AnovaResult, n_way_anova
from repro.experiments.report import format_table
from repro.experiments.runner import Scale, build_detector, parallel_map
from repro.programs.mibench import BENCHMARKS

__all__ = [
    "AnovaStudyResult",
    "DepthInteractionResult",
    "run",
    "run_depth_injection_interaction",
    "format",
    "format_depth_interaction",
]

_PROGRAMS = ("basicmath", "bitcount", "susan")


@dataclass
class Observation:
    config: CoreConfig
    benchmark: str
    latency_ms: float


@dataclass
class AnovaStudyResult:
    observations: List[Observation]
    combined: AnovaResult
    inorder: Optional[AnovaResult]
    ooo: Optional[AnovaResult]


def _observe(task) -> Observation:
    """One (config, benchmark) cell of the sweep (process-pool worker)."""
    config, name, scale = task
    detector = build_detector(
        BENCHMARKS[name](), scale, source="power", core=config
    )
    hop = detector.model.hop_duration
    group_sizes = [
        p.group_size
        for region, p in detector.model.profiles.items()
        if region.startswith("loop:")
    ]
    return Observation(
        config=config,
        benchmark=name,
        latency_ms=float(np.mean(group_sizes)) * hop * 1e3,
    )


def run(
    scale: Scale,
    configs: Optional[Sequence[CoreConfig]] = None,
    jobs=1,
) -> AnovaStudyResult:
    """Run the study; pass ``configs`` to subsample the 51-point sweep."""
    if configs is None:
        configs = architecture_sweep(clock_hz=scale.clock_hz)

    tasks = [
        (config, name, scale) for config in configs for name in _PROGRAMS
    ]
    observations: List[Observation] = parallel_map(_observe, tasks, jobs)

    y = [obs.latency_ms for obs in observations]
    combined = n_way_anova(
        {
            "kind": [obs.config.kind for obs in observations],
            "width": [obs.config.issue_width for obs in observations],
            "depth": [obs.config.pipeline_depth for obs in observations],
            "benchmark": [obs.benchmark for obs in observations],
        },
        y,
    )

    def subset(kind: str, factors: Dict[str, List]) -> Optional[AnovaResult]:
        members = [obs for obs in observations if obs.config.kind == kind]
        if len({obs.config.name for obs in members}) < 3:
            return None
        return n_way_anova(
            {
                name: [getter(obs) for obs in members]
                for name, getter in factors.items()
            },
            [obs.latency_ms for obs in members],
        )

    inorder = subset(
        "inorder",
        {
            "width": lambda o: o.config.issue_width,
            "depth": lambda o: o.config.pipeline_depth,
            "benchmark": lambda o: o.benchmark,
        },
    )
    ooo = subset(
        "ooo",
        {
            "width": lambda o: o.config.issue_width,
            "depth": lambda o: o.config.pipeline_depth,
            "rob": lambda o: o.config.rob_size,
            "benchmark": lambda o: o.benchmark,
        },
    )
    return AnovaStudyResult(
        observations=observations, combined=combined, inorder=inorder, ooo=ooo
    )


@dataclass
class DepthInteractionResult:
    """Paper §5.3's last finding: the pipeline-depth effect on OOO
    detection latency diminishes as the injection grows.

    ``latencies[(depth, size)]`` is the mean measured detection latency in
    ms over benchmarks and runs; ``spread(size)`` is the max-min across
    depths at that injection size.
    """

    latencies: Dict[tuple, float]
    depths: List[int]
    sizes: List[int]

    def spread(self, size: int) -> float:
        values = [self.latencies[(d, size)] for d in self.depths
                  if (d, size) in self.latencies]
        return max(values) - min(values) if values else 0.0


def run_depth_injection_interaction(
    scale: Scale,
    depths: Sequence[int] = (8, 14, 20),
    sizes: Sequence[int] = (2, 16),
) -> DepthInteractionResult:
    """Measure detection latency across OOO pipeline depths for a small
    and a large loop injection (paper §5.3, last paragraph)."""
    from repro.core.metrics import aggregate_metrics
    from repro.experiments.runner import capture_traces
    from repro.programs.mibench import INJECTION_LOOPS
    from repro.programs.workloads import injection_mix

    benchmarks = ("bitcount", "susan")
    latencies: Dict[tuple, List[float]] = {}
    for depth in depths:
        core = CoreConfig(
            kind="ooo", issue_width=2, pipeline_depth=depth, rob_size=64,
            clock_hz=scale.clock_hz, name=f"ooo-d{depth}",
        )
        for name in benchmarks:
            detector = build_detector(
                BENCHMARKS[name](), scale, source="power", core=core
            )
            simulator = detector.source
            for size in sizes:
                payload = injection_mix(size // 2, size - size // 2)
                simulator.set_loop_injection(INJECTION_LOOPS[name], payload, 1.0)
                traces = capture_traces(
                    detector,
                    [scale.injected_seed(size * 10 + k)
                     for k in range(scale.injected_runs)],
                )
                simulator.clear_injections()
                metrics = aggregate_metrics(
                    [detector.monitor(t).metrics for t in traces]
                )
                if metrics.detection_latency is not None:
                    latencies.setdefault((depth, size), []).append(
                        metrics.detection_latency * 1e3
                    )
    return DepthInteractionResult(
        latencies={
            key: float(np.mean(values)) for key, values in latencies.items()
        },
        depths=list(depths),
        sizes=list(sizes),
    )


def format_depth_interaction(result: DepthInteractionResult) -> str:
    rows = []
    for depth in result.depths:
        rows.append(
            [str(depth)] + [
                result.latencies.get((depth, size)) for size in result.sizes
            ]
        )
    rows.append(
        ["spread (max-min)"] + [result.spread(size) for size in result.sizes]
    )
    return format_table(
        "Depth x injection-size interaction: OOO detection latency (ms)",
        ["pipeline depth"] + [f"{size}-instr injection" for size in result.sizes],
        rows,
    )


def _anova_rows(result: AnovaResult) -> List[List]:
    rows = []
    for name, effect in result.effects.items():
        rows.append(
            [name, effect.df, effect.f_stat, effect.pvalue,
             "yes" if effect.significant() else "no"]
        )
    return rows


def format(result: AnovaStudyResult) -> str:
    parts = []
    by_kind: Dict[str, List[float]] = {}
    for obs in result.observations:
        by_kind.setdefault(obs.config.kind, []).append(obs.latency_ms)
    parts.append(
        format_table(
            "Mean detection latency by core kind (ms)",
            ["Kind", "Mean latency (ms)", "Observations"],
            [
                [kind, float(np.mean(vals)), len(vals)]
                for kind, vals in sorted(by_kind.items())
            ],
        )
    )
    tables = [("combined", result.combined), ("in-order subset", result.inorder),
              ("OOO subset", result.ooo)]
    for label, table in tables:
        if table is None:
            continue
        parts.append(
            format_table(
                f"N-way ANOVA on detection latency ({label})",
                ["Factor", "df", "F", "p-value", "significant (5%)"],
                _anova_rows(table),
                digits=4,
            )
        )
    return "\n\n".join(parts)
