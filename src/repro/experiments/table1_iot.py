"""Table 1: EDDIE accuracy monitoring EM emanations of the IoT device.

The paper's headline table: for 10 MiBench benchmarks on the Cortex-A8
board, detection latency 11-42 ms, false positives <1.9% (average <1%),
accuracy 92.1-100% (average 95%), coverage 57.1-99.9% (GSM lowest, due to
its peak-less loop).

We reproduce it over the EM scenario (AM-modulated clock + channel noise +
receiver). Expected shape: every benchmark detects both injection kinds;
false positives stay in the low percents; GSM's coverage is the weak spot;
Susan/Patricia sit at the lower end of accuracy (region borders).
"""

from __future__ import annotations

from repro.arch.config import CoreConfig
from repro.experiments.runner import Scale
from repro.experiments.tables_common import TableResult, format_result, run_table

__all__ = ["run", "format"]


def run(scale: Scale, jobs=1) -> TableResult:
    return run_table(
        scale,
        source="em",
        core_factory=lambda: CoreConfig.iot_inorder(clock_hz=scale.clock_hz),
        jobs=jobs,
    )


def format(result: TableResult) -> str:
    return format_result(
        result, "Table 1: EDDIE monitoring EM emanations of an IoT device"
    )
