"""Figure 9: false positives vs K-S confidence level.

Section 5.6: the K-S confidence level trades false rejections against
false acceptances. At 99% confidence the false-rejection rate practically
vanishes at reasonable latency; at 95%/97% it stays substantial even at
long latencies (the paper's curves reach 60%+ at small n). The paper uses
99% everywhere else.

Reproduction: per-group K-S false-rejection rates (the same quantity as
Figure 3) on a multi-peak loop region, swept over group size n for each
confidence level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.arch.config import CoreConfig
from repro.core.model import EddieConfig
from repro.core.training import _choose_num_peaks, group_rejection_rates
from repro.em.scenario import EmScenario
from repro.experiments.fig3_buffer_size import _region_windows
from repro.experiments.report import format_series
from repro.experiments.runner import Scale
from repro.programs.workloads import multi_peak_loop_program

__all__ = ["Fig9Result", "run", "format"]

_CONFIDENCES = (0.95, 0.97, 0.99)


@dataclass
class Fig9Result:
    # confidence -> [(latency_ms, false rejection %)]
    curves: Dict[float, List[Tuple[float, float]]]


def run(scale: Scale, jobs=1) -> Fig9Result:
    core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
    scenario = EmScenario.build(
        multi_peak_loop_program(trips=12000), core=core
    )
    base_cfg = EddieConfig()
    windows = _region_windows(
        scenario,
        [scale.train_seed(k) for k in range(max(2, scale.train_runs))],
        "loop:L",
        base_cfg,
    )
    half = len(windows) // 2
    reference, validation = windows[:half], windows[half:]
    num_peaks = _choose_num_peaks(reference, base_cfg)
    hop_s = base_cfg.window_samples * (1 - base_cfg.overlap) / core.sample_rate

    curves: Dict[float, List[Tuple[float, float]]] = {}
    for confidence in _CONFIDENCES:
        cfg = replace(base_cfg, alpha=1.0 - confidence)
        rates = group_rejection_rates(
            reference, validation, num_peaks, cfg, scale.group_sizes
        )
        curves[confidence] = [
            (n * hop_s * 1e3, 100.0 * rate) for n, rate in sorted(rates.items())
        ]
    return Fig9Result(curves=curves)


def format(result: Fig9Result) -> str:
    return format_series(
        "Figure 9: K-S false-rejection rate vs latency at confidence levels",
        "latency (ms)",
        {f"{conf:.0%}": pts for conf, pts in sorted(result.curves.items())},
    )
