"""Table 2: EDDIE on the simulator-generated power signal.

The paper's second setup: SESC modelling a 1.8 GHz 4-issue out-of-order
core, power sampled every 20 cycles, STFT with 50% overlap; 10 training
and 10 monitoring runs per benchmark. False rejections average 0.7% --
better than the real system because simulation has no signal noise,
interrupts, or other system activity.

Expected shape vs Table 1: lower false positives, same-or-better accuracy,
GSM still the coverage outlier.
"""

from __future__ import annotations

from repro.arch.config import CoreConfig
from repro.experiments.runner import Scale
from repro.experiments.tables_common import TableResult, format_result, run_table

__all__ = ["run", "format"]


def run(scale: Scale, jobs=1) -> TableResult:
    return run_table(
        scale,
        source="power",
        core_factory=lambda: CoreConfig.sim_ooo(clock_hz=scale.clock_hz),
        jobs=jobs,
    )


def format(result: TableResult) -> str:
    return format_result(
        result, "Table 2: EDDIE on a simulator-generated power signal"
    )
