"""Paper-shaped text rendering of experiment results.

Tables render as aligned-column text; figure data renders as labelled
series (x -> y per line), which is what the bench harness prints so a
reader can compare against the paper's plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

__all__ = ["format_table", "format_series", "fmt"]

Number = Union[int, float, None]


def fmt(value: Number, digits: int = 2) -> str:
    """Format a possibly-missing number."""
    if value is None:
        return "-"
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}f}"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Union[str, Number]]],
    digits: int = 2,
) -> str:
    """Render an aligned-column table."""
    text_rows = [
        [cell if isinstance(cell, str) else fmt(cell, digits) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [title, "=" * len(title), line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in text_rows)
    return "\n".join(out)


def format_series(
    title: str,
    x_label: str,
    series: Dict[str, Sequence[Tuple[Number, Number]]],
    digits: int = 2,
) -> str:
    """Render one or more (x, y) series as a compact text plot table.

    All series are merged on their x values, one column per series --
    the textual equivalent of the paper's multi-line figures.
    """
    xs: List[Number] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    xs.sort(key=lambda v: (v is None, v))

    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        rows.append([fmt(x, digits)] + [
            fmt(lookup[name].get(x), digits) for name in series
        ])
    return format_table(title, headers, rows, digits)
