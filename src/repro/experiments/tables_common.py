"""Shared logic for Table 1 (IoT/EM) and Table 2 (simulator/power).

Per benchmark, per the paper's Section 5.2 protocol:

- train on injection-free runs with varying inputs;
- monitor clean runs (false positives, coverage);
- monitor runs with an 8-instruction loop-body injection (4 integer ops +
  4 memory accesses) into a hot loop;
- monitor runs with a shell-invocation burst outside loops (~476k injected
  instructions, ~3 ms);
- report detection latency (mean over reported injections), false
  positives (% of STS groups), accuracy (mean of per-region accuracy),
  and coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.simulator import BurstSpec, Simulator
from repro.core.detector import TrainedDetector
from repro.core.metrics import aggregate_metrics
from repro.em.scenario import EmScenario
from repro.experiments.report import format_table
from repro.experiments.runner import (
    Scale,
    build_detector,
    capture_traces,
    parallel_map,
)
from repro.obs import span
from repro.programs.ir import Instr, OpClass
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix

__all__ = ["BenchmarkRow", "TableResult", "evaluate_benchmark", "run_table",
           "format_result", "shellcode_burst"]

# The paper's outside-loop injection: invoking a shell executes ~476k
# instructions. We model it as a syscall-entry prologue plus a spin of
# library/loader-ish work repeated until the instruction budget is met.
_SHELL_BODY_INT = 44
_SHELL_INSTRS = 476_000


def shellcode_burst(after_region: str) -> BurstSpec:
    """The empty-shellcode burst (Section 5.2) after a loop region."""
    body: List[Instr] = [Instr(OpClass.SYSCALL)]
    body += injection_mix(_SHELL_BODY_INT, 6, footprint=1 << 20)
    iterations = max(1, _SHELL_INSTRS // len(body))
    return BurstSpec(after_region=after_region, body=tuple(body),
                     iterations=iterations)


@dataclass
class BenchmarkRow:
    """One row of Table 1 / Table 2."""

    name: str
    latency_ms: Optional[float]
    false_positives: float
    accuracy: float
    coverage: float
    detected_loop: bool
    detected_burst: bool


@dataclass
class TableResult:
    rows: List[BenchmarkRow]
    source: str

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([r.accuracy for r in self.rows]))

    @property
    def mean_false_positives(self) -> float:
        return float(np.mean([r.false_positives for r in self.rows]))


def _simulator_of(detector: TrainedDetector) -> Simulator:
    source = detector.source
    if isinstance(source, EmScenario):
        return source.simulator
    return source  # type: ignore[return-value]


def _burst_region(simulator: Simulator, loop_header: str) -> str:
    """The loop region after which the burst fires: the region containing
    the benchmark's injection target (the paper places bitcount's burst
    between its loops 2 and 3)."""
    nest = simulator.forest.top_level_containing(loop_header)
    if nest is None:
        return next(iter(simulator.machine.loop_regions))
    return f"loop:{nest.header}"


def evaluate_benchmark(
    name: str,
    scale: Scale,
    source: str,
    core: Optional[CoreConfig] = None,
) -> BenchmarkRow:
    """Run the full Table-1/2 protocol for one benchmark."""
    with span(f"benchmark.{name}"):
        return _evaluate_benchmark(name, scale, source, core)


def _evaluate_benchmark(
    name: str,
    scale: Scale,
    source: str,
    core: Optional[CoreConfig] = None,
) -> BenchmarkRow:
    program = BENCHMARKS[name]()
    detector = build_detector(program, scale, source=source, core=core)
    simulator = _simulator_of(detector)
    loop_target = INJECTION_LOOPS[name]

    # Clean runs.
    clean_traces = capture_traces(
        detector, [scale.monitor_seed(k) for k in range(scale.clean_runs)]
    )

    # Loop-body injection runs: 4 integer + 4 memory instructions.
    simulator.set_loop_injection(loop_target, injection_mix(4, 4), 1.0)
    loop_traces = capture_traces(
        detector, [scale.injected_seed(k) for k in range(scale.injected_runs)]
    )
    simulator.clear_injections()

    # Burst injection runs: empty-shellcode outside loops.
    simulator.add_burst(shellcode_burst(_burst_region(simulator, loop_target)))
    burst_traces = capture_traces(
        detector,
        [scale.injected_seed(100 + k) for k in range(scale.injected_runs)],
    )
    simulator.clear_injections()

    clean = [detector.monitor(t).metrics for t in clean_traces]
    loops = [detector.monitor(t).metrics for t in loop_traces]
    bursts = [detector.monitor(t).metrics for t in burst_traces]

    everything = aggregate_metrics(clean + loops + bursts)
    injected = aggregate_metrics(loops + bursts)
    clean_agg = aggregate_metrics(clean)

    return BenchmarkRow(
        name=name,
        latency_ms=(
            injected.detection_latency * 1e3
            if injected.detection_latency is not None
            else None
        ),
        false_positives=everything.false_positive_rate,
        accuracy=everything.accuracy,
        coverage=clean_agg.coverage,
        detected_loop=aggregate_metrics(loops).detected,
        detected_burst=aggregate_metrics(bursts).detected,
    )


def _evaluate_task(
    task: Tuple[str, Scale, str, Optional[CoreConfig]]
) -> BenchmarkRow:
    """Top-level worker so the process pool can pickle it. The program is
    rebuilt inside the worker from the benchmark name (program IRs carry
    lambdas and cannot cross process boundaries)."""
    name, scale, source, core = task
    return evaluate_benchmark(name, scale, source, core)


def run_table(
    scale: Scale,
    source: str,
    core_factory: Optional[Callable[[], CoreConfig]] = None,
    benchmarks: Optional[List[str]] = None,
    jobs: Union[int, str, None] = 1,
) -> TableResult:
    """Evaluate all (or selected) benchmarks for one table.

    ``jobs`` fans the per-benchmark evaluations over a process pool
    (``'auto'`` = one worker per CPU). Every benchmark's seeds derive
    from :class:`Scale`'s disjoint namespaces and results return in
    input order, so parallel output is identical to serial.
    """
    names = benchmarks or list(BENCHMARKS)
    tasks = [
        (name, scale, source, core_factory() if core_factory else None)
        for name in names
    ]
    rows = parallel_map(_evaluate_task, tasks, jobs)
    return TableResult(rows=rows, source=source)


def format_result(result: TableResult, title: str) -> str:
    headers = [
        "Benchmark", "Detection Latency (ms)", "False positives (%)",
        "Accuracy (%)", "Coverage (%)",
    ]
    rows = [
        [r.name, r.latency_ms, r.false_positives, r.accuracy, r.coverage]
        for r in result.rows
    ]
    rows.append(
        ["MEAN", None, result.mean_false_positives, result.mean_accuracy,
         float(np.mean([r.coverage for r in result.rows]))]
    )
    return format_table(title, headers, rows)
