"""Figure 6: accuracy vs number of instructions injected inside a loop.

Section 5.5: injections of 2, 4, 6, 8 static instructions (equal stores
and adds) into a loop body, evaluated on the same three loops as Figure 3
(sharp / several / diffuse peaks). The paper finds even two-instruction
injections are detected with extremely high accuracy, but smaller
injections need a larger n (longer detection latency); the diffuse loop
needs the most.

Reproduction: per loop shape and injection size, capture injected traces
once and re-monitor at each group size n, reporting TPR vs latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.report import format_series
from repro.experiments.runner import (
    Scale,
    build_detector,
    capture_traces,
    parallel_map,
    sweep_group_sizes,
)
from repro.programs.workloads import (
    diffuse_loop_program,
    injection_mix,
    multi_peak_loop_program,
    sharp_loop_program,
)

__all__ = ["Fig6Result", "run", "format"]

def _sweep_sizes(scale: Scale):
    """Group sizes swept; capped so n stays below the (scaled-down) region
    dwell time -- a group spanning multiple regions is meaningless."""
    sizes = [n for n in scale.group_sizes if n <= 32]
    return sizes or [min(scale.group_sizes)]


_SIZES = (2, 4, 6, 8)


@dataclass
class Fig6Result:
    # loop kind -> injected size -> [(latency_ms, TPR %)]
    curves: Dict[str, Dict[int, List[Tuple[float, float]]]]


# Program factories by loop kind; workers rebuild the program inside the
# pool (IRs carry lambdas and cannot be pickled).
_PROGRAMS = {
    "sharp peak": lambda: sharp_loop_program(trips=12000),
    "several peaks": lambda: multi_peak_loop_program(trips=12000),
    "diffuse peaks": lambda: diffuse_loop_program(trips=9000),
}


def _kind_curves(
    task: Tuple[str, Scale]
) -> Dict[int, List[Tuple[float, float]]]:
    """TPR-vs-latency curves for one loop shape (process-pool worker)."""
    kind, scale = task
    detector = build_detector(_PROGRAMS[kind](), scale, source="em")
    simulator = detector.source.simulator
    hop = detector.model.hop_duration
    curves: Dict[int, List[Tuple[float, float]]] = {}
    for size in _SIZES:
        payload = injection_mix(size // 2, size - size // 2)
        simulator.set_loop_injection("L", payload, 1.0)
        traces = capture_traces(
            detector,
            [scale.injected_seed(size * 100 + k)
             for k in range(scale.injected_runs)],
        )
        simulator.clear_injections()
        by_n = sweep_group_sizes(detector, traces, _sweep_sizes(scale))
        curves[size] = [
            (n * hop * 1e3,
             metrics.true_positive_rate
             if metrics.true_positive_rate is not None else 0.0)
            for n, metrics in sorted(by_n.items())
        ]
    return curves


def run(scale: Scale, jobs=1) -> Fig6Result:
    kinds = list(_PROGRAMS)
    results = parallel_map(
        _kind_curves, [(kind, scale) for kind in kinds], jobs
    )
    return Fig6Result(curves=dict(zip(kinds, results)))


def format(result: Fig6Result) -> str:
    parts = []
    for kind, by_size in result.curves.items():
        parts.append(
            format_series(
                f"Figure 6 ({kind}): TPR vs detection latency by injection size",
                "latency (ms)",
                {f"{size} instr": pts for size, pts in sorted(by_size.items())},
                digits=1,
            )
        )
    return "\n\n".join(parts)
