"""Figure 6: accuracy vs number of instructions injected inside a loop.

Section 5.5: injections of 2, 4, 6, 8 static instructions (equal stores
and adds) into a loop body, evaluated on the same three loops as Figure 3
(sharp / several / diffuse peaks). The paper finds even two-instruction
injections are detected with extremely high accuracy, but smaller
injections need a larger n (longer detection latency); the diffuse loop
needs the most.

Reproduction: per loop shape and injection size, capture injected traces
once and re-monitor at each group size n, reporting TPR vs latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.report import format_series
from repro.experiments.runner import (
    Scale,
    build_detector,
    capture_traces,
    sweep_group_sizes,
)
from repro.programs.workloads import (
    diffuse_loop_program,
    injection_mix,
    multi_peak_loop_program,
    sharp_loop_program,
)

__all__ = ["Fig6Result", "run", "format"]

def _sweep_sizes(scale: Scale):
    """Group sizes swept; capped so n stays below the (scaled-down) region
    dwell time -- a group spanning multiple regions is meaningless."""
    sizes = [n for n in scale.group_sizes if n <= 32]
    return sizes or [min(scale.group_sizes)]


_SIZES = (2, 4, 6, 8)


@dataclass
class Fig6Result:
    # loop kind -> injected size -> [(latency_ms, TPR %)]
    curves: Dict[str, Dict[int, List[Tuple[float, float]]]]


def run(scale: Scale) -> Fig6Result:
    programs = {
        "sharp peak": sharp_loop_program(trips=12000),
        "several peaks": multi_peak_loop_program(trips=12000),
        "diffuse peaks": diffuse_loop_program(trips=9000),
    }
    curves: Dict[str, Dict[int, List[Tuple[float, float]]]] = {}
    for kind, program in programs.items():
        detector = build_detector(program, scale, source="em")
        simulator = detector.source.simulator
        hop = detector.model.hop_duration
        curves[kind] = {}
        for size in _SIZES:
            payload = injection_mix(size // 2, size - size // 2)
            simulator.set_loop_injection("L", payload, 1.0)
            traces = capture_traces(
                detector,
                [scale.injected_seed(size * 100 + k)
                 for k in range(scale.injected_runs)],
            )
            simulator.clear_injections()
            by_n = sweep_group_sizes(detector, traces, _sweep_sizes(scale))
            curves[kind][size] = [
                (n * hop * 1e3,
                 metrics.true_positive_rate
                 if metrics.true_positive_rate is not None else 0.0)
                for n, metrics in sorted(by_n.items())
            ]
    return Fig6Result(curves=curves)


def format(result: Fig6Result) -> str:
    parts = []
    for kind, by_size in result.curves.items():
        parts.append(
            format_series(
                f"Figure 6 ({kind}): TPR vs detection latency by injection size",
                "latency (ms)",
                {f"{size} instr": pts for size, pts in sorted(by_size.items())},
                digits=1,
            )
        )
    return "\n\n".join(parts)
