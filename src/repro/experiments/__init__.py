"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(scale: Scale) -> <Result>`` and a
``format_*`` function that renders the result in the shape the paper
reports (table rows or plotted series as aligned text). The bench suite
(``benchmarks/``) calls these with a down-scaled :class:`Scale`;
``Scale.paper()`` records the paper-faithful parameters.

Index (see DESIGN.md section 3 for the full mapping):

- :mod:`repro.experiments.fig1_spectrum` -- AM sideband geometry
- :mod:`repro.experiments.fig2_distribution` -- parametric-fit failure
- :mod:`repro.experiments.fig3_buffer_size` -- group-size selection
- :mod:`repro.experiments.table1_iot` -- EM (IoT) headline results
- :mod:`repro.experiments.table2_sim` -- simulator power-signal results
- :mod:`repro.experiments.fig4_inorder_ooo` -- per-region latency, core kinds
- :mod:`repro.experiments.anova_architecture` -- 51-config sensitivity study
- :mod:`repro.experiments.fig5_contamination` -- FN rate vs contamination
- :mod:`repro.experiments.fig7_contamination_latency` -- latency vs contamination
- :mod:`repro.experiments.fig6_injection_size` -- TPR vs latency, 2-8 instrs
- :mod:`repro.experiments.fig8_burst_size` -- TPR vs latency, 100k-500k bursts
- :mod:`repro.experiments.fig9_confidence` -- FP vs latency, K-S confidence
- :mod:`repro.experiments.fig10_instruction_type` -- on-chip vs off-chip
"""

from repro.experiments.runner import Scale

__all__ = ["Scale"]
