"""Shared experiment machinery: scaling knobs, training, trace capture,
and group-size sweeps.

The paper's experiments run seconds of GHz execution; a laptop-scale
reproduction needs a scaling knob. :class:`Scale` bundles every such knob;
``Scale.default()`` finishes each experiment in seconds-to-minutes, and
``Scale.paper()`` records the paper-faithful values (25 IoT / 10 simulator
runs, literal clocks) for completeness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro import obs
from repro.arch.config import CoreConfig
from repro.arch.simulator import Simulator
from repro.cache import configure as configure_cache
from repro.cache import describe, digest, fingerprint, get_cache
from repro.core.detector import Eddie, TrainedDetector, TraceLike
from repro.core.metrics import RunMetrics, aggregate_metrics
from repro.core.model import EddieConfig
from repro.em.scenario import EmScenario
from repro.errors import ConfigurationError
from repro.obs import span
from repro.programs.ir import Program

__all__ = [
    "Scale",
    "build_detector",
    "capture_traces",
    "monitor_traces",
    "parallel_map",
    "resolve_jobs",
    "sweep_group_sizes",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass(frozen=True)
class Scale:
    """Experiment scaling knobs.

    Attributes:
        train_runs: injection-free training runs per benchmark.
        clean_runs: monitored injection-free runs per benchmark.
        injected_runs: monitored runs per injection configuration.
        clock_hz: core clock used for the runs (see CoreConfig docs on why
            scaled clocks are legitimate).
        seed: base RNG seed; derived seeds are offsets from it.
        group_sizes: K-S group sizes swept by latency-trade-off figures.
    """

    train_runs: int = 8
    clean_runs: int = 3
    injected_runs: int = 3
    clock_hz: float = 1e8
    seed: int = 0
    group_sizes: Tuple[int, ...] = (8, 12, 16, 24, 32, 48, 64, 96)

    @classmethod
    def quick(cls) -> "Scale":
        """Smallest meaningful scale (CI smoke runs)."""
        return cls(train_runs=4, clean_runs=2, injected_runs=2,
                   group_sizes=(8, 16, 32, 64))

    @classmethod
    def default(cls) -> "Scale":
        return cls()

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's own parameters (hours of compute; for reference)."""
        return cls(
            train_runs=25,
            clean_runs=25,
            injected_runs=25,
            clock_hz=1.008e9,
            group_sizes=(8, 16, 32, 64, 128, 256, 512),
        )

    def train_seed(self, offset: int = 0) -> int:
        return self.seed + offset

    def monitor_seed(self, offset: int = 0) -> int:
        return self.seed + 10_000 + offset

    def injected_seed(self, offset: int = 0) -> int:
        return self.seed + 20_000 + offset


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Worker-process count from a ``--jobs`` value.

    ``None``/``0``/``1`` mean serial; ``'auto'`` means one worker per
    CPU; any other value is taken literally (floored at 1).
    """
    if jobs in (None, 0, 1):
        return 1
    if jobs == "auto":
        return os.cpu_count() or 1
    try:
        return max(1, int(jobs))
    except (TypeError, ValueError):
        raise ConfigurationError(f"invalid jobs value {jobs!r}") from None


def _init_worker(
    cache_dir: Optional[str],
    max_bytes: Optional[int],
    obs_enabled: bool = False,
) -> None:
    """Executor initializer: workers inherit the parent's cache and
    observability setup.

    With observability on, each worker records its own spans and metrics
    (including the cache's per-process hit/miss stats) and ships them back
    with every task result (:class:`_ObsTask`); the parent folds them into
    its registry in task order, so merged totals are deterministic and
    complete -- per-process tallies alone would be silently partial.
    """
    configure_cache(cache_dir, max_bytes)
    if obs_enabled:
        # Under fork-based multiprocessing the worker inherits the parent's
        # recorded spans and counters; drop them or every export would
        # re-ship (and re-merge) state the parent already holds.
        obs.reset()
        obs.enable()


class _ObsTask:
    """Picklable task wrapper returning (result, worker observability state).

    Export resets the worker's spans and metrics after each task, so every
    payload carries exactly one task's worth of state no matter how the
    executor distributes items over workers.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]) -> None:
        self.fn = fn

    def __call__(self, item: _T):
        result = self.fn(item)
        return result, obs.export_state(reset_after=True)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Union[int, str, None] = 1,
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally over a process pool.

    Results come back in input order (``executor.map`` preserves it), so
    a parallel run is output-identical to a serial one whenever ``fn``
    is deterministic in its argument -- which every experiment task is:
    all randomness flows from explicit per-task seeds derived by
    :class:`Scale`'s disjoint seed namespaces.

    With observability enabled, worker spans and metric increments are
    merged back into the parent process in task order (deterministic), so
    traces and counter totals match a serial run of the same work.
    """
    n_workers = min(resolve_jobs(jobs), len(items))
    if n_workers <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    cache = get_cache()
    with_obs = obs.enabled()
    initargs = (
        (str(cache.dir), cache.max_bytes, with_obs)
        if cache is not None
        else (None, None, with_obs)
    )
    task = _ObsTask(fn) if with_obs else fn
    with ProcessPoolExecutor(
        max_workers=n_workers, initializer=_init_worker, initargs=initargs
    ) as executor:
        raw = list(executor.map(task, items))
    if not with_obs:
        return raw
    results: List[_R] = []
    for result, state in raw:
        obs.merge_export(state)
        results.append(result)
    return results


def _fresh_source(
    program: Program, core: CoreConfig, source: str
) -> Union[EmScenario, Simulator]:
    if source == "em":
        return EmScenario.build(program, core=core)
    return Simulator(program, core)


def build_detector(
    program: Program,
    scale: Scale,
    source: str = "em",
    core: Optional[CoreConfig] = None,
    config: Optional[EddieConfig] = None,
) -> TrainedDetector:
    """Train a detector for one program at the given scale.

    When an artifact cache is configured (:mod:`repro.cache`), the
    trained model is memoized under a fingerprint of everything training
    depends on -- program IR, core config, pipeline config, run count,
    seed, and source kind -- and a hit skips training entirely (the
    detector is rebound to a fresh injection-free source).
    """
    if core is None:
        if source == "em":
            core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
        else:
            core = CoreConfig.sim_ooo(clock_hz=scale.clock_hz)
    eddie = Eddie(config)
    with span("build_detector"):
        cache = get_cache()
        if cache is None:
            return eddie.train(
                program, core=core, runs=scale.train_runs,
                seed=scale.train_seed(), source=source,
            )
        key = fingerprint(
            "model", program, core, eddie.config, scale.train_runs,
            scale.train_seed(), source,
        )
        model = cache.get_model(key)
        if model is not None:
            return TrainedDetector(
                model, source=_fresh_source(program, core, source)
            )
        detector = eddie.train(
            program, core=core, runs=scale.train_runs,
            seed=scale.train_seed(), source=source,
        )
        cache.put_model(key, detector.model)
        return detector


def capture_traces(
    detector: TrainedDetector, seeds: Sequence[int]
) -> List[TraceLike]:
    """Capture one trace per seed from the detector's bound source
    (with whatever injections are currently configured).

    With an artifact cache configured, each trace is memoized under a
    fingerprint of the full source state -- program, core, configured
    injections/bursts, EM channel and receiver parameters -- plus the
    seed, so changing any of them (or clearing injections) changes the
    key. Cached traces round-trip losslessly (exact arrays), so
    downstream monitoring is bit-identical to a fresh capture.
    """
    from repro.core.detector import _capture  # shared private helper

    with span("capture_traces"):
        cache = get_cache()
        if cache is None:
            return [
                _capture(detector.source, seed=s, inputs=None) for s in seeds
            ]
        # Describing the source (program IR, core, injection state)
        # dominates the per-key cost and is identical for every seed:
        # hoist it.
        source_desc = describe(detector.source)
        traces: List[TraceLike] = []
        for s in seeds:
            key = digest(["seq", ["trace", source_desc, describe(s)]])
            trace = cache.get_trace(key)
            if trace is None:
                trace = _capture(detector.source, seed=s, inputs=None)
                cache.put_trace(key, trace)
            traces.append(trace)
        return traces


def monitor_traces(
    detector: TrainedDetector, traces: Sequence[TraceLike]
) -> RunMetrics:
    """Monitor a set of traces and aggregate their metrics."""
    with span("monitor_traces"):
        reports = [detector.monitor(trace) for trace in traces]
        return aggregate_metrics([r.metrics for r in reports])


def sweep_group_sizes(
    detector: TrainedDetector,
    traces: Sequence[TraceLike],
    group_sizes: Sequence[int],
) -> Dict[int, RunMetrics]:
    """Re-monitor the same traces at each forced K-S group size n.

    Latency-trade-off figures (3, 6, 8, 9, 10) vary detection latency by
    varying n; capturing traces once and re-running only the (cheap)
    monitoring keeps the sweep fast.
    """
    results: Dict[int, RunMetrics] = {}
    with span("sweep_group_sizes"):
        for n in group_sizes:
            variant = detector.with_group_size(n)
            results[n] = monitor_traces(variant, traces)
    return results


def latency_of_group_size(detector: TrainedDetector, n: int) -> float:
    """Nominal detection latency of group size n, in seconds (n hops)."""
    return n * detector.model.hop_duration
