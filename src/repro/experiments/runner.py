"""Shared experiment machinery: scaling knobs, training, trace capture,
and group-size sweeps.

The paper's experiments run seconds of GHz execution; a laptop-scale
reproduction needs a scaling knob. :class:`Scale` bundles every such knob;
``Scale.default()`` finishes each experiment in seconds-to-minutes, and
``Scale.paper()`` records the paper-faithful values (25 IoT / 10 simulator
runs, literal clocks) for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import CoreConfig
from repro.core.detector import Eddie, TrainedDetector, TraceLike
from repro.core.metrics import RunMetrics, aggregate_metrics
from repro.core.model import EddieConfig
from repro.programs.ir import Program

__all__ = ["Scale", "build_detector", "monitor_traces", "sweep_group_sizes"]


@dataclass(frozen=True)
class Scale:
    """Experiment scaling knobs.

    Attributes:
        train_runs: injection-free training runs per benchmark.
        clean_runs: monitored injection-free runs per benchmark.
        injected_runs: monitored runs per injection configuration.
        clock_hz: core clock used for the runs (see CoreConfig docs on why
            scaled clocks are legitimate).
        seed: base RNG seed; derived seeds are offsets from it.
        group_sizes: K-S group sizes swept by latency-trade-off figures.
    """

    train_runs: int = 8
    clean_runs: int = 3
    injected_runs: int = 3
    clock_hz: float = 1e8
    seed: int = 0
    group_sizes: Tuple[int, ...] = (8, 12, 16, 24, 32, 48, 64, 96)

    @classmethod
    def quick(cls) -> "Scale":
        """Smallest meaningful scale (CI smoke runs)."""
        return cls(train_runs=4, clean_runs=2, injected_runs=2,
                   group_sizes=(8, 16, 32, 64))

    @classmethod
    def default(cls) -> "Scale":
        return cls()

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's own parameters (hours of compute; for reference)."""
        return cls(
            train_runs=25,
            clean_runs=25,
            injected_runs=25,
            clock_hz=1.008e9,
            group_sizes=(8, 16, 32, 64, 128, 256, 512),
        )

    def train_seed(self, offset: int = 0) -> int:
        return self.seed + offset

    def monitor_seed(self, offset: int = 0) -> int:
        return self.seed + 10_000 + offset

    def injected_seed(self, offset: int = 0) -> int:
        return self.seed + 20_000 + offset


def build_detector(
    program: Program,
    scale: Scale,
    source: str = "em",
    core: Optional[CoreConfig] = None,
    config: Optional[EddieConfig] = None,
) -> TrainedDetector:
    """Train a detector for one program at the given scale."""
    if core is None:
        if source == "em":
            core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
        else:
            core = CoreConfig.sim_ooo(clock_hz=scale.clock_hz)
    eddie = Eddie(config)
    return eddie.train(
        program, core=core, runs=scale.train_runs,
        seed=scale.train_seed(), source=source,
    )


def capture_traces(
    detector: TrainedDetector, seeds: Sequence[int]
) -> List[TraceLike]:
    """Capture one trace per seed from the detector's bound source
    (with whatever injections are currently configured)."""
    from repro.core.detector import _capture  # shared private helper

    return [_capture(detector.source, seed=s, inputs=None) for s in seeds]


def monitor_traces(
    detector: TrainedDetector, traces: Sequence[TraceLike]
) -> RunMetrics:
    """Monitor a set of traces and aggregate their metrics."""
    reports = [detector.monitor_trace(trace) for trace in traces]
    return aggregate_metrics([r.metrics for r in reports])


def sweep_group_sizes(
    detector: TrainedDetector,
    traces: Sequence[TraceLike],
    group_sizes: Sequence[int],
) -> Dict[int, RunMetrics]:
    """Re-monitor the same traces at each forced K-S group size n.

    Latency-trade-off figures (3, 6, 8, 9, 10) vary detection latency by
    varying n; capturing traces once and re-running only the (cheap)
    monitoring keeps the sweep fast.
    """
    results: Dict[int, RunMetrics] = {}
    for n in group_sizes:
        variant = detector.with_group_size(n)
        results[n] = monitor_traces(variant, traces)
    return results


def latency_of_group_size(detector: TrainedDetector, n: int) -> float:
    """Nominal detection latency of group size n, in seconds (n hops)."""
    return n * detector.model.hop_duration
