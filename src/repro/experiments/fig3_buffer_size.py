"""Figure 3: K-S group-size selection for three kinds of loops.

The paper's Figure 3 plots false-rejection rate against detection latency
(the group size n expressed in time) for three loops: one whose spectrum
has a single sharp peak (left -- rate collapses to ~0 within ~2.5 ms),
one with several peaks (middle -- needs ~25 ms), and one with poorly
defined peaks (right -- stays high out to hundreds of ms). This motivates
selecting n per region.

Reproduction: the three loop shapes from :mod:`repro.programs.workloads`,
trained and validated over EM captures; the per-n false-rejection rates
come from the same routine training uses
(:func:`repro.core.training.group_rejection_rates`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.arch.config import CoreConfig
from repro.core.model import EddieConfig
from repro.core.peaks import peak_matrix
from repro.core.stft import stft
from repro.core.training import group_rejection_rates, label_windows, _choose_num_peaks
from repro.em.scenario import EmScenario
from repro.experiments.report import format_series
from repro.experiments.runner import Scale
from repro.programs.workloads import (
    diffuse_loop_program,
    multi_peak_loop_program,
    sharp_loop_program,
)

__all__ = ["Fig3Result", "run", "format"]


@dataclass
class Fig3Result:
    # Loop kind -> [(latency_ms, false rejection %)]
    curves: Dict[str, List[Tuple[float, float]]]
    selected_n: Dict[str, int]
    hop_ms: float


def _region_windows(scenario: EmScenario, seeds, region: str, cfg: EddieConfig):
    rows = []
    for seed in seeds:
        trace = scenario.capture(seed=seed)
        spectra = stft(trace.iq, cfg.window_samples, cfg.overlap)
        peaks = peak_matrix(
            spectra, cfg.energy_fraction, cfg.max_peaks, cfg.peak_prominence
        )
        labels = label_windows(spectra, trace.timeline)
        rows.append(peaks[[i for i, lbl in enumerate(labels) if lbl == region]])
    return np.concatenate(rows, axis=0)


def run(scale: Scale, jobs=1) -> Fig3Result:
    cfg = EddieConfig()
    core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
    programs = {
        "sharp peak": sharp_loop_program(trips=12000),
        "several peaks": multi_peak_loop_program(trips=12000),
        "diffuse peaks": diffuse_loop_program(trips=9000),
    }
    hop_s = cfg.window_samples * (1 - cfg.overlap) / core.sample_rate

    curves: Dict[str, List[Tuple[float, float]]] = {}
    selected: Dict[str, int] = {}
    for kind, program in programs.items():
        scenario = EmScenario.build(program, core=core)
        n_runs = max(2, scale.train_runs)
        windows = _region_windows(
            scenario, [scale.train_seed(k) for k in range(n_runs)],
            "loop:L", cfg,
        )
        half = len(windows) // 2
        reference, validation = windows[:half], windows[half:]
        num_peaks = _choose_num_peaks(reference, cfg)
        rates = group_rejection_rates(
            reference, validation, num_peaks, cfg, scale.group_sizes
        )
        curves[kind] = [
            (n * hop_s * 1e3, 100.0 * rate) for n, rate in sorted(rates.items())
        ]
        if rates:
            best = min(rates.values())
            selected[kind] = min(
                n for n, r in rates.items() if r <= best + 0.005
            )
        else:
            selected[kind] = min(scale.group_sizes)

    return Fig3Result(curves=curves, selected_n=selected, hop_ms=hop_s * 1e3)


def format(result: Fig3Result) -> str:
    body = format_series(
        "Figure 3: false-rejection rate vs detection latency (group size n)",
        "latency (ms)",
        {kind: points for kind, points in result.curves.items()},
    )
    picks = ", ".join(
        f"{kind}: n={n} ({n * result.hop_ms:.2f} ms)"
        for kind, n in result.selected_n.items()
    )
    return body + f"\n\nselected group sizes -> {picks}"
