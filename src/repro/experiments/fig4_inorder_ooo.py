"""Figure 4: detection latency per code region, in-order vs out-of-order.

The paper simulates the same benchmarks (Basicmath, Bitcount, Susan) on
in-order and out-of-order cores and finds EDDIE's detection latency --
driven by the group size n each region needs -- is significantly higher on
the OOO core, because dynamic scheduling adds variation among STSs and
more STSs are needed to capture the distribution (Section 5.3, Figure 4).

Reproduction: train on the simulator power signal for both core kinds and
report each loop region's selected n expressed as latency, plus the
average -- the paper's bar chart as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.arch.config import CoreConfig
from repro.experiments.report import format_table
from repro.experiments.runner import Scale, build_detector, parallel_map
from repro.programs.mibench import BENCHMARKS

__all__ = ["Fig4Result", "run", "format"]

_PROGRAMS = ("basicmath", "bitcount", "susan")


@dataclass
class Fig4Result:
    # (benchmark, region) -> {kind: latency_ms}
    latencies: Dict[Tuple[str, str], Dict[str, float]]

    def mean_latency(self, kind: str) -> float:
        return float(
            np.mean([lat[kind] for lat in self.latencies.values() if kind in lat])
        )


def _core(kind: str, clock_hz: float) -> CoreConfig:
    if kind == "inorder":
        return CoreConfig(
            kind="inorder", issue_width=2, pipeline_depth=12,
            clock_hz=clock_hz, name="fig4-inorder",
        )
    return CoreConfig(
        kind="ooo", issue_width=2, pipeline_depth=12, rob_size=64,
        clock_hz=clock_hz, name="fig4-ooo",
    )


def _region_latencies(task: Tuple[str, str, Scale]) -> Dict[str, float]:
    """Per-loop-region latency for one (benchmark, core kind) pair
    (process-pool worker)."""
    name, kind, scale = task
    detector = build_detector(
        BENCHMARKS[name](), scale, source="power",
        core=_core(kind, scale.clock_hz),
    )
    hop = detector.model.hop_duration
    return {
        region: profile.group_size * hop * 1e3
        for region, profile in detector.model.profiles.items()
        if region.startswith("loop:")
    }


def run(scale: Scale, jobs=1) -> Fig4Result:
    tasks = [
        (name, kind, scale)
        for name in _PROGRAMS
        for kind in ("inorder", "ooo")
    ]
    results = parallel_map(_region_latencies, tasks, jobs)
    latencies: Dict[Tuple[str, str], Dict[str, float]] = {}
    for (name, kind, _), by_region in zip(tasks, results):
        for region, latency in by_region.items():
            latencies.setdefault((name, region), {})[kind] = latency
    return Fig4Result(latencies=latencies)


def format(result: Fig4Result) -> str:
    rows: List[List] = []
    for idx, ((bench, region), lats) in enumerate(
        sorted(result.latencies.items()), start=1
    ):
        rows.append(
            [str(idx), f"{bench}:{region}", lats.get("ooo"), lats.get("inorder")]
        )
    rows.append(
        ["Avg", "", result.mean_latency("ooo"), result.mean_latency("inorder")]
    )
    return format_table(
        "Figure 4: detection latency per region, OOO vs in-order (ms)",
        ["#", "Region", "OOO", "In-order"],
        rows,
    )
