"""Figure 7: detection latency for variable injection (contamination) rates.

Thin wrapper over :mod:`repro.experiments.contamination`; see there.
"""

from repro.experiments.contamination import ContaminationResult, format_fig7
from repro.experiments.contamination import run as _run
from repro.experiments.runner import Scale

__all__ = ["run", "format"]


def run(scale: Scale, jobs=1) -> ContaminationResult:
    return _run(scale, jobs=jobs)


def format(result: ContaminationResult) -> str:
    return format_fig7(result)
