"""Figure 8: accuracy vs number of instructions injected outside loops.

Section 5.5: bursts of 100k-500k dynamic instructions (an empty loop whose
iteration count varies) injected between loops 2 and 3 of Bitcount. Larger
bursts are detected at shorter latency; all sizes reach high TPR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.simulator import BurstSpec
from repro.experiments.report import format_series
from repro.experiments.runner import (
    Scale,
    build_detector,
    capture_traces,
    parallel_map,
    sweep_group_sizes,
)
from repro.programs.mibench import BENCHMARKS
from repro.programs.workloads import int_kernel

__all__ = ["Fig8Result", "run", "format"]

def _sweep_sizes(scale: Scale):
    """Group sizes swept; capped so n stays below the (scaled-down) region
    dwell time -- a group spanning multiple regions is meaningless."""
    sizes = [n for n in scale.group_sizes if n <= 32]
    return sizes or [min(scale.group_sizes)]


# The paper's burst sizes (dynamic instructions).
_SIZES = (100_000, 187_000, 218_000, 315_000, 400_000, 500_000)


@dataclass
class Fig8Result:
    # burst size -> [(latency_ms, TPR %)]
    curves: Dict[int, List[Tuple[float, float]]]


def _size_curve(task) -> List[Tuple[float, float]]:
    """TPR-vs-latency curve for one burst size (process-pool worker).

    Each worker rebuilds its detector from the benchmark name; with an
    artifact cache configured all workers share the one trained model
    (first writer wins, the rest hit).
    """
    scale, size = task
    detector = build_detector(BENCHMARKS["bitcount"](), scale, source="em")
    simulator = detector.source.simulator
    hop = detector.model.hop_duration
    body = tuple(int_kernel(50, "burst"))  # the "empty loop" body
    simulator.add_burst(
        BurstSpec(
            after_region="loop:count2",
            body=body,
            iterations=max(1, size // len(body)),
        )
    )
    traces = capture_traces(
        detector,
        [scale.injected_seed(size // 1000 + k)
         for k in range(scale.injected_runs)],
    )
    simulator.clear_injections()
    by_n = sweep_group_sizes(detector, traces, _sweep_sizes(scale))
    return [
        (n * hop * 1e3,
         metrics.true_positive_rate
         if metrics.true_positive_rate is not None else 0.0)
        for n, metrics in sorted(by_n.items())
    ]


def run(scale: Scale, jobs=1) -> Fig8Result:
    results = parallel_map(
        _size_curve, [(scale, size) for size in _SIZES], jobs
    )
    return Fig8Result(curves=dict(zip(_SIZES, results)))


def format(result: Fig8Result) -> str:
    return format_series(
        "Figure 8: TPR vs latency for bursts injected between bitcount "
        "loops 2 and 3",
        "latency (ms)",
        {f"{size // 1000}k instr": pts for size, pts in sorted(result.curves.items())},
        digits=1,
    )
