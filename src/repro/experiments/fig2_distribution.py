"""Figure 2: normal vs malicious peak distributions and the parametric trap.

The paper's Figure 2 plots the distribution of the strongest-peak
frequency for one Susan loop nest (green), the best bi-normal fit (light
blue), and the malicious distribution (blue), and argues that a parametric
test built on the fitted bi-normal yields unavoidable false positives and
false negatives -- motivating the nonparametric K-S test.

Reproduction: a branchy (multi-modal-timing) loop provides the reference
distribution; an adds-only loop injection sized so its peak shift is
comparable to the reference spread provides the malicious one; a
2-component Gaussian mixture is fitted to the reference. We report the
error mass of the parametric +-3-sigma acceptance band against both
distributions, next to the K-S test's group-level error rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.arch.config import CoreConfig
from repro.core.peaks import peak_matrix
from repro.core.stats.gmm import GaussianMixture1D, fit_gmm
from repro.core.stats.ks import ks_critical_value, ks_statistic
from repro.core.stft import stft
from repro.core.training import label_windows
from repro.em.scenario import EmScenario
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import Scale
from repro.programs.workloads import injection_mix, multi_peak_loop_program

__all__ = ["Fig2Result", "run", "format"]

_GROUP = 64


@dataclass
class Fig2Result:
    reference_hist: List[Tuple[float, float]]  # (freq kHz, density)
    malicious_hist: List[Tuple[float, float]]
    gmm: GaussianMixture1D
    parametric_fp: float  # % of clean groups rejected by the +-3sigma test
    parametric_fn: float  # % of malicious groups accepted
    ks_fp: float
    ks_fn: float


def _strongest_peaks(scenario: EmScenario, scale: Scale, seeds, region: str) -> np.ndarray:
    values: List[np.ndarray] = []
    for seed in seeds:
        trace = scenario.capture(seed=seed)
        spectra = stft(trace.iq, 512, 0.5)
        peaks = peak_matrix(spectra, max_peaks=4)
        labels = label_windows(spectra, trace.timeline)
        rows = peaks[[i for i, lbl in enumerate(labels) if lbl == region], 0]
        values.append(rows[~np.isnan(rows)])
    return np.concatenate(values)


def run(scale: Scale, jobs=1) -> Fig2Result:
    core = CoreConfig.iot_inorder(clock_hz=scale.clock_hz)
    program = multi_peak_loop_program(trips=9000, body_size=150)
    scenario = EmScenario.build(program, core=core)
    region = "loop:L"

    ref = _strongest_peaks(
        scenario, scale, [scale.train_seed(k) for k in range(scale.train_runs)],
        region,
    )
    # An on-chip (adds-only) injection whose peak shift is comparable to
    # the reference distribution's own spread: exactly the regime where
    # the parametric test's +-3-sigma acceptance band fails (the paper's
    # shaded false-negative region) while the K-S test, given a full
    # group, still separates the distributions.
    scenario.simulator.set_loop_injection("L", injection_mix(20, 0), 1.0)
    mal = _strongest_peaks(
        scenario, scale,
        [scale.injected_seed(k) for k in range(scale.injected_runs)], region,
    )
    scenario.simulator.clear_injections()

    gmm = fit_gmm(ref, n_components=2)

    # Group-level decisions, groups of _GROUP consecutive observations.
    def groups(data: np.ndarray) -> List[np.ndarray]:
        return [
            data[i: i + _GROUP]
            for i in range(0, len(data) - _GROUP + 1, _GROUP // 2)
        ]

    ref_sorted = np.sort(ref)
    crit = lambda n: ks_critical_value(len(ref_sorted), n, 0.01)

    # The figure's shaded regions: the parametric acceptance band is the
    # +-3 sigma envelope of the fitted bi-normal. Reference mass outside
    # the band is the inevitable false-positive mass; malicious mass
    # inside it is the inevitable false-negative mass.
    parametric_fp = 100.0 * float((~gmm.within_k_sigma(ref)).mean())
    parametric_fn = 100.0 * float(gmm.within_k_sigma(mal).mean())

    def ks_rejects(group: np.ndarray) -> bool:
        return ks_statistic(ref_sorted, group) > crit(len(group))

    ref_groups = groups(ref)
    mal_groups = groups(mal)
    ks_fp = 100.0 * np.mean([ks_rejects(g) for g in ref_groups])
    ks_fn = 100.0 * np.mean([not ks_rejects(g) for g in mal_groups])

    def hist(data: np.ndarray) -> List[Tuple[float, float]]:
        counts, edges = np.histogram(data, bins=24, density=True)
        centers = 0.5 * (edges[:-1] + edges[1:])
        return [(c / 1e3, float(d)) for c, d in zip(centers, counts)]

    return Fig2Result(
        reference_hist=hist(ref),
        malicious_hist=hist(mal),
        gmm=gmm,
        parametric_fp=parametric_fp,
        parametric_fn=parametric_fn,
        ks_fp=ks_fp,
        ks_fn=ks_fn,
    )


def format(result: Fig2Result) -> str:
    fit_rows = [
        [f"component {i}", w, m / 1e3, s / 1e3]
        for i, (w, m, s) in enumerate(
            zip(result.gmm.weights, result.gmm.means, result.gmm.stds)
        )
    ]
    fit = format_table(
        "Figure 2: bi-normal fit to the reference strongest-peak distribution",
        ["", "weight", "mean (kHz)", "std (kHz)"],
        fit_rows,
        digits=3,
    )
    errors = format_table(
        "Parametric (+-3 sigma on fitted bi-normal) vs nonparametric (K-S)",
        ["Test", "False positives (%)", "False negatives (%)"],
        [
            ["parametric (bi-normal)", result.parametric_fp, result.parametric_fn],
            ["K-S (nonparametric)", result.ks_fp, result.ks_fn],
        ],
    )
    hists = format_series(
        "Strongest-peak frequency distributions (density)",
        "freq (kHz)",
        {
            "normal (reference)": result.reference_hist,
            "malicious": result.malicious_hist,
        },
        digits=3,
    )
    return "\n\n".join([fit, errors, hists])
