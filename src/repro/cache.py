"""Content-addressed artifact cache for expensive pipeline products.

The two dominant costs of every experiment are (a) simulating runs and
capturing their traces and (b) training a model from those runs. Both are
pure functions of their configuration: a program IR, a core config, the
injection state, a seed, and the pipeline knobs fully determine the
output. This module memoizes them on disk under a key derived from a
canonical fingerprint of those inputs, so re-running an experiment (or
running its sibling that shares benchmarks) skips straight to monitoring.

Design points:

- **Fingerprints** (:func:`fingerprint`) are SHA-256 digests of a
  canonical JSON description (:func:`describe`) of the inputs. Dataclass
  trees, enums, numpy arrays, and mappings are handled structurally;
  callables (trip-count/branch-probability lambdas in program IRs) are
  described by their compiled bytecode, constants, and closure values --
  ``repr`` of a lambda contains a memory address and would never be
  stable across processes.
- **Round-trips are lossless.** Models and traces are stored via
  :mod:`repro.serialize` (``.npz``: exact binary arrays + JSON metadata
  whose floats round-trip by ``repr``), so a cache hit produces
  bit-identical downstream results to a recompute.
- **Writes are atomic** (temp file + :func:`os.replace` in the same
  directory), so concurrent workers of the parallel experiment runner
  can share one cache directory without torn entries.
- **Eviction** is size-bounded LRU: when ``max_bytes`` is set, the
  least-recently-used entries (by mtime; hits re-touch) are removed
  after each put until the cache fits.
- **Corruption tolerance**: an entry that fails to load is deleted and
  treated as a miss (the artifact is recomputed and re-cached).
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import tempfile
import types
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.obs import OBS, record_count
from repro.serialize import load_model, load_trace, save_model, save_trace
from repro.types import RegionInterval, RegionTimeline, Signal

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "configure",
    "describe",
    "digest",
    "disable",
    "fingerprint",
    "get_cache",
    "sts_fingerprint",
]

_SIM_RESULT_VERSION = 1


# -- canonical descriptions ---------------------------------------------------


def _describe_callable(obj: Any) -> Any:
    """A process-stable description of a function or lambda.

    Program IRs carry trip-count and branch-probability callables; two
    runs of the same experiment script must fingerprint them identically.
    The compiled bytecode plus constants, names, and captured closure
    values determine the callable's behavior; its ``repr`` (memory
    address) and qualname (enumeration order) do not.
    """
    code = obj.__code__
    closure = tuple(
        describe(cell.cell_contents) for cell in (obj.__closure__ or ())
    )
    defaults = tuple(describe(d) for d in (obj.__defaults__ or ()))
    return [
        "code",
        code.co_code.hex(),
        describe(code.co_consts),
        list(code.co_names),
        list(code.co_varnames),
        closure,
        defaults,
    ]


def describe(obj: Any) -> Any:
    """A canonical, JSON-serializable description of ``obj``.

    Equal inputs (in the "produce the same artifact" sense) yield equal
    descriptions across processes; differing inputs yield differing
    descriptions. Raises ``TypeError`` for types it does not understand
    rather than guessing -- a wrong fingerprint is a silent stale hit.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.value]
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return [
            "ndarray",
            str(data.dtype),
            list(data.shape),
            hashlib.sha256(data.tobytes()).hexdigest(),
        ]
    if isinstance(obj, np.generic):
        return ["npscalar", str(obj.dtype), repr(obj.item())]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dc",
            type(obj).__name__,
            [[f.name, describe(getattr(obj, f.name))] for f in fields(obj)],
        ]
    if isinstance(obj, (list, tuple)):
        return ["seq", [describe(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(json.dumps(describe(i)) for i in obj)]
    if isinstance(obj, dict):
        return ["dict", [[describe(k), describe(v)] for k, v in obj.items()]]
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    if isinstance(obj, types.CodeType):
        # Nested code objects (comprehensions inside lambdas) show up in
        # co_consts.
        return [
            "codeobj",
            obj.co_code.hex(),
            describe(obj.co_consts),
            list(obj.co_names),
            list(obj.co_varnames),
        ]
    # Known pipeline objects that are not dataclasses (imported lazily to
    # keep this module import-light and cycle-free).
    from repro.arch.simulator import Simulator
    from repro.core.model import EddieModel, RegionProfile
    from repro.programs.ir import Program

    if isinstance(obj, Program):
        # Programs are immutable after construction (injections and
        # bursts live on the simulator engine, not the IR), and walking
        # every block's instructions dominates fingerprint cost -- so the
        # description is computed once and memoized on the instance.
        memo = getattr(obj, "_describe_memo", None)
        if memo is None:
            memo = [
                "Program",
                obj.name,
                obj.entry,
                describe(obj.params),
                describe(obj.blocks),
            ]
            obj._describe_memo = memo
        return memo
    if isinstance(obj, Simulator):
        # Everything else in a Simulator (CFG, loop forest, region
        # machine, schedule memos) is derived from program + core.
        return [
            "Simulator",
            describe(obj.program),
            describe(obj.core),
            describe(dict(obj.engine.loop_injections)),
            describe(list(obj._bursts)),
        ]
    if isinstance(obj, RegionProfile):
        return [
            "RegionProfile",
            obj.name,
            obj.num_peaks,
            obj.group_size,
            describe(obj.descriptor_dims),
            describe(obj.reference),
        ]
    if isinstance(obj, EddieModel):
        desc = [
            "EddieModel",
            obj.program_name,
            describe(obj.config),
            describe(obj.profiles),
            describe(obj.successors),
            describe(list(obj.initial_regions)),
            describe(obj.sample_rate),
        ]
        # Calibration provenance is part of a derived model's identity;
        # appended only when present so base-model fingerprints (and every
        # registry entry and golden manifest written before derivations
        # existed) are unchanged.
        if obj.calibration is not None:
            desc.append(describe(obj.calibration))
        return desc
    if callable(obj) and hasattr(obj, "__code__"):
        return _describe_callable(obj)
    raise TypeError(
        f"cannot build a stable cache fingerprint for {type(obj).__name__}"
    )


def digest(description: Any) -> str:
    """SHA-256 hex digest of an already-:func:`describe`-d structure.

    Lets callers hoist the expensive description of a shared part (e.g.
    one simulator fingerprinted under many seeds) out of a loop:
    ``digest(["seq", [shared_desc, describe(seed)]])`` equals
    ``fingerprint(shared, seed)``.
    """
    payload = json.dumps(
        description, separators=(",", ":"), ensure_ascii=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical description of ``parts``."""
    return digest(describe(list(parts)))


def sts_fingerprint(signal: Any, config: Any) -> str:
    """Cache key of a signal's STS peak stream.

    Keyed by the signal's exact samples plus only the config knobs the
    stream depends on (STFT geometry, peak extraction, quality gating) --
    not the whole :class:`EddieConfig`, so monitoring knobs like ``alpha``
    or ``statistic`` (varied by experiment sweeps) reuse the same entry.
    """
    return fingerprint(
        "sts",
        signal.samples,
        signal.sample_rate,
        signal.t0,
        config.window_samples,
        config.overlap,
        config.energy_fraction,
        config.max_peaks,
        config.peak_prominence,
        config.diffuse_features,
        config.quality_gating,
        config.clip_fraction if config.quality_gating else None,
        config.gap_samples if config.quality_gating else None,
        config.dead_fraction if config.quality_gating else None,
        config.energy_outlier_mads if config.quality_gating else None,
        getattr(config, "frontend", ()),
    )


# -- simulator-result persistence ---------------------------------------------
# EM traces reuse repro.serialize's trace format; the simulator's power
# traces (Table 2's source) get the analogous npz codec here.


def _save_sim_result(result: Any, path: Path) -> None:
    meta = {
        "format_version": _SIM_RESULT_VERSION,
        "kind": "sim_result",
        "sample_rate": result.power.sample_rate,
        "t0": result.power.t0,
        "timeline": [
            [iv.region, iv.t_start, iv.t_end] for iv in result.timeline
        ],
        "injected_spans": [list(span) for span in result.injected_spans],
        "cycles": result.cycles,
        "instr_count": result.instr_count,
        "injected_instr_count": result.injected_instr_count,
        "inputs": result.inputs,
    }
    with open(path, "wb") as handle:
        np.savez_compressed(
            handle, meta=json.dumps(meta), power=result.power.samples
        )


def _load_sim_result(path: Path) -> Any:
    from repro.arch.simulator import SimulationResult

    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("kind") != "sim_result":
            raise ValueError(f"{path}: not a cached simulator result")
        if meta.get("format_version") != _SIM_RESULT_VERSION:
            raise ValueError(f"{path}: unsupported sim result version")
        power = Signal(
            data["power"], float(meta["sample_rate"]), float(meta["t0"])
        )
    timeline = RegionTimeline(
        [RegionInterval(r, t0, t1) for r, t0, t1 in meta["timeline"]]
    )
    return SimulationResult(
        power=power,
        timeline=timeline,
        injected_spans=[tuple(span) for span in meta["injected_spans"]],
        cycles=int(meta["cycles"]),
        instr_count=int(meta["instr_count"]),
        injected_instr_count=int(meta["injected_instr_count"]),
        inputs=dict(meta["inputs"]),
    )


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance (this process only).

    Under the parallel experiment runner each pool worker tallies its own
    instance, so these numbers are per-process and silently partial. The
    cross-process totals live in the observability metric snapshot
    (``repro.cache/hits`` etc. in :func:`repro.obs.snapshot`): every
    stats mutation mirrors into an obs counter, and the runner merges the
    workers' snapshots back into the parent (DESIGN.md D16).
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def record(self, event: str, n: int = 1) -> None:
        """Count one event locally and in the process-merged metrics."""
        setattr(self, event, getattr(self, event) + n)
        if OBS.enabled:
            record_count("repro.cache", event, n)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactCache:
    """Disk cache of models and traces, keyed by input fingerprints."""

    def __init__(
        self,
        cache_dir: Union[str, Path],
        max_bytes: Optional[int] = None,
    ) -> None:
        self.dir = Path(cache_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # -- generic machinery ----------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.dir / kind / f"{key}.npz"

    def _get(self, kind: str, key: str, loader) -> Optional[Any]:
        path = self._path(kind, key)
        if not path.exists():
            self.stats.record("misses")
            return None
        try:
            artifact = loader(path)
        except Exception:
            # Torn or corrupted entry (e.g. a crashed writer before the
            # atomic-replace discipline existed): drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.record("misses")
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.stats.record("hits")
        return artifact

    def _put(self, kind: str, key: str, saver) -> None:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            saver(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        self.stats.record("puts")
        self._evict_to_fit()

    def _entries(self) -> List[Path]:
        return [p for p in self.dir.rglob("*.npz") if p.is_file()]

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entries())

    def _evict_to_fit(self) -> None:
        if self.max_bytes is None:
            return
        entries = self._entries()
        sizes = {}
        for p in entries:
            try:
                stat = p.stat()
            except OSError:
                continue
            sizes[p] = (stat.st_mtime, stat.st_size)
        total = sum(size for _, size in sizes.values())
        if total <= self.max_bytes:
            return
        for path in sorted(sizes, key=lambda p: sizes[p][0]):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= sizes[path][1]
            self.stats.record("evictions")

    def clear(self) -> None:
        for path in self._entries():
            try:
                path.unlink()
            except OSError:
                pass

    # -- artifact-specific entry points ---------------------------------------

    def get_model(self, key: str):
        """A cached trained model, or None."""
        return self._get("model", key, load_model)

    def put_model(self, key: str, model) -> None:
        self._put("model", key, lambda path: save_model(model, path))

    def get_trace(self, key: str):
        """A cached captured trace (EM or simulator power), or None."""

        def loader(path: Path):
            try:
                return load_trace(path)
            except Exception:
                return _load_sim_result(path)

        return self._get("trace", key, loader)

    def put_trace(self, key: str, trace) -> None:
        from repro.em.scenario import EmTrace

        if isinstance(trace, EmTrace):
            self._put("trace", key, lambda path: save_trace(trace, path))
        else:
            self._put("trace", key, lambda path: _save_sim_result(trace, path))

    def get_sts(self, key: str):
        """A cached STS peak stream ``(peaks, times, quality)``, or None."""

        def loader(path: Path):
            with np.load(path, allow_pickle=False) as data:
                peaks = data["peaks"]
                times = data["times"]
                quality = data["quality"] if "quality" in data else None
            return peaks, times, quality

        return self._get("sts", key, loader)

    def put_sts(self, key: str, peaks, times, quality=None) -> None:
        def saver(path: Path) -> None:
            arrays = {"peaks": peaks, "times": times}
            if quality is not None:
                arrays["quality"] = quality
            with open(path, "wb") as handle:
                np.savez_compressed(handle, **arrays)

        self._put("sts", key, saver)


# -- process-wide configuration -----------------------------------------------

_cache: Optional[ArtifactCache] = None
_configured = False


def configure(
    cache_dir: Optional[Union[str, Path]],
    max_bytes: Optional[int] = None,
) -> Optional[ArtifactCache]:
    """Set (or, with ``cache_dir=None``, unset) the process-wide cache."""
    global _cache, _configured
    _configured = True
    _cache = ArtifactCache(cache_dir, max_bytes) if cache_dir else None
    return _cache


def disable() -> None:
    """Turn caching off for this process."""
    configure(None)


def get_cache() -> Optional[ArtifactCache]:
    """The process-wide cache, if any.

    Unless :func:`configure` was called, the ``REPRO_CACHE_DIR``
    environment variable (read once) decides: set -> cache there,
    unset -> caching off.
    """
    global _configured
    if not _configured:
        env_dir = os.environ.get("REPRO_CACHE_DIR")
        configure(env_dir or None)
    return _cache
