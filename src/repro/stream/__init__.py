"""Streaming monitoring: chunked online scoring and fleet multiplexing.

This package is the online serving shape of the reproduction
(DESIGN.md D17):

- :class:`StreamingMonitor` -- Algorithm 1 over arbitrary-size sample
  chunks with O(1) steady-state memory, bit-identical to the batch
  :meth:`~repro.core.monitor.Monitor.run_signal` path.
- :class:`FleetScheduler` / :class:`FleetSession` -- many concurrent
  device sessions in one process, sharing trained models by reference,
  with round-robin chunk dispatch and bounded aggregate memory.
- :class:`FleetKernel` -- the cross-session batch kernel behind
  :meth:`FleetScheduler.feed_many`: one vectorized STFT / peak / K-S
  pass over every isomorphic session of a round (DESIGN.md D20).
- :class:`StreamSummary` -- the closing statistics of one stream.
- :class:`StreamSnapshot` -- a stream's full resumable state
  (:meth:`StreamingMonitor.snapshot` / :meth:`StreamingMonitor.restore`),
  serialized by :mod:`repro.serialize` for the serving layer's
  checkpoint/resume path (DESIGN.md D19).

The stateful STFT front end lives in :mod:`repro.core.stft`
(:class:`~repro.core.stft.StreamingStft`,
:class:`~repro.core.stft.StreamingQuality`).
"""

from repro.stream.batchkernel import FleetKernel
from repro.stream.engine import StreamingMonitor, StreamSnapshot, StreamSummary
from repro.stream.fleet import FleetScheduler, FleetSession

__all__ = [
    "StreamingMonitor",
    "StreamSnapshot",
    "StreamSummary",
    "FleetKernel",
    "FleetScheduler",
    "FleetSession",
]
