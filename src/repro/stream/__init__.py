"""Streaming monitoring: chunked online scoring and fleet multiplexing.

This package is the online serving shape of the reproduction
(DESIGN.md D17):

- :class:`StreamingMonitor` -- Algorithm 1 over arbitrary-size sample
  chunks with O(1) steady-state memory, bit-identical to the batch
  :meth:`~repro.core.monitor.Monitor.run_signal` path.
- :class:`FleetScheduler` / :class:`FleetSession` -- many concurrent
  device sessions in one process, sharing trained models by reference,
  with round-robin chunk dispatch and bounded aggregate memory.
- :class:`StreamSummary` -- the closing statistics of one stream.

The stateful STFT front end lives in :mod:`repro.core.stft`
(:class:`~repro.core.stft.StreamingStft`,
:class:`~repro.core.stft.StreamingQuality`).
"""

from repro.stream.engine import StreamingMonitor, StreamSummary
from repro.stream.fleet import FleetScheduler, FleetSession

__all__ = [
    "StreamingMonitor",
    "StreamSummary",
    "FleetScheduler",
    "FleetSession",
]
