"""Cross-session batch kernel: one vectorized pass over a fleet round.

A fleet of monitoring sessions is mostly *isomorphic*: sessions trained
on the same model share the window length, taper, FFT mode, peak
criteria, and K-S references, differing only in their private stream
state. Feeding them one by one re-enters numpy once per session per
stage and pays the per-call fixed cost -- argument checking, small-array
dispatch, allocator churn -- hundreds of times per round.

:class:`FleetKernel` removes that multiplier. One :meth:`dispatch` round
drives every session's chunk through the same stages as
:meth:`StreamingMonitor.feed`, but pools the expensive middle across the
whole group:

1. **stage** -- each session's :meth:`~StreamingMonitor._stage_chunk`
   advances its STFT state and stages the chunk's frames (per-session,
   cheap, stateful);
2. **group** -- staged sessions are bucketed by pooling key: model
   identity (program, sample rate, config fingerprint) plus stream mode
   and frame dtype. Sessions that cannot pool -- divergent config, a
   chunk that completed no window, a stopped stream -- simply form their
   own bucket or skip straight to emit; there is no special-cased
   "fallback mode", the scalar path *is* the group of size one;
3. **transform + peaks** -- one :func:`_transform_frames` and one
   :func:`peak_rows` call per bucket over the concatenated frames. Both
   are per-row computations, so pooling is bit-identical to per-session
   calls (see their docstrings);
4. **plan** -- each session's :meth:`Monitor.plan_chunk` builds its
   optimistic K-S jobs against its own history (per-session, stateful);
5. **score** -- all sessions' jobs are scored in one
   :func:`score_ks_jobs` pass per alpha; the scorer already pools rows
   by (reference, count), so sessions sharing a model collapse into
   single :func:`ks_d_int_rows` calls across the whole fleet;
6. **finish** -- each session commits its accept-prefix, replays any
   remainder through the unchanged scalar state machine, and assembles
   its chunk result (per-session).

Canonical state lives only in each session's ``StreamingMonitor``; the
kernel holds no per-session state between rounds. Snapshot, restore,
detach, and eviction therefore need no kernel-side pack/unpack -- a
session can leave a group mid-stream and rejoin (or continue scalar)
with bit-identical results, which is what ``tests/test_fleet_kernel.py``
sweeps.

Failures are isolated per session: an exception raised while staging,
planning, or finishing one session lands in that session's result slot
and the rest of the round completes normally.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.model import EddieModel
from repro.core.monitor import (
    MonitorResult,
    plan_chunks_pooled,
    score_ks_jobs,
)
from repro.core.peaks import peak_rows
from repro.core.stft import _transform_frames
from repro.obs import OBS, record_count
from repro.stream.engine import ChunkLike, StreamingMonitor

__all__ = ["FleetKernel"]

#: One dispatch slot: the session's chunk results, or the exception that
#: stopped that session's round (other sessions are unaffected).
DispatchResult = Union[List[MonitorResult], Exception]


class FleetKernel:
    """Batches isomorphic sessions' chunks through shared vectorized ops.

    Stateless apart from a model-key cache; safe to share across rounds
    and cheap to construct. See the module docstring for the pipeline.
    """

    def __init__(self) -> None:
        # id(model) -> (weakref, pooling key). The fingerprint hash is
        # not free, so it is computed once per live model object; the
        # weakref guards against id() reuse after a model is collected.
        self._model_keys: Dict[int, Tuple[weakref.ref, tuple]] = {}

    def _model_key(self, model: EddieModel) -> tuple:
        entry = self._model_keys.get(id(model))
        if entry is not None:
            ref, key = entry
            if ref() is model:
                return key
        from repro.serialize import config_fingerprint

        key = (
            model.program_name,
            float(model.sample_rate),
            config_fingerprint(model.config),
        )
        self._model_keys[id(model)] = (weakref.ref(model), key)
        return key

    def dispatch(
        self, items: Sequence[Tuple[StreamingMonitor, ChunkLike]]
    ) -> List[DispatchResult]:
        """Feed one chunk into each monitor, pooling the shared math.

        Returns one slot per item, aligned with the input: the list of
        :class:`MonitorResult` the chunk produced (empty while the
        stream is inside its first window or after it stopped), or the
        exception that session raised. Each monitor must appear at most
        once per dispatch -- planning reads the history the previous
        chunk's commit wrote, so two chunks for one session cannot share
        a round (:meth:`FleetScheduler.feed_many` wave-splits
        duplicates).
        """
        n = len(items)
        results: List[DispatchResult] = [None] * n  # type: ignore[list-item]
        staged_list = [None] * n
        active: List[int] = []

        for i, (monitor, samples) in enumerate(items):
            try:
                staged = monitor._stage_chunk(samples)
            except Exception as exc:
                results[i] = exc
                continue
            if staged is None:  # stopped stream accepts no further input
                results[i] = []
                continue
            staged_list[i] = staged
            active.append(i)

        # Bucket window-completing sessions by pooling compatibility.
        # The model key fixes every transform/peak parameter; the stream
        # mode and frame dtype must match too so concatenation cannot
        # upcast one session's frames through another's.
        groups: Dict[tuple, List[int]] = {}
        for i in active:
            staged = staged_list[i]
            if staged.n == 0:
                continue
            monitor = items[i][0]
            key = (
                self._model_key(monitor.model),
                bool(monitor._stft._is_complex),
                staged.frames.dtype.str,
            )
            groups.setdefault(key, []).append(i)

        power_of: Dict[int, np.ndarray] = {}
        peaks_of: Dict[int, np.ndarray] = {}
        freqs_of: Dict[int, np.ndarray] = {}
        pooled_windows = 0
        for members in groups.values():
            first = items[members[0]][0]
            stft = first._stft
            if len(members) == 1:
                frames = staged_list[members[0]].frames
            else:
                frames = np.concatenate(
                    [staged_list[i].frames for i in members]
                )
            power, freqs = _transform_frames(
                frames, stft._is_complex, stft._taper_arr, stft._detrend,
                stft._fold, stft.window_samples, stft.sample_rate,
            )
            cfg = first._cfg
            peaks = peak_rows(
                power, freqs, cfg.energy_fraction, cfg.max_peaks,
                cfg.peak_prominence, cfg.diffuse_features,
            )
            offset = 0
            for i in members:
                count = staged_list[i].n
                power_of[i] = power[offset:offset + count]
                peaks_of[i] = peaks[offset:offset + count]
                freqs_of[i] = freqs
                offset += count
            pooled_windows += offset

        # Per-session emit, then one pooled planning pass over every
        # session that completed windows: steady-state sessions bucket
        # into stacked plan math (see plan_chunks_pooled), divergent ones
        # plan scalar inside the same call.
        seqs: Dict[int, tuple] = {}
        planned: List[int] = []
        for i in active:
            monitor = items[i][0]
            staged = staged_list[i]
            try:
                seq = monitor._emit_windows(
                    staged, power_of.get(i), freqs_of.get(i)
                )
            except Exception as exc:
                results[i] = exc
                continue
            if len(seq) == 0:
                results[i] = []
                continue
            seqs[i] = (seq, peaks_of[i])
            planned.append(i)

        plan_of: Dict[int, object] = {}
        try:
            pooled = plan_chunks_pooled([
                (items[i][0]._monitor, seqs[i][1], seqs[i][0].quality)
                for i in planned
            ])
            for i, plan in zip(planned, pooled):
                plan_of[i] = plan
        except Exception:
            # Pooled planning is an optimization; if it fails, plan each
            # session on its own (exceptions then land per session).
            for i in planned:
                monitor = items[i][0]
                seq, peaks = seqs[i]
                try:
                    plan_of[i] = monitor._plan_windows(seq, peaks)
                except Exception as exc:
                    results[i] = exc
                    del seqs[i]

        # Score every session's jobs fleet-wide: jobs pool across
        # sessions (and even across groups) as long as they share the
        # significance level; the scorer splits by reference identity
        # internally.
        jobs_by_alpha: Dict[float, list] = {}
        for i, plan in plan_of.items():
            if i in seqs and plan is not None and plan.jobs:
                jobs_by_alpha.setdefault(
                    float(items[i][0]._cfg.alpha), []
                ).extend(plan.jobs)
        for alpha, jobs in jobs_by_alpha.items():
            score_ks_jobs(jobs, alpha)

        for i in active:
            if i not in seqs:
                continue
            monitor = items[i][0]
            seq, peaks = seqs[i]
            try:
                results[i] = [
                    monitor._finish_windows(seq, peaks, plan_of.get(i))
                ]
            except Exception as exc:
                results[i] = exc

        if OBS.enabled:
            record_count("stream.fleet", "kernel_dispatches")
            if pooled_windows:
                record_count(
                    "stream.fleet", "kernel_pooled_windows", pooled_windows
                )
        return results
