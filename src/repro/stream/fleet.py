"""Fleet session multiplexing: many concurrent monitoring streams.

The ROADMAP's serving shape -- "heavy traffic from millions of users" --
means one process holds many live device sessions, each a
:class:`~repro.stream.engine.StreamingMonitor`, with chunks arriving
interleaved. :class:`FleetScheduler` is that multiplexer:

- sessions sharing a program share the trained :class:`EddieModel` *by
  reference* (its per-region sorted references are precomputed once), so
  per-session state is only the bounded stream state;
- chunks are dispatched round-robin across sessions that carry a chunk
  source, or pushed explicitly via :meth:`FleetScheduler.feed`; batches
  of chunks for many sessions go through :meth:`FleetScheduler.feed_many`,
  which routes isomorphic sessions through the cross-session batch
  kernel (:class:`repro.stream.batchkernel.FleetKernel`) so the whole
  round's STFT, peak extraction, and K-S tests run as pooled vectorized
  operations -- bit-identical to per-session feeding;
- per-session metrics (chunks, windows, reports) and dispatch spans flow
  through :mod:`repro.obs` when observability is enabled;
- aggregate memory is bounded: the scheduler refuses sessions beyond
  ``max_sessions`` and sessions default to O(1) ``keep_history=False``.

Sessions are fully independent state machines, so per-session results
are identical to running each stream in isolation (asserted by
``tests/test_streaming.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.core.model import EddieModel
from repro.core.monitor import MonitorResult
from repro.errors import ConfigurationError, MonitoringError
from repro.obs import OBS, counter, span
from repro.stream.batchkernel import DispatchResult, FleetKernel
from repro.stream.engine import ChunkLike, StreamingMonitor, StreamSummary

__all__ = ["FleetScheduler", "FleetSession"]

ResultSink = Callable[[str, MonitorResult], None]
EvictSink = Callable[[str, StreamSummary], None]


@dataclass
class FleetSession:
    """One device's live monitoring stream inside the fleet."""

    session_id: str
    monitor: StreamingMonitor
    source: Optional[Iterator[np.ndarray]] = None
    chunks_fed: int = 0
    done: bool = False
    summary: Optional[StreamSummary] = None
    results: List[MonitorResult] = field(default_factory=list)
    last_fed: int = 0


class FleetScheduler:
    """Multiplexes many concurrent :class:`StreamingMonitor` sessions.

    Args:
        max_sessions: hard cap on concurrently open sessions; the
            aggregate-memory bound is ``max_sessions`` times one session's
            O(1) stream state.
        early_exit: per-session early exit on the first anomaly (the
            session is closed and its slot freed).
        keep_history: retain per-chunk results on every session so
            ``session.monitor.result()`` works (O(stream) per session --
            test/debug use only).
        on_result: optional callback invoked as ``on_result(session_id,
            result)`` for every chunk result produced during dispatch;
            this is the O(1)-memory way to consume fleet output.
        evict_idle: when the fleet is at capacity, close the stalest
            session (least recently fed, by dispatch order -- not wall
            clock, so behavior is deterministic) to make room instead of
            raising. The default keeps the hard raise: unattended
            eviction is a serving policy, not a library default.
        on_evict: optional callback invoked as ``on_evict(session_id,
            summary)`` after an idle session was evicted for capacity;
            lets a server notify the evicted device before reusing the
            slot.
        kernel: route :meth:`feed_many` / :meth:`step_round` batches
            through the cross-session batch kernel, pooling STFT, peak
            extraction, and K-S across isomorphic sessions. Results are
            bit-identical either way; off exists for A/B benchmarking
            and as an escape hatch.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 256,
        early_exit: bool = False,
        keep_history: bool = False,
        on_result: Optional[ResultSink] = None,
        evict_idle: bool = False,
        on_evict: Optional[EvictSink] = None,
        kernel: bool = True,
    ) -> None:
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        self.max_sessions = int(max_sessions)
        self._early_exit = bool(early_exit)
        self._keep_history = bool(keep_history)
        self._on_result = on_result
        self.evict_idle = bool(evict_idle)
        self._on_evict = on_evict
        self._kernel = FleetKernel() if kernel else None
        self._sessions: Dict[str, FleetSession] = {}
        self._closed: Dict[str, StreamSummary] = {}
        self._feed_clock = 0

    # -- session lifecycle ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def session_ids(self) -> List[str]:
        return list(self._sessions)

    def session(self, session_id: str) -> FleetSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise MonitoringError(
                f"no open session {session_id!r}"
            ) from None

    def add_session(
        self,
        session_id: str,
        model: EddieModel,
        *,
        source: Optional[Iterable[np.ndarray]] = None,
        batched: bool = True,
        t0: float = 0.0,
    ) -> FleetSession:
        """Open a monitoring session for one device.

        ``model`` may be shared across any number of sessions; each
        session only adds its own bounded stream state. ``source``, when
        given, is an iterable of sample chunks consumed round-robin by
        :meth:`run` / :meth:`step_round`; without it the session is
        push-mode and chunks arrive via :meth:`feed`.
        """
        self._claim_slot(session_id)
        monitor = StreamingMonitor(
            model,
            batched=batched,
            early_exit=self._early_exit,
            keep_history=self._keep_history,
            t0=t0,
            session_id=session_id,
        )
        return self._register(session_id, monitor, source)

    def attach_session(
        self,
        session_id: str,
        monitor: StreamingMonitor,
        *,
        source: Optional[Iterable[np.ndarray]] = None,
    ) -> FleetSession:
        """Adopt an existing monitor -- e.g. one restored from a
        checkpoint snapshot -- as a live fleet session.

        Capacity and eviction rules are those of :meth:`add_session`;
        the monitor continues from whatever state it carries, which is
        how a serving process resumes a session another process (or an
        earlier life of this one) checkpointed.
        """
        self._claim_slot(session_id)
        monitor.session_id = session_id
        return self._register(session_id, monitor, source)

    def detach_session(self, session_id: str) -> FleetSession:
        """Remove a session from the fleet *without* finishing it.

        The monitor stays live and resumable (snapshot it, hand it to
        another scheduler via :meth:`attach_session`) -- the counterpart
        of :meth:`close_session` for suspend/handoff instead of
        completion.
        """
        session = self.session(session_id)
        del self._sessions[session_id]
        if OBS.enabled:
            counter("stream.fleet", "sessions_detached").inc()
        return session

    def _claim_slot(self, session_id: str) -> None:
        if session_id in self._sessions:
            raise ConfigurationError(
                f"session {session_id!r} is already open"
            )
        if len(self._sessions) >= self.max_sessions:
            if not self.evict_idle:
                raise ConfigurationError(
                    f"fleet is at its {self.max_sessions}-session "
                    f"capacity; close a session first"
                )
            self.evict_stalest()

    def _register(
        self,
        session_id: str,
        monitor: StreamingMonitor,
        source: Optional[Iterable[np.ndarray]],
    ) -> FleetSession:
        self._feed_clock += 1
        session = FleetSession(
            session_id=session_id,
            monitor=monitor,
            source=iter(source) if source is not None else None,
            last_fed=self._feed_clock,
        )
        self._sessions[session_id] = session
        if OBS.enabled:
            counter("stream.fleet", "sessions_opened").inc()
        return session

    def close_session(self, session_id: str) -> StreamSummary:
        """Close a session, free its slot, and return its summary."""
        session = self.session(session_id)
        session.done = True
        session.summary = session.monitor.finish()
        del self._sessions[session_id]
        self._closed[session_id] = session.summary
        if OBS.enabled:
            counter("stream.fleet", "sessions_closed").inc()
            counter(
                "stream.fleet", f"session.{session_id}.windows"
            ).inc(session.summary.windows)
            counter(
                "stream.fleet", f"session.{session_id}.reports"
            ).inc(len(session.summary.reports))
        return session.summary

    def evict_stalest(self) -> StreamSummary:
        """Close the least-recently-fed session to free a slot.

        Ordering is the fleet's dispatch clock (every ``feed`` and
        ``add_session`` ticks it), so "stalest" is deterministic and
        time-source-free. Invokes ``on_evict`` after the close.
        """
        if not self._sessions:
            raise MonitoringError("no open session to evict")
        stalest = min(self._sessions.values(), key=lambda s: s.last_fed)
        summary = self.close_session(stalest.session_id)
        if OBS.enabled:
            counter("stream.fleet", "sessions_evicted").inc()
        if self._on_evict is not None:
            self._on_evict(stalest.session_id, summary)
        return summary

    @property
    def summaries(self) -> Dict[str, StreamSummary]:
        """Summaries of every session closed so far."""
        return dict(self._closed)

    # -- chunk dispatch ------------------------------------------------------

    def feed(self, session_id: str, chunk: ChunkLike) -> List[MonitorResult]:
        """Push one chunk into one session (push-mode ingestion)."""
        session = self.session(session_id)
        if OBS.enabled:
            # Span/counter objects are only materialized when someone is
            # collecting them; the disabled path is a plain call.
            with span("fleet.dispatch"):
                results = session.monitor.feed(chunk)
        else:
            results = session.monitor.feed(chunk)
        self._after_feed(session, results)
        return results

    def _after_feed(
        self, session: FleetSession, results: List[MonitorResult]
    ) -> None:
        """Post-chunk bookkeeping shared by :meth:`feed` and
        :meth:`feed_many`: dispatch clock, history, result sink."""
        session.chunks_fed += 1
        self._feed_clock += 1
        session.last_fed = self._feed_clock
        if self._keep_history:
            session.results.extend(results)
        if OBS.enabled:
            counter("stream.fleet", "chunks_dispatched").inc()
        if self._on_result is not None:
            for result in results:
                self._on_result(session.session_id, result)

    def feed_many(
        self,
        items: Iterable[tuple],
        *,
        return_errors: bool = False,
    ) -> List[DispatchResult]:
        """Push one chunk into each of many sessions in one batched round.

        ``items`` is an iterable of ``(session_id, chunk)``. With the
        kernel enabled (the default) every round's STFT, peak
        extraction, and K-S scoring are pooled across all isomorphic
        sessions in the batch -- bit-identical to feeding the sessions
        one at a time, which is exactly what the kernel-less path does.

        A session id may repeat: planning reads the state the previous
        chunk's commit wrote, so repeats are split into consecutive
        waves, each wave containing one chunk per session, dispatched
        in order.

        Returns one slot per item, aligned with the input. With
        ``return_errors=True`` a failing session's slot holds the
        exception it raised and the rest of the batch proceeds (a
        missing session id lands as its :class:`MonitoringError` too);
        otherwise the first error is raised after the whole batch has
        been driven, so one bad chunk cannot starve the other sessions
        of the round.
        """
        items = list(items)
        results: List[DispatchResult] = [None] * len(items)  # type: ignore
        pending = list(range(len(items)))
        while pending:
            wave: List[int] = []
            later: List[int] = []
            seen: set = set()
            for idx in pending:
                sid = items[idx][0]
                if sid in seen:
                    later.append(idx)
                else:
                    seen.add(sid)
                    wave.append(idx)
            pending = later
            batch: List[tuple] = []  # (item index, FleetSession)
            for idx in wave:
                sid, chunk = items[idx]
                try:
                    session = self.session(sid)
                except MonitoringError as exc:
                    results[idx] = exc
                    continue
                batch.append((idx, session, chunk))
            if not batch:
                continue
            if self._kernel is not None:
                out = self._kernel.dispatch(
                    [(session.monitor, chunk) for _, session, chunk in batch]
                )
            else:
                out = []
                for _, session, chunk in batch:
                    try:
                        out.append(session.monitor.feed(chunk))
                    except Exception as exc:  # isolate per session
                        out.append(exc)
            for (idx, session, _), res in zip(batch, out):
                results[idx] = res
                if not isinstance(res, Exception):
                    self._after_feed(session, res)
        if not return_errors:
            for res in results:
                if isinstance(res, Exception):
                    raise res
        return results

    def step_round(self) -> int:
        """One round-robin pass: feed one chunk to every sourced session.

        The whole round is dispatched as one :meth:`feed_many` batch, so
        isomorphic sessions advance together through the batch kernel.
        Sessions whose source is exhausted -- or that early-exited -- are
        closed and their slots freed. Returns the number of sourced
        sessions still live after the pass.
        """
        to_feed: List[tuple] = []
        for session_id in list(self._sessions):
            session = self._sessions.get(session_id)
            if session is None or session.source is None:
                continue
            if session.monitor.stopped:
                self.close_session(session_id)
                continue
            try:
                chunk = next(session.source)
            except StopIteration:
                self.close_session(session_id)
                continue
            to_feed.append((session_id, chunk))
        if not to_feed:
            return 0
        if OBS.enabled:
            with span("fleet.round"):
                self.feed_many(to_feed)
        else:
            self.feed_many(to_feed)
        live = 0
        for session_id, _ in to_feed:
            session = self._sessions.get(session_id)
            if session is None:
                continue
            if session.monitor.stopped:
                self.close_session(session_id)
            else:
                live += 1
        return live

    def run(self) -> Dict[str, StreamSummary]:
        """Round-robin every sourced session to exhaustion.

        Returns the summaries of all sessions closed so far (including
        any closed before this call). Push-mode sessions (no source) are
        left open.
        """
        while self.step_round():
            pass
        return self.summaries
